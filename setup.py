"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on environments without
the ``wheel`` package (legacy ``pip install -e . --no-use-pep517`` path).
"""

from setuptools import setup

setup()
