#!/usr/bin/env python3
"""Remote-peering evolution: growth and churn of remote vs local members.

Reproduces the Section 6.3 / Fig. 12a analysis on the simulated longitudinal
window: monthly counts of local and remote members at the studied IXPs, the
ratio of new remote to new local members, and the relative departure rates.

Run with::

    python examples/rp_evolution.py [--seed 11]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, RemotePeeringStudy
from repro.analysis.evolution import EvolutionAnalysis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    study = RemotePeeringStudy(ExperimentConfig.small(seed=args.seed))
    analysis = EvolutionAnalysis(world=study.world, report=study.outcome.report,
                                 ixp_ids=study.studied_ixp_ids)
    series = analysis.series()

    print("=== Monthly membership evolution (studied IXPs) ===")
    print(f"{'month':>5} {'local':>7} {'remote':>7} {'new local':>10} {'new remote':>11} "
          f"{'departed L':>11} {'departed R':>11}")
    local, remote = series["local"], series["remote"]
    for index, month in enumerate(local.months):
        print(f"{month:>5} {local.active_members[index]:>7} {remote.active_members[index]:>7} "
              f"{local.cumulative_joins[index]:>10} {remote.cumulative_joins[index]:>11} "
              f"{local.cumulative_departures[index]:>11} "
              f"{remote.cumulative_departures[index]:>11}")

    print("\n=== Headline numbers ===")
    print(f"new remote members / new local members : {analysis.growth_ratio():.2f} "
          "(paper: ~2x)")
    print(f"remote departure rate / local rate      : {analysis.departure_ratio():.2f} "
          "(paper: ~1.25x)")
    print(f"remote members at window end            : "
          f"{remote.active_members[-1]} of "
          f"{remote.active_members[-1] + local.active_members[-1]}")


if __name__ == "__main__":
    main()
