#!/usr/bin/env python3
"""IXP operator report: who is local, who is remote, and how do we know?

This example takes the point of view of one IXP operator (by default the
largest studied exchange): it prints the member-by-member classification with
the methodology step and the supporting evidence, summarises the port
capacities and reseller usage, and exports the portal artefacts (a JSON
snapshot and a GeoJSON map) the paper publishes on its web portal.

Run with::

    python examples/ixp_operator_report.py [--ixp-rank 0] [--output-dir out/]
"""

from __future__ import annotations

import argparse
from collections import Counter
from pathlib import Path

from repro import ExperimentConfig, RemotePeeringStudy
from repro.core.types import PeeringClassification
from repro.portal.geojson import GeoJSONExporter
from repro.portal.snapshots import SnapshotExporter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ixp-rank", type=int, default=0,
                        help="which studied IXP to report on (0 = largest)")
    parser.add_argument("--output-dir", type=Path, default=Path("portal-output"))
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-members", type=int, default=25,
                        help="how many member rows to print")
    args = parser.parse_args()

    study = RemotePeeringStudy(ExperimentConfig.small(seed=args.seed))
    outcome = study.outcome
    ixp_id = study.studied_ixp_ids[args.ixp_rank]
    ixp = study.world.ixp(ixp_id)

    print(f"=== Remote peering report for {ixp.name} ===")
    results = sorted(outcome.report.results_for_ixp(ixp_id), key=lambda r: r.interface_ip)
    classes = Counter(r.classification for r in results)
    print(f"members observed : {len(results)}")
    print(f"inferred local   : {classes[PeeringClassification.LOCAL]}")
    print(f"inferred remote  : {classes[PeeringClassification.REMOTE]}")
    print(f"no inference     : {classes[PeeringClassification.UNKNOWN]}")
    print(f"remote share     : {outcome.report.remote_share(ixp_id):.1%}")

    print("\nStep contributions:")
    for step, count in sorted(outcome.report.step_contributions(ixp_id).items(),
                              key=lambda kv: -kv[1]):
        print(f"  {step.value:<22} {count}")

    print(f"\nFirst {args.max_members} members:")
    print(f"{'interface':<16} {'ASN':>7} {'class':<8} {'step':<22} evidence")
    for result in results[: args.max_members]:
        evidence = ""
        if "rtt_min_ms" in result.evidence:
            evidence = f"RTTmin={result.evidence['rtt_min_ms']:.2f} ms"
        elif "port_capacity_mbps" in result.evidence:
            evidence = f"port={result.evidence['port_capacity_mbps']} Mbps"
        elif "private_neighbours" in result.evidence:
            evidence = f"{len(result.evidence['private_neighbours'])} private neighbours"
        print(f"{result.interface_ip:<16} {result.asn:>7} "
              f"{result.classification.value:<8} "
              f"{(result.step.value if result.step else '-'):<22} {evidence}")

    # Port capacity / reseller view (what the operator can check directly).
    capacities = Counter()
    for result in results:
        capacity = study.dataset.port_capacity(ixp_id, result.asn)
        if capacity is not None:
            capacities[capacity] += 1
    print("\nObserved port capacities (Mbps):")
    for capacity, count in sorted(capacities.items()):
        print(f"  {capacity:>8}: {count}")

    args.output_dir.mkdir(parents=True, exist_ok=True)
    snapshot_path = SnapshotExporter(study.dataset, seed=study.world.seed).write(
        outcome, args.output_dir / f"{ixp_id}-snapshot.json", label=ixp.name)
    geojson_path = GeoJSONExporter(study.dataset).write(
        outcome, ixp_id, args.output_dir / f"{ixp_id}-map.geojson")
    print(f"\nPortal snapshot written to {snapshot_path}")
    print(f"GeoJSON map written to     {geojson_path}")


if __name__ == "__main__":
    main()
