#!/usr/bin/env python3
"""Wide-area IXPs: why a fixed RTT threshold fails, and how Step 3 fixes it.

This example reproduces the intuition of Section 4.2 and Fig. 7 of the paper:

1. it measures the facility-to-facility delays of the most geographically
   distributed IXP (Y.1731-style monitoring) and shows that many pairs exceed
   the 10 ms "remoteness threshold";
2. it then walks through the colocation-informed interpretation of measured
   RTTs — the feasible distance ring — for members of a wide-area IXP, and
   compares the outcome with the naive RTT-threshold baseline.

Run with::

    python examples/wide_area_inference.py [--seed 11]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, PeeringClassification, RemotePeeringStudy
from repro.analysis.wide_area import classify_wide_area_ixps
from repro.measurement.y1731 import Y1731Monitor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    study = RemotePeeringStudy(ExperimentConfig.small(seed=args.seed))
    outcome = study.outcome

    # --- Part 1: inter-facility delays of the widest IXP ----------------- #
    spans = {ixp_id: study.world.max_ixp_facility_distance_km(ixp_id)
             for ixp_id in study.world.ixps
             if len(study.world.ixp(ixp_id).facility_ids) >= 2}
    widest = max(spans, key=spans.get)
    matrix = Y1731Monitor(study.world, study.config.campaign).measure(widest)
    print(f"=== Inter-facility delays of {study.world.ixp(widest).name} "
          f"({len(matrix.facility_ids)} facilities) ===")
    print(f"max facility distance : {spans[widest]:.0f} km")
    print(f"facility pairs        : {len(matrix.pairs())}")
    print(f"pairs above 10 ms     : {matrix.fraction_above(10.0):.0%}")
    print("  -> a single RTT threshold cannot separate local from remote here.")

    # --- Part 2: wide-area prevalence on observed data ------------------- #
    records = classify_wide_area_ixps(study.dataset)
    wide = [r for r in records.values() if r.is_wide_area]
    print(f"\nObserved wide-area IXPs: {len(wide)} of {len(records)} classified IXPs")

    # --- Part 3: feasible rings at a studied wide-area IXP --------------- #
    studied_wide = [i for i in study.studied_ixp_ids
                    if i in records and records[i].is_wide_area]
    target = studied_wide[0] if studied_wide else study.studied_ixp_ids[0]
    print(f"\n=== Colocation-informed RTT interpretation at "
          f"{study.world.ixp(target).name} ===")
    print(f"{'interface':<16} {'RTTmin':>8} {'ring (km)':>18} {'feasible':>9} "
          f"{'step3':<8} {'baseline':<9} {'truth':<7}")
    shown = 0
    for (ixp_id, interface_ip), analysis in sorted(outcome.feasible.items()):
        if ixp_id != target or shown >= 15:
            continue
        observation = outcome.rtt_summary.observation_for(ixp_id, interface_ip)
        baseline = outcome.baseline_report.classification_of(ixp_id, interface_ip)
        truth = ("remote" if study.world.membership_for_interface(interface_ip).is_remote
                 else "local")
        ring = f"{analysis.ring.min_distance_km:.0f}-{analysis.ring.max_distance_km:.0f}"
        print(f"{interface_ip:<16} {observation.rtt_min_ms:>7.2f} {ring:>18} "
              f"{analysis.n_feasible_ixp_facilities:>9} "
              f"{analysis.classification.value:<8} {baseline.value:<9} {truth:<7}")
        shown += 1

    # How often does the baseline get wide-area members wrong but Step 3 right?
    fixed = 0
    for (ixp_id, interface_ip), analysis in outcome.feasible.items():
        if ixp_id != target:
            continue
        truth_remote = study.world.membership_for_interface(interface_ip).is_remote
        baseline = outcome.baseline_report.classification_of(ixp_id, interface_ip)
        step3 = analysis.classification
        baseline_wrong = (baseline is PeeringClassification.REMOTE) != truth_remote
        step3_right = (step3 is PeeringClassification.REMOTE) == truth_remote
        if baseline_wrong and step3_right and step3 is not PeeringClassification.UNKNOWN:
            fixed += 1
    print(f"\nMembers the RTT baseline misclassifies but Step 3 corrects: {fixed}")


if __name__ == "__main__":
    main()
