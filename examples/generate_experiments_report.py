#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: every paper table/figure vs the measured values.

Runs all experiment modules against one study and writes a Markdown report
with, per artefact, the paper's reported numbers, the values measured on the
simulated substrate, and the full result table.

Run with::

    python examples/generate_experiments_report.py [--scale tiny|small|default]
        [--seed 11] [--output EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import ExperimentConfig, RemotePeeringStudy
from repro.experiments import runner

#: What the paper reports for each artefact (used in the comparison table).
PAPER_EXPECTATIONS: dict[str, str] = {
    "table1": "731 IXP prefixes / 31,690 interfaces; conflicts below 0.4% per source",
    "table2": "15 validated IXPs (6 from operators, 9 from websites); 2,410 validated peers",
    "fig1a": "~60% of ASes/IXPs in a single facility, ~5% in more than 10",
    "fig1b": "99% of local peers < 1 ms; 18% of remote peers < 1 ms, 40% < 10 ms",
    "fig2a": "87% of NET-IX facility pairs above 10 ms",
    "fig2b": "14.4% of IXPs wide-area; 20% of the 50 largest",
    "fig4": "~27% of remote peers on sub-1GE ports; no local peer below Cmin",
    "fig5": "~95% of remote peers share no facility with the IXP; all local peers do",
    "fig6": "delays bounded by v_max = 4/9 c and a logarithmic minimum-speed fit",
    "fig7": "members local despite >2 ms RTTs at geographically distributed IXPs",
    "table4": "combined ACC 94.5% / COV 93%; RTT-only baseline ACC 77% / COV 84%",
    "fig8": "per-IXP accuracy consistently high; minimum ~91%",
    "table5": "45 VPs; 10,578 interfaces queried, 73% responsive; 30 IXPs",
    "fig9a": "LGs respond ~95%, Atlas probes ~75%",
    "fig9b": "75% of interfaces within 2 ms; >20% above 10 ms",
    "fig9c": "94% of remote interfaces with no feasible common facility",
    "fig9d": "remote multi-IXP routers more prevalent than hybrid; some >10 IXPs",
    "fig10a": "RTT+colocation and multi-IXP dominate; port capacity ~10% of inferences",
    "fig10b": "28% of inferred interfaces remote; >10% remote at 90% of IXPs; ~40% at the top-2",
    "fig11a": "63.7% / 23.4% / 12.9% local/remote/hybrid; hybrids have ~10x larger cones",
    "fig11b": "similar traffic distributions for local and remote; hybrids at the top levels",
    "fig12a": "remote membership grows ~2x faster; remote departure rate +25%",
    "fig12b": "ping and traceroute RTT patterns are close",
    "sec64": "66% hot-potato compliant, 18% remote detours, 16% missed closer big IXP",
}


def build_config(scale: str, seed: int) -> ExperimentConfig:
    if scale == "tiny":
        return ExperimentConfig.tiny(seed=seed)
    if scale == "small":
        return ExperimentConfig.small(seed=seed)
    return ExperimentConfig()


def format_headline(headline: dict[str, object]) -> str:
    parts = []
    for key, value in headline.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        else:
            parts.append(f"{key}={value}")
    return "; ".join(parts)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "small", "default"), default="small")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", type=Path, default=Path("EXPERIMENTS.md"))
    args = parser.parse_args()

    study = RemotePeeringStudy(build_config(args.scale, args.seed))
    results = runner.run_all(study)

    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of every table and figure of *O Peer, Where Art Thou? Uncovering",
        "Remote Peering Interconnections at IXPs* (IMC 2018) on the simulated substrate.",
        "",
        f"- configuration scale: `{args.scale}` (seed {args.seed})",
        f"- studied IXPs: {len(study.studied_ixp_ids)}",
        f"- world: {study.world.summary()}",
        "",
        "Absolute counts differ from the paper (the substrate is a synthetic world,",
        "not the 2018 Internet); the comparison below is about the *shape* of each",
        "result — who wins, by roughly what factor, and where the qualitative",
        "crossovers fall.  See DESIGN.md for the substitution rationale.",
        "",
        "## Summary: paper vs measured",
        "",
        "| experiment | paper reports | measured (this run) |",
        "|---|---|---|",
    ]
    for experiment_id, result in results.items():
        expectation = PAPER_EXPECTATIONS.get(experiment_id, "-")
        lines.append(f"| {experiment_id} | {expectation} | {format_headline(result.headline)} |")

    lines.extend(["", "## Full results", ""])
    for result in results.values():
        lines.append(result.to_markdown())

    args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {args.output} with {len(results)} experiments")


if __name__ == "__main__":
    main()
