#!/usr/bin/env python3
"""Routing implications of remote peering (Section 6.4 of the paper).

For the largest studied IXP, traceroute from every inferred-remote member
towards other members it also meets at another exchange, and classify each
observed IXP crossing: does the traffic exit at the closest common IXP
(hot-potato), does it detour over the remote-peering connection at the big
IXP, or does it ignore a closer big-IXP option?

Run with::

    python examples/routing_implications.py [--max-pairs 600] [--seed 11]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, RemotePeeringStudy
from repro.analysis.routing_implications import RoutingImplicationsAnalysis
from repro.measurement.traceroute import TracerouteCampaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-pairs", type=int, default=600)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    study = RemotePeeringStudy(ExperimentConfig.small(seed=args.seed))
    outcome = study.outcome

    campaign = TracerouteCampaign(study.world, study.config.campaign,
                                  delay_model=study.delay_model,
                                  world_index=study.world_distance_index)
    analysis = RoutingImplicationsAnalysis(
        outcome=outcome,
        dataset=study.dataset,
        prefix2as=study.prefix2as,
        campaign=campaign,
        max_pairs=args.max_pairs,
        seed=args.seed,
    )
    implications = analysis.run()
    shares = implications.shares()

    big_ixp = study.world.ixp(implications.big_ixp_id)
    print(f"=== Routing implications at {big_ixp.name} ===")
    print(f"remote members considered : "
          f"{sum(1 for r in outcome.report.results_for_ixp(big_ixp.ixp_id) if r.is_remote)}")
    print(f"member pairs probed       : {implications.pairs_probed}")
    print(f"IXP crossings analysed    : {implications.crossings_analysed}")
    print()
    print(f"{'bucket':<38} {'crossings':>10} {'share':>8}")
    rows = [
        ("hot-potato compliant", implications.hot_potato_compliant, shares["hot_potato"]),
        ("remote detour via the big IXP", implications.remote_detour_via_big_ixp,
         shares["remote_detour"]),
        ("missed a closer big-IXP option", implications.missed_closer_big_ixp,
         shares["missed_big_ixp"]),
        ("other non-compliant", implications.other_non_compliant, shares["other"]),
    ]
    for label, count, share in rows:
        print(f"{label:<38} {count:>10} {share:>7.1%}")

    print("\nPaper reference (DE-CIX Frankfurt): ~66% hot-potato, ~18% remote detours, "
          "~16% missed closer exits.")


if __name__ == "__main__":
    main()
