#!/usr/bin/env python3
"""Quickstart: infer remote peers at the largest simulated IXPs.

This is the five-minute tour of the library:

1. build a study (synthetic world + public-database views + measurement
   campaigns),
2. run the paper's five-step inference pipeline,
3. look at the headline results (remote share, coverage) and validate them
   against the exported ground-truth labels.

Run with::

    python examples/quickstart.py [--scale tiny|small|default] [--seed N]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, RemotePeeringStudy
from repro.validation.metrics import evaluate_report


def build_config(scale: str, seed: int) -> ExperimentConfig:
    """Pick one of the bundled configuration scales."""
    if scale == "tiny":
        return ExperimentConfig.tiny(seed=seed)
    if scale == "small":
        return ExperimentConfig.small(seed=seed)
    return ExperimentConfig()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "small", "default"), default="small")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    study = RemotePeeringStudy(build_config(args.scale, args.seed))
    print("Generating the world and running the measurement campaigns...")
    outcome = study.outcome

    print("\n=== Study summary ===")
    for key, value in study.summary().items():
        print(f"  {key}: {value}")

    print("\n=== Per-IXP inference results ===")
    print(f"{'IXP':<22} {'members':>8} {'inferred':>9} {'remote share':>13}")
    for ixp_id in study.studied_ixp_ids:
        results = outcome.report.results_for_ixp(ixp_id)
        inferred = [r for r in results if r.is_inferred]
        share = outcome.report.remote_share(ixp_id)
        print(f"{study.world.ixp(ixp_id).name:<22} {len(results):>8} "
              f"{len(inferred):>9} {share:>12.1%}")

    metrics = evaluate_report(outcome.report, study.validation,
                              ixp_ids=study.validation.test_ixps())
    baseline = evaluate_report(outcome.baseline_report, study.validation,
                               ixp_ids=study.validation.test_ixps())
    print("\n=== Validation against operator/website ground truth (test subset) ===")
    print(f"  five-step methodology : accuracy {metrics.accuracy:.1%}, "
          f"coverage {metrics.coverage:.1%}, precision {metrics.precision:.1%}")
    print(f"  RTT-threshold baseline: accuracy {baseline.accuracy:.1%}, "
          f"coverage {baseline.coverage:.1%}, precision {baseline.precision:.1%}")


if __name__ == "__main__":
    main()
