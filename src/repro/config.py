"""Configuration dataclasses for the generator, measurements and inference.

Every knob that shapes the synthetic world, the noise injected into data
sources, the measurement campaigns and the inference thresholds lives here, so
that experiments can state their parameters in one place and tests can build
small, fast worlds.

The defaults encode the calibration targets listed in DESIGN.md §5 (the
statistical shape of the paper's ecosystem), not the paper's absolute counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

from repro.constants import CASTRO_RTT_THRESHOLD_MS, PING_CAMPAIGN_ROUNDS
from repro.exceptions import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _require_fraction(value: float, name: str) -> None:
    _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic world generator.

    The world built from the defaults is "paper shaped": ~28% of memberships
    remote overall, ~40% at the two largest IXPs, ~15% of IXPs wide-area,
    ~27% of remote peers on fractional ports, a remote-peer distance mix in
    which ~18% sit within the IXP metro and ~40% within ~1,000 km.
    """

    seed: int = 20180901
    n_ixps: int = 40
    n_ases: int = 1200
    n_resellers: int = 8
    largest_ixp_members: int = 280
    smallest_ixp_members: int = 18
    ixp_size_decay: float = 0.72
    n_major_markets: int = 30
    facilities_per_major_city: tuple[int, int] = (2, 7)
    facilities_per_minor_city: tuple[int, int] = (1, 2)
    wide_area_ixp_fraction: float = 0.15
    wide_area_extra_cities: tuple[int, int] = (3, 14)
    reseller_disallowed_fraction: float = 0.15
    federation_pairs: int = 2
    tier1_fraction: float = 0.012
    tier2_fraction: float = 0.16
    base_remote_fraction: float = 0.27
    largest_ixp_remote_fraction: float = 0.40
    no_reseller_remote_fraction: float = 0.12
    remote_same_metro_fraction: float = 0.18
    remote_regional_fraction: float = 0.22
    remote_colocated_reseller_fraction: float = 0.05
    reseller_share_of_remote: float = 0.75
    federation_share_of_remote: float = 0.05
    fractional_port_share_of_reseller: float = 0.36
    private_link_probability: float = 0.30
    max_private_links_per_as: int = 14
    months: int = 15
    local_join_spread: float = 0.08
    remote_join_spread: float = 0.40
    local_departure_rate: float = 0.04
    remote_departure_rate: float = 0.05
    backbone_interfaces_per_router: tuple[int, int] = (1, 2)

    def __post_init__(self) -> None:
        _require(self.n_ixps >= 2, "n_ixps must be at least 2")
        _require(self.n_ases >= 20, "n_ases must be at least 20")
        _require(self.n_resellers >= 1, "n_resellers must be at least 1")
        _require(
            self.largest_ixp_members >= self.smallest_ixp_members >= 2,
            "IXP size bounds must satisfy largest >= smallest >= 2",
        )
        _require(self.ixp_size_decay > 0, "ixp_size_decay must be positive")
        _require(self.months >= 1, "months must be at least 1")
        for name in (
            "wide_area_ixp_fraction",
            "reseller_disallowed_fraction",
            "tier1_fraction",
            "tier2_fraction",
            "base_remote_fraction",
            "largest_ixp_remote_fraction",
            "no_reseller_remote_fraction",
            "remote_same_metro_fraction",
            "remote_regional_fraction",
            "remote_colocated_reseller_fraction",
            "reseller_share_of_remote",
            "federation_share_of_remote",
            "fractional_port_share_of_reseller",
            "private_link_probability",
            "local_join_spread",
            "remote_join_spread",
            "local_departure_rate",
            "remote_departure_rate",
        ):
            _require_fraction(getattr(self, name), name)
        _require(
            self.tier1_fraction + self.tier2_fraction < 1.0,
            "tier1_fraction + tier2_fraction must be below 1",
        )
        _require(
            self.remote_same_metro_fraction + self.remote_regional_fraction <= 1.0,
            "remote distance-band fractions must sum to at most 1",
        )
        _require(
            self.reseller_share_of_remote + self.federation_share_of_remote <= 1.0,
            "reseller + federation shares of remote connections must sum to at most 1",
        )

    @classmethod
    def tiny(cls, seed: int = 7) -> "GeneratorConfig":
        """A very small world for fast unit tests."""
        return cls(
            seed=seed,
            n_ixps=6,
            n_ases=160,
            n_resellers=3,
            largest_ixp_members=40,
            smallest_ixp_members=8,
            n_major_markets=10,
            federation_pairs=1,
            months=8,
        )

    @classmethod
    def small(cls, seed: int = 11) -> "GeneratorConfig":
        """A small-but-representative world for integration tests."""
        return cls(
            seed=seed,
            n_ixps=15,
            n_ases=450,
            n_resellers=5,
            largest_ixp_members=90,
            smallest_ixp_members=12,
            n_major_markets=18,
            federation_pairs=1,
            months=12,
        )


@dataclass(frozen=True)
class DataSourceNoiseConfig:
    """How lossy and conflicting each simulated database view is.

    Coverage is the probability that a ground-truth record appears in the
    source at all; the conflict rate is the probability that a present record
    carries a wrong value (e.g. a wrong ASN for an IXP interface).  The
    defaults roughly follow the relative source quality of Table 1 (websites >
    HE > PDB > PCH) and the colocation-data gaps of Fig. 5 (facility lists
    missing for ~18% of remote peers, spurious for ~5%).
    """

    seed_offset: int = 101
    website_publication_rate: float = 0.55
    website_port_capacity_rate: float = 0.85
    he_interface_coverage: float = 0.93
    he_conflict_rate: float = 0.003
    pdb_interface_coverage: float = 0.72
    pdb_conflict_rate: float = 0.003
    pch_interface_coverage: float = 0.20
    pch_conflict_rate: float = 0.004
    pdb_prefix_coverage: float = 0.88
    he_prefix_coverage: float = 0.62
    pch_prefix_coverage: float = 0.64
    facility_missing_rate_remote: float = 0.18
    facility_missing_rate_local: float = 0.04
    facility_spurious_reseller_rate: float = 0.05
    facility_coordinate_error_rate: float = 0.12
    facility_coordinate_error_km: float = 400.0
    inflect_correction_rate: float = 0.75
    pdb_port_capacity_coverage: float = 0.80
    pdb_traffic_coverage: float = 0.85
    website_facility_list_top_n: int = 50

    def __post_init__(self) -> None:
        for name in (
            "website_publication_rate",
            "website_port_capacity_rate",
            "he_interface_coverage",
            "he_conflict_rate",
            "pdb_interface_coverage",
            "pdb_conflict_rate",
            "pch_interface_coverage",
            "pch_conflict_rate",
            "pdb_prefix_coverage",
            "he_prefix_coverage",
            "pch_prefix_coverage",
            "facility_missing_rate_remote",
            "facility_missing_rate_local",
            "facility_spurious_reseller_rate",
            "facility_coordinate_error_rate",
            "inflect_correction_rate",
            "pdb_port_capacity_coverage",
            "pdb_traffic_coverage",
        ):
            _require_fraction(getattr(self, name), name)
        _require(self.facility_coordinate_error_km >= 0, "coordinate error must be >= 0")
        _require(self.website_facility_list_top_n >= 0, "website_facility_list_top_n must be >= 0")


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of the ping / traceroute measurement campaigns."""

    seed_offset: int = 202
    ping_rounds: int = PING_CAMPAIGN_ROUNDS
    lg_presence_rate: float = 0.60
    max_atlas_probes_per_ixp: int = 3
    lg_response_rate: float = 0.95
    atlas_response_rate: float = 0.75
    lg_integer_rounding_rate: float = 0.45
    atlas_management_lan_rate: float = 0.18
    atlas_dead_probe_rate: float = 0.20
    management_lan_extra_rtt_ms: tuple[float, float] = (1.5, 12.0)
    jitter_ms: float = 0.3
    remote_path_stretch: tuple[float, float] = (1.05, 1.6)
    local_path_stretch: tuple[float, float] = (1.0, 1.15)
    ttl_anomaly_rate: float = 0.02
    traceroutes_per_asn_pair: int = 1
    traceroute_hop_loss_rate: float = 0.03
    traceroute_sources_per_ixp: int = 40
    traceroute_destinations_per_source: int = 35
    hot_potato_compliance: float = 0.78

    def __post_init__(self) -> None:
        _require(self.ping_rounds >= 1, "ping_rounds must be at least 1")
        for name in (
            "lg_presence_rate",
            "lg_response_rate",
            "atlas_response_rate",
            "lg_integer_rounding_rate",
            "atlas_management_lan_rate",
            "atlas_dead_probe_rate",
            "ttl_anomaly_rate",
            "traceroute_hop_loss_rate",
            "hot_potato_compliance",
        ):
            _require_fraction(getattr(self, name), name)
        _require(self.jitter_ms >= 0, "jitter_ms must be non-negative")
        low, high = self.remote_path_stretch
        _require(1.0 <= low <= high, "remote_path_stretch must be an increasing pair >= 1")
        low, high = self.local_path_stretch
        _require(1.0 <= low <= high, "local_path_stretch must be an increasing pair >= 1")
        _require(self.traceroutes_per_asn_pair >= 0, "traceroutes_per_asn_pair must be >= 0")
        _require(self.traceroute_sources_per_ixp >= 0, "traceroute_sources_per_ixp must be >= 0")


@dataclass(frozen=True)
class InferenceConfig:
    """Thresholds and switches of the five-step inference pipeline."""

    rtt_baseline_threshold_ms: float = CASTRO_RTT_THRESHOLD_MS
    strong_remote_rtt_ms: float = 2.0
    atlas_route_server_filter_ms: float = 1.0
    lg_rounding_adjustment_ms: float = 1.0
    feasible_facility_tolerance_km: float = 25.0
    require_majority_for_private_voting: bool = True
    min_private_neighbours: int = 2
    max_coherent_vote_facilities: int = 6
    enable_step1_port_capacity: bool = True
    enable_step3_colocation_rtt: bool = True
    enable_step4_multi_ixp: bool = True
    enable_step5_private_links: bool = True

    def __post_init__(self) -> None:
        _require(self.rtt_baseline_threshold_ms > 0, "rtt_baseline_threshold_ms must be positive")
        _require(self.strong_remote_rtt_ms > 0, "strong_remote_rtt_ms must be positive")
        _require(
            self.atlas_route_server_filter_ms > 0, "atlas_route_server_filter_ms must be positive"
        )
        _require(self.lg_rounding_adjustment_ms >= 0, "lg_rounding_adjustment_ms must be >= 0")
        _require(
            self.feasible_facility_tolerance_km >= 0, "feasible_facility_tolerance_km must be >= 0"
        )
        _require(self.min_private_neighbours >= 1, "min_private_neighbours must be >= 1")


def config_fingerprint(
    config: InferenceConfig, field_names: Iterable[str]
) -> tuple[tuple[str, object], ...]:
    """A stable, hashable fingerprint of a subset of an :class:`InferenceConfig`.

    The step-graph engine keys cached step results by the fingerprint of the
    config fields each step *declares* it reads, so two configurations that
    agree on a step's declared fields share that step's cached result.  The
    fingerprint is the sorted tuple of ``(field_name, value)`` pairs — order
    independent, equality-comparable and usable as (part of) a dict key.

    Unknown field names raise :class:`~repro.exceptions.ConfigurationError`
    immediately: a typo in a step's declaration would otherwise silently
    desynchronise the cache from the config values the step actually reads.
    """
    known = {f.name for f in fields(InferenceConfig)}
    unknown = sorted(name for name in field_names if name not in known)
    if unknown:
        listed = ", ".join(repr(name) for name in unknown)
        raise ConfigurationError(
            f"unknown InferenceConfig field(s) {listed} in fingerprint declaration")
    return tuple((name, getattr(config, name)) for name in sorted(field_names))


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of all configurations used by an experiment run."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    noise: DataSourceNoiseConfig = field(default_factory=DataSourceNoiseConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    studied_ixp_count: int = 30

    def __post_init__(self) -> None:
        _require(self.studied_ixp_count >= 1, "studied_ixp_count must be at least 1")

    @classmethod
    def tiny(cls, seed: int = 7) -> "ExperimentConfig":
        """Small bundle for fast tests."""
        return cls(generator=GeneratorConfig.tiny(seed=seed), studied_ixp_count=5)

    @classmethod
    def small(cls, seed: int = 11) -> "ExperimentConfig":
        """Mid-size bundle for integration tests."""
        return cls(generator=GeneratorConfig.small(seed=seed), studied_ixp_count=10)
