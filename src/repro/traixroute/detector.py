"""Detection of IXP crossings and private adjacencies in traceroute paths.

The triplet rule (Section 3.3 of the paper): a path crosses an IXP when three
consecutive responding hops ``(IP1, IP2, IP3)`` satisfy

1. ``IP2`` belongs to an IXP peering LAN and is assigned to the same AS as
   ``IP3`` (the member that the packet *enters* through the exchange),
2. the AS of ``IP1`` differs from that member, and
3. both ASes are members of the IXP owning the peering LAN.

The same module also extracts *private adjacencies*: consecutive responding
hops whose addresses belong to different ASes without any IXP LAN in between,
which is the raw material of Step 5 (private-connectivity localisation).

:class:`CorpusDetectionIndex` layers the dataset-versioning contract on top:
it keeps the per-path detection results of one corpus and, when the dataset's
LAN prefixes or the prefix2as map change through their journal-emitting
mutators, re-detects **only the paths whose hops fall under a changed
prefix** — the detection analogue of the LPM delta overlay and the
geo-distance index's selective eviction.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from threading import Lock

from repro.datasources.merge import (
    DOMAIN_INTERFACES,
    DOMAIN_IXP_FACILITIES,
    DOMAIN_IXP_PREFIXES,
    ObservedDataset,
)
from repro.datasources.prefix2as import DOMAIN_PREFIXES, Prefix2ASMap
from repro.measurement.results import TracerouteCorpus
from repro.routing.forwarding import ForwardingPath

#: Changed prefixes beyond which a selective re-detection stops being cheaper
#: than a full corpus re-scan with a fresh detector.
SELECTIVE_REDETECTION_LIMIT = 256


@dataclass(frozen=True)
class IXPCrossing:
    """One detected IXP crossing.

    Attributes
    ----------
    ixp_id:
        The IXP whose peering LAN was traversed.
    entry_ip / entry_asn:
        The hop *before* the IXP LAN address (the near-side member's border
        router) and the AS it maps to.
    ixp_interface_ip / far_asn:
        The IXP LAN address observed and the member AS it is assigned to
        (the far-side member).
    exit_ip:
        The hop right after the IXP LAN address.
    """

    ixp_id: str
    entry_ip: str
    entry_asn: int
    ixp_interface_ip: str
    far_asn: int
    exit_ip: str


@dataclass(frozen=True)
class PrivateAdjacency:
    """Two consecutive hops in different ASes with no IXP LAN in between."""

    near_ip: str
    near_asn: int
    far_ip: str
    far_asn: int


class CrossingDetector:
    """Applies the triplet rule over traceroute paths."""

    def __init__(self, dataset: ObservedDataset, prefix2as: Prefix2ASMap) -> None:
        self.dataset = dataset
        self.prefix2as = prefix2as
        # Pre-compute membership sets per IXP for rule (3).
        self._members: dict[str, set[int]] = {
            ixp_id: dataset.members_of_ixp(ixp_id) for ixp_id in dataset.ixp_ids()
        }
        # Per-corpus classification memos: a detector sees the same hop IPs
        # over and over across a corpus, so both classifications (including
        # misses) are answered in O(1) after the first encounter.  The memos
        # live for the detector's lifetime; build a fresh detector if the
        # dataset or prefix2as map changes underneath.
        self._ixp_memo: dict[str, str | None] = {}
        self._asn_memo: dict[str, int | None] = {}
        # Serialises memo stores only; memo hits stay lock-free dict reads.
        self._lock = Lock()

    # ------------------------------------------------------------------ #
    # IP classification helpers
    # ------------------------------------------------------------------ #
    def ixp_of_ip(self, ip: str) -> str | None:
        """The IXP whose peering LAN contains ``ip``, if any."""
        memo = self._ixp_memo
        if ip in memo:
            return memo[ip]
        result = self.dataset.ixp_of_interface(ip)
        if result is None:
            result = self.dataset.ixp_for_ip(ip)
        with self._lock:
            memo[ip] = result
        return result

    def asn_of_ip(self, ip: str) -> int | None:
        """Best-effort IP-to-AS mapping (IXP interface list, then prefix2as)."""
        memo = self._asn_memo
        if ip in memo:
            return memo[ip]
        result = self.dataset.asn_of_interface(ip)
        if result is None:
            result = self.prefix2as.lookup(ip)
        with self._lock:
            memo[ip] = result
        return result

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    def detect(self, path: ForwardingPath) -> list[IXPCrossing]:
        """Detect every IXP crossing in one path."""
        crossings: list[IXPCrossing] = []
        hops = [hop.ip for hop in path.hops]
        for index in range(1, len(hops) - 1):
            first, middle, last = hops[index - 1], hops[index], hops[index + 1]
            if first is None or middle is None or last is None:
                continue
            ixp_id = self.ixp_of_ip(middle)
            if ixp_id is None:
                continue
            far_asn = self.dataset.asn_of_interface(middle)
            if far_asn is None:
                continue
            last_asn = self.asn_of_ip(last)
            if last_asn is None or last_asn != far_asn:
                continue
            entry_asn = self.asn_of_ip(first)
            if entry_asn is None or entry_asn == far_asn:
                continue
            members = self._members.get(ixp_id, set())
            if entry_asn not in members or far_asn not in members:
                continue
            crossings.append(
                IXPCrossing(
                    ixp_id=ixp_id,
                    entry_ip=first,
                    entry_asn=entry_asn,
                    ixp_interface_ip=middle,
                    far_asn=far_asn,
                    exit_ip=last,
                )
            )
        return crossings

    def detect_corpus(self, corpus: TracerouteCorpus) -> list[IXPCrossing]:
        """Detect crossings over an entire corpus."""
        crossings: list[IXPCrossing] = []
        for path in corpus.paths:
            crossings.extend(self.detect(path))
        return crossings

    # ------------------------------------------------------------------ #
    # Private adjacencies (Step 5 input)
    # ------------------------------------------------------------------ #
    def private_adjacencies(self, path: ForwardingPath) -> list[PrivateAdjacency]:
        """Extract consecutive-hop AS adjacencies that do not cross an IXP."""
        adjacencies: list[PrivateAdjacency] = []
        hops = [hop.ip for hop in path.hops]
        for index in range(len(hops) - 1):
            near, far = hops[index], hops[index + 1]
            if near is None or far is None:
                continue
            if self.ixp_of_ip(near) is not None or self.ixp_of_ip(far) is not None:
                continue
            near_asn = self.asn_of_ip(near)
            far_asn = self.asn_of_ip(far)
            if near_asn is None or far_asn is None or near_asn == far_asn:
                continue
            adjacencies.append(
                PrivateAdjacency(
                    near_ip=near, near_asn=near_asn, far_ip=far, far_asn=far_asn
                )
            )
        return adjacencies

    def private_adjacencies_corpus(
        self, corpus: TracerouteCorpus
    ) -> list[PrivateAdjacency]:
        """Extract private adjacencies over an entire corpus."""
        adjacencies: list[PrivateAdjacency] = []
        for path in corpus.paths:
            adjacencies.extend(self.private_adjacencies(path))
        return adjacencies


class CorpusDetectionIndex:
    """Per-path detection results maintained incrementally across revisions.

    One index binds a dataset, a prefix2as map and a corpus; it stores the
    crossings and private adjacencies of every path and keeps them current
    against the generation stamps of its inputs:

    * a **prefix change** (a LAN prefix re-map on the dataset, an add /
      re-map / removal on the prefix2as map) evicts the classification memos
      of exactly the hop IPs that fall under a changed prefix and re-detects
      only the paths containing such an IP.  Soundness: detection is a
      deterministic function of the classification answers a path's hops
      receive, every answer ever given is memoised, so a path none of whose
      memoised answers changed replays the exact same detection — and an IP
      that was never queried cannot have influenced the stored result;
    * an **interface change** rebuilds the whole index — the per-IXP
      membership sets (triplet rule 3) derive from the interface dicts, so
      any path could be affected;
    * **corpus growth** detects only the appended paths;
    * an opaque bump, a truncated journal, a shrunk corpus or an oversized
      change batch (:data:`SELECTIVE_REDETECTION_LIMIT`) falls back to a
      full re-scan with a fresh detector.

    Results are equal to what a fresh :class:`CrossingDetector` over the
    current state would produce, in the same (path-major) order.
    """

    def __init__(
        self,
        dataset: ObservedDataset,
        prefix2as: Prefix2ASMap,
        corpus: TracerouteCorpus,
    ) -> None:
        self.dataset = dataset
        self.prefix2as = prefix2as
        self.corpus = corpus
        self._detector: CrossingDetector | None = None
        self._per_path: list[tuple[list[IXPCrossing], list[PrivateAdjacency]]] = []
        # ip -> (version, numeric, max_prefixlen); IPs are content-stable, so
        # the parse survives rebuilds and is amortised across revisions.
        self._parsed_ips: dict[str, tuple[int, int, int]] = {}
        self._synced_dataset = dataset.generation
        self._synced_prefix2as = prefix2as.generation
        self._synced_paths = 0
        # Serialises revision syncs (and the mutations the sync helpers make
        # to the detector's memos) when engines race on a shared index.
        self._sync_lock = Lock()
        #: Full corpus re-scans performed (the first build counts as one).
        self.full_scans = 0
        #: Paths re-detected selectively across all revisions.
        self.paths_redetected = 0

    def results(self) -> tuple[list[IXPCrossing], list[PrivateAdjacency]]:
        """(crossings, adjacencies) over the whole corpus, current revision.

        The returned lists are fresh; the result objects inside are shared
        with the index (and with earlier revisions' results) and immutable.
        """
        self._sync()
        crossings: list[IXPCrossing] = []
        adjacencies: list[PrivateAdjacency] = []
        for path_crossings, path_adjacencies in self._per_path:
            crossings.extend(path_crossings)
            adjacencies.extend(path_adjacencies)
        return crossings, adjacencies

    # ------------------------------------------------------------------ #
    def _sync(self) -> None:
        with self._sync_lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        detector = self._detector
        if detector is None:
            self._rebuild()
            return

        changed_prefixes: list[str] = []
        membership_dirty: set[str] = set()
        dataset_generation = self.dataset.generation
        if dataset_generation != self._synced_dataset:
            changes = self.dataset.journal.since(
                self._synced_dataset,
                (DOMAIN_IXP_PREFIXES, DOMAIN_INTERFACES, DOMAIN_IXP_FACILITIES))
            if changes is None or any(
                change.domain == DOMAIN_INTERFACES for change in changes
            ):
                self._rebuild()
                return
            # Triplet rule (3) consults a per-IXP membership snapshot keyed
            # by the dataset's known IXP ids — a set both a prefix re-map
            # and a colocation change can extend or shrink.
            for change in changes:
                if change.domain == DOMAIN_IXP_PREFIXES:
                    changed_prefixes.append(change.key)
                    for ixp_id in (change.old, change.new):
                        if ixp_id is not None:
                            membership_dirty.add(ixp_id)
                else:  # DOMAIN_IXP_FACILITIES: key is (ixp_id, facility_id)
                    membership_dirty.add(change.key[0])
        prefix2as_generation = self.prefix2as.generation
        if prefix2as_generation != self._synced_prefix2as:
            changes = self.prefix2as.journal.since(
                self._synced_prefix2as, (DOMAIN_PREFIXES,))
            if changes is None:
                self._rebuild()
                return
            changed_prefixes.extend(change.key for change in changes)

        if len(changed_prefixes) + len(membership_dirty) > SELECTIVE_REDETECTION_LIMIT:
            self._rebuild()
            return
        if len(self.corpus.paths) < self._synced_paths:
            self._rebuild()
            return

        affected: set[str] = set()
        if changed_prefixes:
            affected |= self._evict_under(changed_prefixes)
        if membership_dirty:
            affected |= self._refresh_members(membership_dirty)
        if affected:
            self._redetect(affected)
        self._synced_dataset = dataset_generation
        self._synced_prefix2as = prefix2as_generation

        for path in self.corpus.paths[self._synced_paths:]:
            detector = self._detector
            self._per_path.append(
                (detector.detect(path), detector.private_adjacencies(path)))
        self._synced_paths = len(self.corpus.paths)

    def _rebuild(self) -> None:
        detector = self._detector = CrossingDetector(self.dataset, self.prefix2as)
        self._per_path = [
            (detector.detect(path), detector.private_adjacencies(path))
            for path in self.corpus.paths
        ]
        self._synced_dataset = self.dataset.generation
        self._synced_prefix2as = self.prefix2as.generation
        self._synced_paths = len(self.corpus.paths)
        self.full_scans += 1
        # Pay the hop-IP parse during the (rare, already expensive) full
        # build so revision syncs only shift-and-test.
        parsed = self._parsed_ips
        for ip in set(detector._ixp_memo) | set(detector._asn_memo):
            if ip not in parsed:
                address = ipaddress.ip_address(ip)
                parsed[ip] = (address.version, int(address), address.max_prefixlen)

    def _refresh_members(self, ixp_ids: set[str]) -> set[str]:
        """Refresh rule-3 membership snapshots; return IPs to re-detect.

        Mirrors a fresh detector: an IXP outside ``dataset.ixp_ids()`` has no
        membership set (an absent and an empty set behave identically under
        rule 3).  Classification memos are untouched — only paths whose hops
        *classified to* an IXP with genuinely changed membership can detect
        differently.
        """
        detector = self._detector
        known = set(self.dataset.ixp_ids())
        changed: set[str] = set()
        for ixp_id in ixp_ids:
            old = detector._members.get(ixp_id)
            if ixp_id in known:
                members = self.dataset.members_of_ixp(ixp_id)
                if (old or set()) != members:
                    detector._members[ixp_id] = members
                    changed.add(ixp_id)
            elif detector._members.pop(ixp_id, None):
                changed.add(ixp_id)
        if not changed:
            return set()
        return {
            ip for ip, value in detector._ixp_memo.items() if value in changed
        }

    def _evict_under(self, prefixes: list[str]) -> set[str]:
        """Evict memoised classifications under the prefixes; return the IPs."""
        detector = self._detector
        # Bucket the changed networks by (version, prefixlen): containment
        # for a whole bucket is then one shift and one set lookup per IP.
        buckets: dict[tuple[int, int], set[int]] = {}
        for prefix in prefixes:
            network = ipaddress.ip_network(prefix)
            shift = network.max_prefixlen - network.prefixlen
            buckets.setdefault((network.version, shift), set()).add(
                int(network.network_address) >> shift)
        affected: set[str] = set()
        parsed = self._parsed_ips
        for ip in set(detector._ixp_memo) | set(detector._asn_memo):
            info = parsed.get(ip)
            if info is None:
                address = ipaddress.ip_address(ip)
                info = parsed[ip] = (
                    address.version, int(address), address.max_prefixlen)
            version, numeric, _max_prefixlen = info
            for (bucket_version, shift), networks in buckets.items():
                if bucket_version == version and (numeric >> shift) in networks:
                    affected.add(ip)
                    break
        for ip in affected:
            detector._ixp_memo.pop(ip, None)
            detector._asn_memo.pop(ip, None)
        return affected

    def _redetect(self, affected: set[str]) -> None:
        """Re-run detection for every stored path touching an affected IP."""
        detector = self._detector
        for index, path in enumerate(self.corpus.paths[: self._synced_paths]):
            if any(hop.ip in affected for hop in path.hops):
                self._per_path[index] = (
                    detector.detect(path), detector.private_adjacencies(path))
                self.paths_redetected += 1
