"""Detection of IXP crossings and private adjacencies in traceroute paths.

The triplet rule (Section 3.3 of the paper): a path crosses an IXP when three
consecutive responding hops ``(IP1, IP2, IP3)`` satisfy

1. ``IP2`` belongs to an IXP peering LAN and is assigned to the same AS as
   ``IP3`` (the member that the packet *enters* through the exchange),
2. the AS of ``IP1`` differs from that member, and
3. both ASes are members of the IXP owning the peering LAN.

The same module also extracts *private adjacencies*: consecutive responding
hops whose addresses belong to different ASes without any IXP LAN in between,
which is the raw material of Step 5 (private-connectivity localisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasources.merge import ObservedDataset
from repro.datasources.prefix2as import Prefix2ASMap
from repro.measurement.results import TracerouteCorpus
from repro.routing.forwarding import ForwardingPath


@dataclass(frozen=True)
class IXPCrossing:
    """One detected IXP crossing.

    Attributes
    ----------
    ixp_id:
        The IXP whose peering LAN was traversed.
    entry_ip / entry_asn:
        The hop *before* the IXP LAN address (the near-side member's border
        router) and the AS it maps to.
    ixp_interface_ip / far_asn:
        The IXP LAN address observed and the member AS it is assigned to
        (the far-side member).
    exit_ip:
        The hop right after the IXP LAN address.
    """

    ixp_id: str
    entry_ip: str
    entry_asn: int
    ixp_interface_ip: str
    far_asn: int
    exit_ip: str


@dataclass(frozen=True)
class PrivateAdjacency:
    """Two consecutive hops in different ASes with no IXP LAN in between."""

    near_ip: str
    near_asn: int
    far_ip: str
    far_asn: int


class CrossingDetector:
    """Applies the triplet rule over traceroute paths."""

    def __init__(self, dataset: ObservedDataset, prefix2as: Prefix2ASMap) -> None:
        self.dataset = dataset
        self.prefix2as = prefix2as
        # Pre-compute membership sets per IXP for rule (3).
        self._members: dict[str, set[int]] = {
            ixp_id: dataset.members_of_ixp(ixp_id) for ixp_id in dataset.ixp_ids()
        }
        # Per-corpus classification memos: a detector sees the same hop IPs
        # over and over across a corpus, so both classifications (including
        # misses) are answered in O(1) after the first encounter.  The memos
        # live for the detector's lifetime; build a fresh detector if the
        # dataset or prefix2as map changes underneath.
        self._ixp_memo: dict[str, str | None] = {}
        self._asn_memo: dict[str, int | None] = {}

    # ------------------------------------------------------------------ #
    # IP classification helpers
    # ------------------------------------------------------------------ #
    def ixp_of_ip(self, ip: str) -> str | None:
        """The IXP whose peering LAN contains ``ip``, if any."""
        memo = self._ixp_memo
        if ip in memo:
            return memo[ip]
        result = self.dataset.ixp_of_interface(ip)
        if result is None:
            result = self.dataset.ixp_for_ip(ip)
        memo[ip] = result
        return result

    def asn_of_ip(self, ip: str) -> int | None:
        """Best-effort IP-to-AS mapping (IXP interface list, then prefix2as)."""
        memo = self._asn_memo
        if ip in memo:
            return memo[ip]
        result = self.dataset.asn_of_interface(ip)
        if result is None:
            result = self.prefix2as.lookup(ip)
        memo[ip] = result
        return result

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    def detect(self, path: ForwardingPath) -> list[IXPCrossing]:
        """Detect every IXP crossing in one path."""
        crossings: list[IXPCrossing] = []
        hops = [hop.ip for hop in path.hops]
        for index in range(1, len(hops) - 1):
            first, middle, last = hops[index - 1], hops[index], hops[index + 1]
            if first is None or middle is None or last is None:
                continue
            ixp_id = self.ixp_of_ip(middle)
            if ixp_id is None:
                continue
            far_asn = self.dataset.asn_of_interface(middle)
            if far_asn is None:
                continue
            last_asn = self.asn_of_ip(last)
            if last_asn is None or last_asn != far_asn:
                continue
            entry_asn = self.asn_of_ip(first)
            if entry_asn is None or entry_asn == far_asn:
                continue
            members = self._members.get(ixp_id, set())
            if entry_asn not in members or far_asn not in members:
                continue
            crossings.append(
                IXPCrossing(
                    ixp_id=ixp_id,
                    entry_ip=first,
                    entry_asn=entry_asn,
                    ixp_interface_ip=middle,
                    far_asn=far_asn,
                    exit_ip=last,
                )
            )
        return crossings

    def detect_corpus(self, corpus: TracerouteCorpus) -> list[IXPCrossing]:
        """Detect crossings over an entire corpus."""
        crossings: list[IXPCrossing] = []
        for path in corpus.paths:
            crossings.extend(self.detect(path))
        return crossings

    # ------------------------------------------------------------------ #
    # Private adjacencies (Step 5 input)
    # ------------------------------------------------------------------ #
    def private_adjacencies(self, path: ForwardingPath) -> list[PrivateAdjacency]:
        """Extract consecutive-hop AS adjacencies that do not cross an IXP."""
        adjacencies: list[PrivateAdjacency] = []
        hops = [hop.ip for hop in path.hops]
        for index in range(len(hops) - 1):
            near, far = hops[index], hops[index + 1]
            if near is None or far is None:
                continue
            if self.ixp_of_ip(near) is not None or self.ixp_of_ip(far) is not None:
                continue
            near_asn = self.asn_of_ip(near)
            far_asn = self.asn_of_ip(far)
            if near_asn is None or far_asn is None or near_asn == far_asn:
                continue
            adjacencies.append(
                PrivateAdjacency(near_ip=near, near_asn=near_asn, far_ip=far, far_asn=far_asn)
            )
        return adjacencies

    def private_adjacencies_corpus(self, corpus: TracerouteCorpus) -> list[PrivateAdjacency]:
        """Extract private adjacencies over an entire corpus."""
        adjacencies: list[PrivateAdjacency] = []
        for path in corpus.paths:
            adjacencies.extend(self.private_adjacencies(path))
        return adjacencies
