"""IXP crossing detection in traceroute paths (traIXroute re-implementation).

The paper processes its traceroute corpus with traIXroute to find paths that
cross IXP fabrics.  :mod:`repro.traixroute.detector` re-implements the same
IP-triplet detection rules on top of the merged observed dataset (peering-LAN
prefixes and interface-to-member mappings) and Routeviews-style IP-to-AS
mapping.
"""

from repro.traixroute.detector import (
    CrossingDetector,
    IXPCrossing,
    PrivateAdjacency,
)

__all__ = ["CrossingDetector", "IXPCrossing", "PrivateAdjacency"]
