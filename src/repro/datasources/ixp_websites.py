"""Simulated IXP websites (Euro-IX style machine-readable exports).

The paper treats IXP websites as the most reliable source: member lists and
port capacities come straight from the operator, the pricing section reveals
the minimum physical port capacity (the ``Cmin`` of Step 1), and for the
50 largest IXPs the authors manually extracted facility lists.

Not every IXP publishes a machine-readable export, which is modelled by
``DataSourceNoiseConfig.website_publication_rate``; the records that *are*
published are accurate.
"""

from __future__ import annotations

from repro.datasources.base import SimulatedSource
from repro.datasources.records import (
    InterfaceRecord,
    PortCapacityRecord,
    PrefixRecord,
    SourceName,
    SourceSnapshot,
)


class IXPWebsiteSource(SimulatedSource):
    """Produces the website view: accurate but only for publishing IXPs."""

    source_name = SourceName.WEBSITE

    def snapshot(self) -> SourceSnapshot:
        snapshot = SourceSnapshot(source=self.source_name)
        ixps_by_size = self.world.ixps_by_member_count()
        top_n = {ixp.ixp_id for ixp in ixps_by_size[: self.noise.website_facility_list_top_n]}

        for ixp in ixps_by_size:
            publishes = self._keep(self.noise.website_publication_rate)
            # Pricing pages (and therefore Cmin) are available for almost every
            # exchange, including ones without machine-readable member lists.
            if publishes or self._keep(0.90):
                snapshot.min_physical_capacity[ixp.ixp_id] = ixp.min_physical_capacity_mbps
            # Facility lists are published (or manually extracted by the
            # authors) for the largest exchanges even without a member export.
            if ixp.ixp_id in top_n:
                snapshot.ixp_facilities[ixp.ixp_id] = set(ixp.facility_ids)
            if not publishes:
                continue

            snapshot.prefixes.append(
                PrefixRecord(prefix=ixp.peering_lan, ixp_id=ixp.ixp_id, source=self.source_name)
            )
            for membership in self.world.active_memberships(ixp.ixp_id):
                snapshot.interfaces.append(
                    InterfaceRecord(
                        ip=membership.interface_ip,
                        asn=membership.asn,
                        ixp_id=ixp.ixp_id,
                        source=self.source_name,
                    )
                )
                if self._keep(self.noise.website_port_capacity_rate):
                    snapshot.port_capacities.append(
                        PortCapacityRecord(
                            ixp_id=ixp.ixp_id,
                            asn=membership.asn,
                            capacity_mbps=membership.port_capacity_mbps,
                            source=self.source_name,
                        )
                    )
        return snapshot
