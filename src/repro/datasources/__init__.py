"""Simulated public data sources and their merge.

The paper assembles its IXP dataset from IXP websites (Euro-IX exports),
Hurricane Electric, PeeringDB, Packet Clearing House and Inflect, resolving
conflicts with the preference order ``websites > HE > PDB > PCH`` (Table 1),
and obtains AS attributes from CAIDA (customer cones) and APNIC (user
populations).

Each module here produces a *noisy, incomplete view* of the ground-truth
:class:`~repro.topology.world.World`: records can be missing, stale or plainly
wrong, with rates controlled by
:class:`~repro.config.DataSourceNoiseConfig`.  The merge in
:mod:`repro.datasources.merge` recombines those views exactly the way the
paper does and exposes the resulting
:class:`~repro.datasources.merge.ObservedDataset` — the only topology
information the inference pipeline is allowed to see.
"""

from repro.datasources.records import (
    ASFacilityRecord,
    FacilityRecord,
    InterfaceRecord,
    PortCapacityRecord,
    PrefixRecord,
    SourceName,
    SourceSnapshot,
)
from repro.datasources.ixp_websites import IXPWebsiteSource
from repro.datasources.hurricane import HurricaneElectricSource
from repro.datasources.peeringdb import PeeringDBSource
from repro.datasources.pch import PacketClearingHouseSource
from repro.datasources.inflect import InflectSource
from repro.datasources.caida import CAIDASource
from repro.datasources.apnic import APNICSource
from repro.datasources.merge import (
    DatasetMerger,
    MergeStatistics,
    ObservedDataset,
    build_observed_dataset,
)

__all__ = [
    "ASFacilityRecord",
    "FacilityRecord",
    "InterfaceRecord",
    "PortCapacityRecord",
    "PrefixRecord",
    "SourceName",
    "SourceSnapshot",
    "IXPWebsiteSource",
    "HurricaneElectricSource",
    "PeeringDBSource",
    "PacketClearingHouseSource",
    "InflectSource",
    "CAIDASource",
    "APNICSource",
    "DatasetMerger",
    "MergeStatistics",
    "ObservedDataset",
    "build_observed_dataset",
]
