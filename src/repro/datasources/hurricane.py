"""Simulated Hurricane Electric Internet Exchange Report.

HE aggregates IXP membership information from BGP and third parties.  Its
coverage of IXP interfaces is the widest of the public databases, with a
small rate of stale or misattributed entries (the "conflicts" of Table 1).
"""

from __future__ import annotations

from repro.datasources.base import SimulatedSource
from repro.datasources.records import (
    InterfaceRecord,
    PrefixRecord,
    SourceName,
    SourceSnapshot,
)


class HurricaneElectricSource(SimulatedSource):
    """Wide interface coverage, small conflict rate."""

    source_name = SourceName.HE

    def snapshot(self) -> SourceSnapshot:
        snapshot = SourceSnapshot(source=self.source_name)
        for ixp in self.world.ixps.values():
            if self._keep(self.noise.he_prefix_coverage):
                snapshot.prefixes.append(
                    PrefixRecord(prefix=ixp.peering_lan, ixp_id=ixp.ixp_id, source=self.source_name)
                )
            for membership in self.world.active_memberships(ixp.ixp_id):
                if not self._keep(self.noise.he_interface_coverage):
                    continue
                asn = membership.asn
                if self._keep(self.noise.he_conflict_rate):
                    asn = self._wrong_asn(asn)
                snapshot.interfaces.append(
                    InterfaceRecord(
                        ip=membership.interface_ip,
                        asn=asn,
                        ixp_id=ixp.ixp_id,
                        source=self.source_name,
                    )
                )
        return snapshot
