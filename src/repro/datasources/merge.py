"""Merging the simulated data sources into the observed dataset.

The paper resolves conflicting records with a fixed preference order —
``IXP websites > Hurricane Electric > PeeringDB > PCH`` — and reports, per
source, the total, unique and conflicting entries (Table 1).  This module
re-implements exactly that merge and produces:

* an :class:`ObservedDataset` — the *only* topology knowledge the inference
  pipeline is allowed to use (interfaces, prefixes, colocation, coordinates,
  port capacities, per-AS attributes), and
* a :class:`MergeStatistics` record that regenerates Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasources.records import SourceName, SourceSnapshot
from repro.exceptions import DataSourceError
from repro.geo.coordinates import GeoPoint
from repro.netindex import LPMIndex, SizeGuardedIndex
from repro.topology.entities import TrafficLevel

#: Preference order used to resolve conflicting records (highest first).
SOURCE_PREFERENCE: tuple[SourceName, ...] = (
    SourceName.WEBSITE,
    SourceName.HE,
    SourceName.PDB,
    SourceName.PCH,
)


@dataclass
class SourceContribution:
    """Per-source contribution counters (one row of Table 1)."""

    source: SourceName
    prefixes_total: int = 0
    prefixes_unique: int = 0
    prefixes_conflicts: int = 0
    interfaces_total: int = 0
    interfaces_unique: int = 0
    interfaces_conflicts: int = 0

    @property
    def interface_conflict_rate(self) -> float:
        """Fraction of this source's interface records that conflict."""
        if self.interfaces_total == 0:
            return 0.0
        return self.interfaces_conflicts / self.interfaces_total


@dataclass
class MergeStatistics:
    """Aggregated merge statistics (Table 1)."""

    contributions: dict[SourceName, SourceContribution] = field(default_factory=dict)
    total_prefixes: int = 0
    total_interfaces: int = 0

    def rows(self) -> list[dict[str, object]]:
        """Render the statistics as Table 1-style rows."""
        rows: list[dict[str, object]] = []
        for source in SOURCE_PREFERENCE:
            if source not in self.contributions:
                continue
            c = self.contributions[source]
            rows.append(
                {
                    "source": source.value,
                    "prefixes_total": c.prefixes_total,
                    "prefixes_unique": c.prefixes_unique,
                    "prefixes_conflicts": c.prefixes_conflicts,
                    "interfaces_total": c.interfaces_total,
                    "interfaces_unique": c.interfaces_unique,
                    "interfaces_conflicts": c.interfaces_conflicts,
                }
            )
        rows.append(
            {
                "source": "Total",
                "prefixes_total": self.total_prefixes,
                "prefixes_unique": "",
                "prefixes_conflicts": "",
                "interfaces_total": self.total_interfaces,
                "interfaces_unique": "",
                "interfaces_conflicts": "",
            }
        )
        return rows


@dataclass
class ObservedDataset:
    """The merged view of the world that inference and analysis consume.

    The hot lookups (:meth:`ixp_for_ip`, :meth:`interfaces_of_ixp`,
    :meth:`members_of_ixp`) are served from lazily built indexes over the
    public dicts, held in shared
    :class:`~repro.netindex.sizeguard.SizeGuardedIndex` guards.  The indexes
    rebuild automatically whenever the backing dict *grows or shrinks*; code
    that replaces values in place without changing the dict's size must call
    :meth:`invalidate_caches` afterwards (as :class:`DatasetMerger` does
    after a merge).
    """

    ixp_prefixes: dict[str, str] = field(default_factory=dict)
    interface_ixp: dict[str, str] = field(default_factory=dict)
    interface_asn: dict[str, int] = field(default_factory=dict)
    ixp_facilities: dict[str, set[str]] = field(default_factory=dict)
    as_facilities: dict[int, set[str]] = field(default_factory=dict)
    facility_locations: dict[str, GeoPoint] = field(default_factory=dict)
    port_capacities: dict[tuple[str, int], int] = field(default_factory=dict)
    min_physical_capacity: dict[str, int] = field(default_factory=dict)
    traffic_levels: dict[int, TrafficLevel] = field(default_factory=dict)
    user_populations: dict[int, int] = field(default_factory=dict)
    customer_cone_sizes: dict[int, int] = field(default_factory=dict)
    countries: dict[int, str] = field(default_factory=dict)

    # Size-guarded lookup indexes; never part of equality or repr.
    _lan_index: SizeGuardedIndex = field(
        default_factory=SizeGuardedIndex, init=False, repr=False, compare=False)
    _ixp_views: SizeGuardedIndex = field(
        default_factory=SizeGuardedIndex, init=False, repr=False, compare=False)
    _ixp_members: dict[str, set[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Interface / prefix lookups
    # ------------------------------------------------------------------ #
    def invalidate_caches(self) -> None:
        """Drop every derived index; the next lookup rebuilds them."""
        self._lan_index.invalidate()
        self._ixp_views.invalidate()
        self._ixp_members = {}

    def ixp_ids(self) -> list[str]:
        """All IXPs present in the merged dataset."""
        return sorted(set(self.ixp_prefixes.values()) | set(self.ixp_facilities))

    def _build_interface_views(self) -> dict[str, dict[str, int]]:
        by_ixp: dict[str, dict[str, int]] = {}
        for ip, owner in self.interface_ixp.items():
            asn = self.interface_asn.get(ip)
            # Skip interfaces with no ASN record rather than letting one
            # inconsistent entry poison the view for every IXP.
            if asn is not None:
                by_ixp.setdefault(owner, {})[ip] = asn
        # A rebuilt view invalidates the member-set memo derived from it.
        self._ixp_members = {}
        return by_ixp

    def _interfaces_by_ixp(self) -> dict[str, dict[str, int]]:
        """IXP -> (IP -> member ASN) view, rebuilt when interfaces change."""
        return self._ixp_views.get(len(self.interface_ixp), self._build_interface_views)

    def interfaces_of_ixp(self, ixp_id: str) -> dict[str, int]:
        """IP -> member ASN for one IXP."""
        return dict(self._interfaces_by_ixp().get(ixp_id, {}))

    def members_of_ixp(self, ixp_id: str) -> set[int]:
        """The member ASNs observed at one IXP."""
        # Refresh the per-IXP views first: a rebuild clears the member memo.
        by_ixp = self._interfaces_by_ixp()
        members = self._ixp_members.get(ixp_id)
        if members is None:
            members = self._ixp_members[ixp_id] = set(by_ixp.get(ixp_id, {}).values())
        return set(members)

    def asn_of_interface(self, ip: str) -> int | None:
        """Member ASN owning an IXP interface, if known."""
        return self.interface_asn.get(ip)

    def ixp_of_interface(self, ip: str) -> str | None:
        """IXP whose peering LAN contains an interface, if known."""
        return self.interface_ixp.get(ip)

    def ixp_for_ip(self, ip: str) -> str | None:
        """Longest-prefix match of an arbitrary IP against the known LANs.

        The most specific LAN prefix containing the address wins — the seed
        implementation returned the *first* match in insertion order, which
        misclassified addresses whenever a more-specific LAN nested inside a
        broader registered prefix.
        """
        index = self._lan_index.get(
            len(self.ixp_prefixes), lambda: LPMIndex(self.ixp_prefixes))
        return index.lookup(ip)

    # ------------------------------------------------------------------ #
    # Colocation lookups
    # ------------------------------------------------------------------ #
    def facilities_of_ixp(self, ixp_id: str) -> set[str]:
        """Observed facilities of one IXP (may be incomplete)."""
        return set(self.ixp_facilities.get(ixp_id, set()))

    def facilities_of_as(self, asn: int) -> set[str]:
        """Observed facilities of one AS (may be incomplete or spurious)."""
        return set(self.as_facilities.get(asn, set()))

    def has_facility_data_for_as(self, asn: int) -> bool:
        """Whether any facility is recorded for an AS (no set copy)."""
        return bool(self.as_facilities.get(asn))

    def facility_location(self, facility_id: str) -> GeoPoint | None:
        """Best-known coordinates of a facility."""
        return self.facility_locations.get(facility_id)

    def common_facilities(self, ixp_id: str, asn: int) -> set[str]:
        """Facilities shared by an IXP and a member AS, as observed."""
        return self.facilities_of_ixp(ixp_id) & self.facilities_of_as(asn)

    # ------------------------------------------------------------------ #
    # Port capacities
    # ------------------------------------------------------------------ #
    def port_capacity(self, ixp_id: str, asn: int) -> int | None:
        """Observed port capacity of a member at an IXP (Mbit/s), if known."""
        return self.port_capacities.get((ixp_id, asn))

    def min_capacity(self, ixp_id: str) -> int | None:
        """Minimum physical port capacity advertised by the IXP, if known."""
        return self.min_physical_capacity.get(ixp_id)


class DatasetMerger:
    """Merges source snapshots with the paper's preference order."""

    def __init__(self, snapshots: list[SourceSnapshot]) -> None:
        if not snapshots:
            raise DataSourceError("at least one source snapshot is required")
        self.snapshots = snapshots
        self._by_source = {snapshot.source: snapshot for snapshot in snapshots}

    def merge(self) -> tuple[ObservedDataset, MergeStatistics]:
        """Merge every snapshot into one observed dataset plus Table 1 stats."""
        dataset = ObservedDataset()
        statistics = MergeStatistics()

        ordered = [s for s in SOURCE_PREFERENCE if s in self._by_source]
        extra = [s.source for s in self.snapshots if s.source not in SOURCE_PREFERENCE]

        self._merge_prefixes_and_interfaces(dataset, statistics, ordered)
        self._merge_facilities(dataset, ordered + extra)
        self._merge_colocation(dataset, ordered)
        self._merge_capacities(dataset, ordered)
        self._merge_attributes(dataset, ordered)
        # The merge mutates the backing dicts directly (including in-place
        # value replacements); start consumers from a clean index state.
        dataset.invalidate_caches()
        return dataset, statistics

    # ------------------------------------------------------------------ #
    def _merge_prefixes_and_interfaces(
        self,
        dataset: ObservedDataset,
        statistics: MergeStatistics,
        ordered: list[SourceName],
    ) -> None:
        prefix_values: dict[str, dict[SourceName, str]] = {}
        interface_values: dict[str, dict[SourceName, tuple[str, int]]] = {}

        for source in ordered:
            snapshot = self._by_source[source]
            for record in snapshot.prefixes:
                prefix_values.setdefault(record.prefix, {})[source] = record.ixp_id
            for record in snapshot.interfaces:
                interface_values.setdefault(record.ip, {})[source] = (record.ixp_id, record.asn)

        for source in ordered:
            statistics.contributions[source] = SourceContribution(source=source)

        for prefix, per_source in prefix_values.items():
            chosen_source = next(s for s in ordered if s in per_source)
            dataset.ixp_prefixes[prefix] = per_source[chosen_source]
            for source, value in per_source.items():
                contribution = statistics.contributions[source]
                contribution.prefixes_total += 1
                if len(per_source) == 1:
                    contribution.prefixes_unique += 1
                if value != per_source[chosen_source]:
                    contribution.prefixes_conflicts += 1

        for ip, per_source in interface_values.items():
            chosen_source = next(s for s in ordered if s in per_source)
            ixp_id, asn = per_source[chosen_source]
            dataset.interface_ixp[ip] = ixp_id
            dataset.interface_asn[ip] = asn
            for source, value in per_source.items():
                contribution = statistics.contributions[source]
                contribution.interfaces_total += 1
                if len(per_source) == 1:
                    contribution.interfaces_unique += 1
                if value != per_source[chosen_source]:
                    contribution.interfaces_conflicts += 1

        statistics.total_prefixes = len(dataset.ixp_prefixes)
        statistics.total_interfaces = len(dataset.interface_ixp)

    def _merge_facilities(self, dataset: ObservedDataset, sources: list[SourceName]) -> None:
        # PeeringDB provides the base coordinates; Inflect corrections win.
        for source in (SourceName.PCH, SourceName.PDB, SourceName.HE, SourceName.WEBSITE):
            if source not in self._by_source:
                continue
            for record in self._by_source[source].facilities:
                dataset.facility_locations[record.facility_id] = record.location
        if SourceName.INFLECT in self._by_source:
            for record in self._by_source[SourceName.INFLECT].facilities:
                dataset.facility_locations[record.facility_id] = record.location

    def _merge_colocation(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        inflect = self._by_source.get(SourceName.INFLECT)
        snapshots = [self._by_source[s] for s in ordered]
        if inflect is not None:
            snapshots.append(inflect)
        for snapshot in snapshots:
            for ixp_id, facility_ids in snapshot.ixp_facilities.items():
                dataset.ixp_facilities.setdefault(ixp_id, set()).update(facility_ids)
            for record in snapshot.as_facilities:
                dataset.as_facilities.setdefault(record.asn, set()).add(record.facility_id)

    def _merge_capacities(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        # Lower-preference sources first so higher-preference records overwrite.
        for source in reversed(ordered):
            snapshot = self._by_source[source]
            for record in snapshot.port_capacities:
                dataset.port_capacities[(record.ixp_id, record.asn)] = record.capacity_mbps
            for ixp_id, capacity in snapshot.min_physical_capacity.items():
                dataset.min_physical_capacity[ixp_id] = capacity

    def _merge_attributes(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        for source in reversed(ordered):
            snapshot = self._by_source[source]
            dataset.traffic_levels.update(snapshot.traffic_levels)
            dataset.user_populations.update(snapshot.user_populations)
            dataset.countries.update(snapshot.countries)


def build_observed_dataset(
    world,
    noise=None,
    *,
    include_caida: bool = True,
    include_apnic: bool = True,
) -> tuple[ObservedDataset, MergeStatistics]:
    """Convenience helper: snapshot every source and merge them.

    Parameters
    ----------
    world:
        The ground-truth :class:`~repro.topology.world.World`.
    noise:
        Optional :class:`~repro.config.DataSourceNoiseConfig`.
    include_caida / include_apnic:
        Whether to attach customer cones and user populations (analysis-only
        attributes) to the observed dataset.
    """
    from repro.datasources.apnic import APNICSource
    from repro.datasources.caida import CAIDASource
    from repro.datasources.hurricane import HurricaneElectricSource
    from repro.datasources.inflect import InflectSource
    from repro.datasources.ixp_websites import IXPWebsiteSource
    from repro.datasources.pch import PacketClearingHouseSource
    from repro.datasources.peeringdb import PeeringDBSource

    snapshots = [
        IXPWebsiteSource(world, noise).snapshot(),
        HurricaneElectricSource(world, noise).snapshot(),
        PeeringDBSource(world, noise).snapshot(),
        PacketClearingHouseSource(world, noise).snapshot(),
        InflectSource(world, noise).snapshot(),
    ]
    dataset, statistics = DatasetMerger(snapshots).merge()
    if include_caida:
        dataset.customer_cone_sizes = CAIDASource(world, noise).snapshot().cone_sizes
    if include_apnic:
        dataset.user_populations = APNICSource(world, noise).snapshot()
    return dataset, statistics
