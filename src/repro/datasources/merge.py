"""Merging the simulated data sources into the observed dataset.

The paper resolves conflicting records with a fixed preference order —
``IXP websites > Hurricane Electric > PeeringDB > PCH`` — and reports, per
source, the total, unique and conflicting entries (Table 1).  This module
re-implements exactly that merge and produces:

* an :class:`ObservedDataset` — the *only* topology knowledge the inference
  pipeline is allowed to use (interfaces, prefixes, colocation, coordinates,
  port capacities, per-AS attributes), and
* a :class:`MergeStatistics` record that regenerates Table 1.

The dataset is **generation-stamped** (:class:`~repro.versioning.Versioned`).
Every mutation that goes through the journal-emitting mutators
(:meth:`ObservedDataset.set_ixp_prefix`, :meth:`~ObservedDataset.set_interface`,
the colocation/capacity/location setters) records a typed
:class:`~repro.versioning.Change` under one of the :data:`DATASET_DOMAINS`,
bumps the matching domain generation, and patches the derived indexes
incrementally where possible — so continuous feed refreshes re-key exactly
the consumers they can affect instead of tearing every cache down.
:class:`DatasetMerger` itself writes through these mutators, which makes
*re-merging* updated snapshots into an existing dataset
(:meth:`DatasetMerger.merge` with ``into=``) emit a journal of the actual
differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock

from repro.datasources.records import SourceName, SourceSnapshot
from repro.exceptions import DataSourceError
from repro.geo.coordinates import GeoPoint
from repro.netindex import LPMDeltaView, LPMIndex, apply_lpm_delta
from repro.topology.entities import TrafficLevel
from repro.versioning import Change, ChangeKind, GenerationGuardedIndex, Versioned

#: Preference order used to resolve conflicting records (highest first).
SOURCE_PREFERENCE: tuple[SourceName, ...] = (
    SourceName.WEBSITE,
    SourceName.HE,
    SourceName.PDB,
    SourceName.PCH,
)

# --------------------------------------------------------------------- #
# Versioning domains — the named slices of the dataset that journalled
# mutations are recorded under.  Consumers (the geo-distance index, the
# step-graph engine's cache keys) subscribe to exactly the domains that can
# affect them.
# --------------------------------------------------------------------- #
DOMAIN_IXP_PREFIXES = "ixp_prefixes"
DOMAIN_INTERFACES = "interfaces"
DOMAIN_IXP_FACILITIES = "ixp_facilities"
DOMAIN_AS_FACILITIES = "as_facilities"
DOMAIN_FACILITY_LOCATIONS = "facility_locations"
DOMAIN_CAPACITIES = "capacities"
DOMAIN_ATTRIBUTES = "attributes"

DATASET_DOMAINS: tuple[str, ...] = (
    DOMAIN_IXP_PREFIXES,
    DOMAIN_INTERFACES,
    DOMAIN_IXP_FACILITIES,
    DOMAIN_AS_FACILITIES,
    DOMAIN_FACILITY_LOCATIONS,
    DOMAIN_CAPACITIES,
    DOMAIN_ATTRIBUTES,
)

#: The dict fields :meth:`ObservedDataset.set_attribute` may write (all
#: journalled under :data:`DOMAIN_ATTRIBUTES`).
_ATTRIBUTE_FIELDS: frozenset[str] = frozenset(
    {"traffic_levels", "user_populations", "customer_cone_sizes", "countries"}
)

#: The domains the geometry of Steps 3-5 depends on; the
#: :class:`~repro.geo.distindex.GeoDistanceIndex` replays exactly these.
GEO_DOMAINS: tuple[str, ...] = (
    DOMAIN_FACILITY_LOCATIONS,
    DOMAIN_IXP_FACILITIES,
    DOMAIN_AS_FACILITIES,
)


@dataclass
class SourceContribution:
    """Per-source contribution counters (one row of Table 1)."""

    source: SourceName
    prefixes_total: int = 0
    prefixes_unique: int = 0
    prefixes_conflicts: int = 0
    interfaces_total: int = 0
    interfaces_unique: int = 0
    interfaces_conflicts: int = 0

    @property
    def interface_conflict_rate(self) -> float:
        """Fraction of this source's interface records that conflict."""
        if self.interfaces_total == 0:
            return 0.0
        return self.interfaces_conflicts / self.interfaces_total


@dataclass
class MergeStatistics:
    """Aggregated merge statistics (Table 1)."""

    contributions: dict[SourceName, SourceContribution] = field(default_factory=dict)
    total_prefixes: int = 0
    total_interfaces: int = 0

    def rows(self) -> list[dict[str, object]]:
        """Render the statistics as Table 1-style rows."""
        rows: list[dict[str, object]] = []
        for source in SOURCE_PREFERENCE:
            if source not in self.contributions:
                continue
            c = self.contributions[source]
            rows.append(
                {
                    "source": source.value,
                    "prefixes_total": c.prefixes_total,
                    "prefixes_unique": c.prefixes_unique,
                    "prefixes_conflicts": c.prefixes_conflicts,
                    "interfaces_total": c.interfaces_total,
                    "interfaces_unique": c.interfaces_unique,
                    "interfaces_conflicts": c.interfaces_conflicts,
                }
            )
        rows.append(
            {
                "source": "Total",
                "prefixes_total": self.total_prefixes,
                "prefixes_unique": "",
                "prefixes_conflicts": "",
                "interfaces_total": self.total_interfaces,
                "interfaces_unique": "",
                "interfaces_conflicts": "",
            }
        )
        return rows


@dataclass
class ObservedDataset(Versioned):
    """The merged view of the world that inference and analysis consume.

    The hot lookups (:meth:`ixp_for_ip`, :meth:`interfaces_of_ixp`,
    :meth:`members_of_ixp`) are served from lazily built indexes over the
    public dicts, guarded by ``(domain generation, size)`` version tokens
    (:class:`~repro.versioning.GenerationGuardedIndex`).  The staleness
    contract layers two paths:

    * **journalled mutators** (``set_*`` / ``add_*`` / ``remove_*``) record a
      typed change, bump the matching domain generation and — for the LAN
      LPM — patch the built index incrementally, so *every* mutation through
      them is visible immediately, including in-place value replacement at
      unchanged size (the historical size-guard trap);
    * **direct dict mutation** (the legacy path) keeps the legacy semantics:
      growth and shrinkage are detected by the size half of the token, and
      same-size edits require :meth:`invalidate_caches` (now an opaque
      generation bump that re-keys everything).
    """

    ixp_prefixes: dict[str, str] = field(default_factory=dict)
    interface_ixp: dict[str, str] = field(default_factory=dict)
    interface_asn: dict[str, int] = field(default_factory=dict)
    ixp_facilities: dict[str, set[str]] = field(default_factory=dict)
    as_facilities: dict[int, set[str]] = field(default_factory=dict)
    facility_locations: dict[str, GeoPoint] = field(default_factory=dict)
    port_capacities: dict[tuple[str, int], int] = field(default_factory=dict)
    min_physical_capacity: dict[str, int] = field(default_factory=dict)
    traffic_levels: dict[int, TrafficLevel] = field(default_factory=dict)
    user_populations: dict[int, int] = field(default_factory=dict)
    customer_cone_sizes: dict[int, int] = field(default_factory=dict)
    countries: dict[int, str] = field(default_factory=dict)

    # Derived lookup indexes; never part of equality or repr.  The LAN LPM
    # state is one atomically swapped (token, view) tuple so a reader never
    # observes a fresh token with a stale view.
    _lan_state: tuple[tuple[int, int], LPMIndex | LPMDeltaView] | None = field(
        default=None, init=False, repr=False, compare=False)
    _ixp_views: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)
    _ixp_members: dict[str, set[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    # Serialises the lazy builds/fills of the derived state above when the
    # per-IXP engine nodes read concurrently (journalled mutators stay
    # single-threaded by contract and are policed by the mutation rule).
    _view_lock: Lock = field(
        default_factory=Lock, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Versioning
    # ------------------------------------------------------------------ #
    def invalidate_caches(self) -> None:
        """Opaquely bump the generation; every derived index re-keys.

        Required only after mutating the public dicts *directly* without a
        size change; the journal-emitting mutators never need it.
        """
        self.bump_generation()
        self._lan_state = None
        self._ixp_members = {}

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        # The lock is process-local and the LAN LPM state is derived: a
        # worker process rebuilds both lazily from the public dicts.  The
        # other derived indexes carry their own pickling contracts.
        state["_view_lock"] = None
        state["_lan_state"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._view_lock = Lock()

    def domain_token(self, domain: str) -> tuple[int, int]:
        """``(domain generation, size hint)`` version token for one domain.

        The size hint preserves the legacy automatic detection of direct
        dict growth/shrinkage; the generation half covers every journalled
        mutation, including same-size replacement.
        """
        return (self.domain_generation(domain), self._domain_size(domain))

    def _domain_size(self, domain: str) -> int:
        if domain == DOMAIN_IXP_PREFIXES:
            return len(self.ixp_prefixes)
        if domain == DOMAIN_INTERFACES:
            return len(self.interface_ixp) + len(self.interface_asn)
        if domain == DOMAIN_IXP_FACILITIES:
            return sum(len(facilities) for facilities in self.ixp_facilities.values())
        if domain == DOMAIN_AS_FACILITIES:
            return sum(len(facilities) for facilities in self.as_facilities.values())
        if domain == DOMAIN_FACILITY_LOCATIONS:
            return len(self.facility_locations)
        if domain == DOMAIN_CAPACITIES:
            return len(self.port_capacities) + len(self.min_physical_capacity)
        if domain == DOMAIN_ATTRIBUTES:
            return (
                len(self.traffic_levels)
                + len(self.user_populations)
                + len(self.customer_cone_sizes)
                + len(self.countries)
            )
        # A typo in a StepSpec.data_domains declaration must fail loudly, not
        # produce a wrong-but-valid token (mirrors config_fingerprint).
        raise DataSourceError(f"unknown dataset domain {domain!r}")

    # ------------------------------------------------------------------ #
    # Journal-emitting mutators
    # ------------------------------------------------------------------ #
    def set_ixp_prefix(self, prefix: str, ixp_id: str) -> bool:
        """Register (or re-map) one peering-LAN prefix; True if anything changed.

        A re-map at unchanged size is patched straight into the built LAN
        LPM view (or compacts it past the overlay threshold) — no manual
        invalidation, no full teardown.
        """
        old = self.ixp_prefixes.get(prefix)
        if old == ixp_id:
            return False
        kind = ChangeKind.ADD if prefix not in self.ixp_prefixes else ChangeKind.REPLACE
        state = self._lan_state
        # The built view may only be patched if it is current *before* this
        # mutation; a stale view (a direct dict poke since it was built)
        # must be rebuilt, or the patch would stamp missing entries as fresh.
        before_token = self.domain_token(DOMAIN_IXP_PREFIXES)
        self.ixp_prefixes[prefix] = ixp_id
        self.record_change(Change(kind, DOMAIN_IXP_PREFIXES, prefix, old, ixp_id))
        if state is None or state[0] != before_token:
            self._lan_state = None
            return True
        patched = apply_lpm_delta(state[1], prefix, ixp_id)
        if patched is None:  # compaction: the next lookup rebuilds
            self._lan_state = None
        else:
            self._lan_state = (self.domain_token(DOMAIN_IXP_PREFIXES), patched)
        return True

    def remove_ixp_prefix(self, prefix: str) -> bool:
        """Drop one peering-LAN prefix; the LAN LPM rebuilds on next lookup."""
        if prefix not in self.ixp_prefixes:
            return False
        old = self.ixp_prefixes.pop(prefix)
        self.record_change(
            Change(ChangeKind.REMOVE, DOMAIN_IXP_PREFIXES, prefix, old, None))
        self._lan_state = None
        return True

    def set_interface(self, ip: str, ixp_id: str, asn: int) -> bool:
        """Register (or re-own) one IXP member interface; True if changed."""
        old = (self.interface_ixp.get(ip), self.interface_asn.get(ip))
        if old == (ixp_id, asn):
            return False
        kind = ChangeKind.ADD if ip not in self.interface_ixp else ChangeKind.REPLACE
        self.interface_ixp[ip] = ixp_id
        self.interface_asn[ip] = asn
        self.record_change(
            Change(kind, DOMAIN_INTERFACES, ip, old, (ixp_id, asn)))
        return True

    def remove_interface(self, ip: str) -> bool:
        """Drop one member interface from both interface dicts."""
        if ip not in self.interface_ixp and ip not in self.interface_asn:
            return False
        old = (self.interface_ixp.pop(ip, None), self.interface_asn.pop(ip, None))
        self.record_change(Change(ChangeKind.REMOVE, DOMAIN_INTERFACES, ip, old, None))
        return True

    def set_facility_location(self, facility_id: str, location: GeoPoint) -> bool:
        """Record (or move) a facility's coordinates; True if changed."""
        old = self.facility_locations.get(facility_id)
        if old == location:
            return False
        kind = (
            ChangeKind.ADD
            if facility_id not in self.facility_locations
            else ChangeKind.REPLACE
        )
        self.facility_locations[facility_id] = location
        self.record_change(
            Change(kind, DOMAIN_FACILITY_LOCATIONS, facility_id, old, location))
        return True

    def add_ixp_facility(self, ixp_id: str, facility_id: str) -> bool:
        """Add one facility to an IXP's observed footprint; True if new."""
        facilities = self.ixp_facilities.setdefault(ixp_id, set())
        if facility_id in facilities:
            return False
        facilities.add(facility_id)
        self.record_change(
            Change(ChangeKind.ADD, DOMAIN_IXP_FACILITIES, (ixp_id, facility_id)))
        return True

    def remove_ixp_facility(self, ixp_id: str, facility_id: str) -> bool:
        """Drop one facility from an IXP's observed footprint."""
        facilities = self.ixp_facilities.get(ixp_id)
        if facilities is None or facility_id not in facilities:
            return False
        facilities.discard(facility_id)
        self.record_change(
            Change(ChangeKind.REMOVE, DOMAIN_IXP_FACILITIES, (ixp_id, facility_id)))
        return True

    def add_as_facility(self, asn: int, facility_id: str) -> bool:
        """Add one facility to a member AS's observed footprint; True if new."""
        facilities = self.as_facilities.setdefault(asn, set())
        if facility_id in facilities:
            return False
        facilities.add(facility_id)
        self.record_change(
            Change(ChangeKind.ADD, DOMAIN_AS_FACILITIES, (asn, facility_id)))
        return True

    def remove_as_facility(self, asn: int, facility_id: str) -> bool:
        """Drop one facility from a member AS's observed footprint."""
        facilities = self.as_facilities.get(asn)
        if facilities is None or facility_id not in facilities:
            return False
        facilities.discard(facility_id)
        self.record_change(
            Change(ChangeKind.REMOVE, DOMAIN_AS_FACILITIES, (asn, facility_id)))
        return True

    def set_port_capacity(self, ixp_id: str, asn: int, capacity_mbps: int) -> bool:
        """Record a member's observed port capacity at one IXP."""
        key = (ixp_id, asn)
        old = self.port_capacities.get(key)
        if old == capacity_mbps:
            return False
        kind = ChangeKind.ADD if key not in self.port_capacities else ChangeKind.REPLACE
        self.port_capacities[key] = capacity_mbps
        self.record_change(Change(kind, DOMAIN_CAPACITIES, key, old, capacity_mbps))
        return True

    def set_min_capacity(self, ixp_id: str, capacity_mbps: int) -> bool:
        """Record the minimum physical port capacity an IXP sells directly."""
        old = self.min_physical_capacity.get(ixp_id)
        if old == capacity_mbps:
            return False
        kind = (
            ChangeKind.ADD
            if ixp_id not in self.min_physical_capacity
            else ChangeKind.REPLACE
        )
        self.min_physical_capacity[ixp_id] = capacity_mbps
        self.record_change(
            Change(kind, DOMAIN_CAPACITIES, ("min", ixp_id), old, capacity_mbps))
        return True

    def set_attribute(self, attribute: str, key: object, value: object) -> bool:
        """Record one analysis-only attribute (traffic level, population...).

        Only the analysis-attribute dicts are legal here: routing any other
        field through this mutator would journal it under the wrong domain
        and silently desynchronise every journal consumer.
        """
        if attribute not in _ATTRIBUTE_FIELDS:
            raise DataSourceError(
                f"{attribute!r} is not an analysis attribute; use its dedicated mutator")
        backing: dict = getattr(self, attribute)
        old = backing.get(key)
        if old == value:
            return False
        kind = ChangeKind.ADD if key not in backing else ChangeKind.REPLACE
        backing[key] = value
        self.record_change(
            Change(kind, DOMAIN_ATTRIBUTES, (attribute, key), old, value))
        return True

    # ------------------------------------------------------------------ #
    # Interface / prefix lookups
    # ------------------------------------------------------------------ #
    def ixp_ids(self) -> list[str]:
        """All IXPs present in the merged dataset."""
        return sorted(set(self.ixp_prefixes.values()) | set(self.ixp_facilities))

    def _build_interface_views(self) -> dict[str, dict[str, int]]:
        by_ixp: dict[str, dict[str, int]] = {}
        for ip, owner in self.interface_ixp.items():
            asn = self.interface_asn.get(ip)
            # Skip interfaces with no ASN record rather than letting one
            # inconsistent entry poison the view for every IXP.
            if asn is not None:
                by_ixp.setdefault(owner, {})[ip] = asn
        # A rebuilt view invalidates the member-set memo derived from it.
        with self._view_lock:
            self._ixp_members = {}
        return by_ixp

    def _interfaces_by_ixp(self) -> dict[str, dict[str, int]]:
        """IXP -> (IP -> member ASN) view, re-keyed when interfaces change."""
        return self._ixp_views.get(
            self.domain_token(DOMAIN_INTERFACES), self._build_interface_views)

    def interfaces_of_ixp(self, ixp_id: str) -> dict[str, int]:
        """IP -> member ASN for one IXP."""
        return dict(self._interfaces_by_ixp().get(ixp_id, {}))

    def members_of_ixp(self, ixp_id: str) -> set[int]:
        """The member ASNs observed at one IXP."""
        # Refresh the per-IXP views first: a rebuild clears the member memo.
        by_ixp = self._interfaces_by_ixp()
        members = self._ixp_members.get(ixp_id)
        if members is None:
            members = set(by_ixp.get(ixp_id, {}).values())
            with self._view_lock:
                self._ixp_members[ixp_id] = members
        return set(members)

    def asn_of_interface(self, ip: str) -> int | None:
        """Member ASN owning an IXP interface, if known."""
        return self.interface_asn.get(ip)

    def ixp_of_interface(self, ip: str) -> str | None:
        """IXP whose peering LAN contains an interface, if known."""
        return self.interface_ixp.get(ip)

    def ixp_for_ip(self, ip: str) -> str | None:
        """Longest-prefix match of an arbitrary IP against the known LANs.

        The most specific LAN prefix containing the address wins — the seed
        implementation returned the *first* match in insertion order, which
        misclassified addresses whenever a more-specific LAN nested inside a
        broader registered prefix.
        """
        token = self.domain_token(DOMAIN_IXP_PREFIXES)
        state = self._lan_state
        if state is None or state[0] != token:
            # Double-checked build: concurrent per-IXP readers must neither
            # build the LPM twice nor publish a stale (token, view) pair.
            with self._view_lock:
                state = self._lan_state
                if state is None or state[0] != token:
                    state = (token, LPMIndex(self.ixp_prefixes))
                    self._lan_state = state
        return state[1].lookup(ip)

    # ------------------------------------------------------------------ #
    # Colocation lookups
    # ------------------------------------------------------------------ #
    def facilities_of_ixp(self, ixp_id: str) -> set[str]:
        """Observed facilities of one IXP (may be incomplete)."""
        return set(self.ixp_facilities.get(ixp_id, set()))

    def facilities_of_as(self, asn: int) -> set[str]:
        """Observed facilities of one AS (may be incomplete or spurious)."""
        return set(self.as_facilities.get(asn, set()))

    def has_facility_data_for_as(self, asn: int) -> bool:
        """Whether any facility is recorded for an AS (no set copy)."""
        return bool(self.as_facilities.get(asn))

    def facility_location(self, facility_id: str) -> GeoPoint | None:
        """Best-known coordinates of a facility."""
        return self.facility_locations.get(facility_id)

    def common_facilities(self, ixp_id: str, asn: int) -> set[str]:
        """Facilities shared by an IXP and a member AS, as observed."""
        return self.facilities_of_ixp(ixp_id) & self.facilities_of_as(asn)

    # ------------------------------------------------------------------ #
    # Port capacities
    # ------------------------------------------------------------------ #
    def port_capacity(self, ixp_id: str, asn: int) -> int | None:
        """Observed port capacity of a member at an IXP (Mbit/s), if known."""
        return self.port_capacities.get((ixp_id, asn))

    def min_capacity(self, ixp_id: str) -> int | None:
        """Minimum physical port capacity advertised by the IXP, if known."""
        return self.min_physical_capacity.get(ixp_id)


class DatasetMerger:
    """Merges source snapshots with the paper's preference order.

    All writes go through the dataset's journal-emitting mutators, so a merge
    into an *existing* dataset (``merge(into=dataset)`` — the continuous
    feed-refresh path) emits a journal of exactly the records that actually
    changed, letting every downstream index patch itself incrementally.
    """

    def __init__(self, snapshots: list[SourceSnapshot]) -> None:
        if not snapshots:
            raise DataSourceError("at least one source snapshot is required")
        self.snapshots = snapshots
        self._by_source = {snapshot.source: snapshot for snapshot in snapshots}

    def merge(
        self, into: ObservedDataset | None = None
    ) -> tuple[ObservedDataset, MergeStatistics]:
        """Merge every snapshot into one observed dataset plus Table 1 stats.

        ``into`` re-merges onto an existing dataset: records that resolve to
        their current values are no-ops (no generation bump), and only the
        true differences enter the journal.  Records absent from the new
        snapshots are *not* retracted — the sources are additive views, and
        retraction semantics belong to the caller (use the ``remove_*``
        mutators).
        """
        dataset = into if into is not None else ObservedDataset()
        statistics = MergeStatistics()

        ordered = [s for s in SOURCE_PREFERENCE if s in self._by_source]
        extra = [s.source for s in self.snapshots if s.source not in SOURCE_PREFERENCE]

        self._merge_prefixes_and_interfaces(dataset, statistics, ordered)
        self._merge_facilities(dataset, ordered + extra)
        self._merge_colocation(dataset, ordered)
        self._merge_capacities(dataset, ordered)
        self._merge_attributes(dataset, ordered)
        return dataset, statistics

    # ------------------------------------------------------------------ #
    def _merge_prefixes_and_interfaces(
        self,
        dataset: ObservedDataset,
        statistics: MergeStatistics,
        ordered: list[SourceName],
    ) -> None:
        prefix_values: dict[str, dict[SourceName, str]] = {}
        interface_values: dict[str, dict[SourceName, tuple[str, int]]] = {}

        for source in ordered:
            snapshot = self._by_source[source]
            for record in snapshot.prefixes:
                prefix_values.setdefault(record.prefix, {})[source] = record.ixp_id
            for record in snapshot.interfaces:
                interface_values.setdefault(record.ip, {})[source] = (record.ixp_id, record.asn)

        for source in ordered:
            statistics.contributions[source] = SourceContribution(source=source)

        for prefix, per_source in prefix_values.items():
            chosen_source = next(s for s in ordered if s in per_source)
            dataset.set_ixp_prefix(prefix, per_source[chosen_source])
            for source, value in per_source.items():
                contribution = statistics.contributions[source]
                contribution.prefixes_total += 1
                if len(per_source) == 1:
                    contribution.prefixes_unique += 1
                if value != per_source[chosen_source]:
                    contribution.prefixes_conflicts += 1

        for ip, per_source in interface_values.items():
            chosen_source = next(s for s in ordered if s in per_source)
            ixp_id, asn = per_source[chosen_source]
            dataset.set_interface(ip, ixp_id, asn)
            for source, value in per_source.items():
                contribution = statistics.contributions[source]
                contribution.interfaces_total += 1
                if len(per_source) == 1:
                    contribution.interfaces_unique += 1
                if value != per_source[chosen_source]:
                    contribution.interfaces_conflicts += 1

        statistics.total_prefixes = len(dataset.ixp_prefixes)
        statistics.total_interfaces = len(dataset.interface_ixp)

    def _merge_facilities(self, dataset: ObservedDataset, sources: list[SourceName]) -> None:
        # Resolve each key to its final value *before* writing: a re-merge
        # into an existing dataset must be a generation no-op for keys whose
        # resolved value is unchanged, so intermediate lower-preference
        # values may never touch the mutators.
        # PeeringDB provides the base coordinates; Inflect corrections win.
        resolved: dict[str, GeoPoint] = {}
        for source in (SourceName.PCH, SourceName.PDB, SourceName.HE, SourceName.WEBSITE):
            if source not in self._by_source:
                continue
            for record in self._by_source[source].facilities:
                resolved[record.facility_id] = record.location
        if SourceName.INFLECT in self._by_source:
            for record in self._by_source[SourceName.INFLECT].facilities:
                resolved[record.facility_id] = record.location
        for facility_id, location in resolved.items():
            dataset.set_facility_location(facility_id, location)

    def _merge_colocation(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        inflect = self._by_source.get(SourceName.INFLECT)
        snapshots = [self._by_source[s] for s in ordered]
        if inflect is not None:
            snapshots.append(inflect)
        for snapshot in snapshots:
            for ixp_id, facility_ids in snapshot.ixp_facilities.items():
                for facility_id in facility_ids:
                    dataset.add_ixp_facility(ixp_id, facility_id)
            for record in snapshot.as_facilities:
                dataset.add_as_facility(record.asn, record.facility_id)

    def _merge_capacities(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        # Resolve first (lower-preference sources first so higher-preference
        # records overwrite), write once — see _merge_facilities.
        port: dict[tuple[str, int], int] = {}
        minimum: dict[str, int] = {}
        for source in reversed(ordered):
            snapshot = self._by_source[source]
            for record in snapshot.port_capacities:
                port[(record.ixp_id, record.asn)] = record.capacity_mbps
            for ixp_id, capacity in snapshot.min_physical_capacity.items():
                minimum[ixp_id] = capacity
        for (ixp_id, asn), capacity in port.items():
            dataset.set_port_capacity(ixp_id, asn, capacity)
        for ixp_id, capacity in minimum.items():
            dataset.set_min_capacity(ixp_id, capacity)

    def _merge_attributes(self, dataset: ObservedDataset, ordered: list[SourceName]) -> None:
        for attribute in ("traffic_levels", "user_populations", "countries"):
            resolved: dict[int, object] = {}
            for source in reversed(ordered):
                resolved.update(getattr(self._by_source[source], attribute))
            for key, value in resolved.items():
                dataset.set_attribute(attribute, key, value)


def build_observed_dataset(
    world,
    noise=None,
    *,
    include_caida: bool = True,
    include_apnic: bool = True,
) -> tuple[ObservedDataset, MergeStatistics]:
    """Convenience helper: snapshot every source and merge them.

    Parameters
    ----------
    world:
        The ground-truth :class:`~repro.topology.world.World`.
    noise:
        Optional :class:`~repro.config.DataSourceNoiseConfig`.
    include_caida / include_apnic:
        Whether to attach customer cones and user populations (analysis-only
        attributes) to the observed dataset.
    """
    from repro.datasources.apnic import APNICSource
    from repro.datasources.caida import CAIDASource
    from repro.datasources.hurricane import HurricaneElectricSource
    from repro.datasources.inflect import InflectSource
    from repro.datasources.ixp_websites import IXPWebsiteSource
    from repro.datasources.pch import PacketClearingHouseSource
    from repro.datasources.peeringdb import PeeringDBSource

    snapshots = [
        IXPWebsiteSource(world, noise).snapshot(),
        HurricaneElectricSource(world, noise).snapshot(),
        PeeringDBSource(world, noise).snapshot(),
        PacketClearingHouseSource(world, noise).snapshot(),
        InflectSource(world, noise).snapshot(),
    ]
    dataset, statistics = DatasetMerger(snapshots).merge()
    if include_caida:
        dataset.customer_cone_sizes = CAIDASource(world, noise).snapshot().cone_sizes
    if include_apnic:
        dataset.user_populations = APNICSource(world, noise).snapshot()
    return dataset, statistics
