"""Simulated Inflect facility database.

Inflect provides independently verified facility information; the paper uses
it to cross-check and correct the geographic coordinates of PeeringDB
facilities (308 of 1,078 facilities were corrected).  Here the source simply
reports the *true* coordinates for a configurable fraction of facilities; the
merger prefers these over PeeringDB's possibly-perturbed coordinates.
"""

from __future__ import annotations

from repro.datasources.base import SimulatedSource
from repro.datasources.records import FacilityRecord, SourceName, SourceSnapshot


class InflectSource(SimulatedSource):
    """Accurate facility coordinates for a subset of facilities."""

    source_name = SourceName.INFLECT

    def snapshot(self) -> SourceSnapshot:
        snapshot = SourceSnapshot(source=self.source_name)
        for facility in self.world.facilities.values():
            if not self._keep(self.noise.inflect_correction_rate):
                continue
            snapshot.facilities.append(
                FacilityRecord(
                    facility_id=facility.facility_id,
                    name=facility.name,
                    city=facility.city,
                    country=facility.country,
                    location=facility.location,
                    source=self.source_name,
                )
            )
        return snapshot
