"""Simulated PeeringDB.

PeeringDB is the richest of the public databases: besides peering-LAN
prefixes and member interfaces, it records colocation facilities (with
geographic coordinates), which facilities each IXP and each network is
present at, member port capacities, and self-reported traffic levels.

It is also the noisiest in exactly the ways the paper calls out:

* facility lists for networks are incomplete (no data at all for ~18% of
  remote peers and ~4% of local peers in the control dataset, Fig. 5);
* some remote peers list the facility of their *port reseller* instead of a
  facility they actually occupy (the 5% artefact of Section 5.1.2);
* facility coordinates are occasionally wrong (corrected later by Inflect);
* a small fraction of interface records carries the wrong ASN.
"""

from __future__ import annotations

from repro.datasources.base import SimulatedSource
from repro.datasources.records import (
    ASFacilityRecord,
    FacilityRecord,
    InterfaceRecord,
    PortCapacityRecord,
    PrefixRecord,
    SourceName,
    SourceSnapshot,
)
from repro.topology.entities import ConnectionKind


class PeeringDBSource(SimulatedSource):
    """Rich but noisy view: facilities, colocation, capacities, traffic."""

    source_name = SourceName.PDB

    def snapshot(self) -> SourceSnapshot:
        snapshot = SourceSnapshot(source=self.source_name)
        self._add_prefixes_and_interfaces(snapshot)
        self._add_facilities(snapshot)
        self._add_ixp_facilities(snapshot)
        self._add_as_facilities(snapshot)
        self._add_port_capacities(snapshot)
        self._add_network_attributes(snapshot)
        return snapshot

    # ------------------------------------------------------------------ #
    def _add_prefixes_and_interfaces(self, snapshot: SourceSnapshot) -> None:
        for ixp in self.world.ixps.values():
            if self._keep(self.noise.pdb_prefix_coverage):
                snapshot.prefixes.append(
                    PrefixRecord(prefix=ixp.peering_lan, ixp_id=ixp.ixp_id, source=self.source_name)
                )
            for membership in self.world.active_memberships(ixp.ixp_id):
                if not self._keep(self.noise.pdb_interface_coverage):
                    continue
                asn = membership.asn
                if self._keep(self.noise.pdb_conflict_rate):
                    asn = self._wrong_asn(asn)
                snapshot.interfaces.append(
                    InterfaceRecord(
                        ip=membership.interface_ip,
                        asn=asn,
                        ixp_id=ixp.ixp_id,
                        source=self.source_name,
                    )
                )

    def _add_facilities(self, snapshot: SourceSnapshot) -> None:
        for facility in self.world.facilities.values():
            location = facility.location
            if self._keep(self.noise.facility_coordinate_error_rate):
                location = self._perturbed_location(
                    location, self.noise.facility_coordinate_error_km
                )
            snapshot.facilities.append(
                FacilityRecord(
                    facility_id=facility.facility_id,
                    name=facility.name,
                    city=facility.city,
                    country=facility.country,
                    location=location,
                    source=self.source_name,
                )
            )

    def _add_ixp_facilities(self, snapshot: SourceSnapshot) -> None:
        for ixp in self.world.ixps.values():
            listed = {fid for fid in ixp.facility_ids if self._keep(0.92)}
            if not listed and ixp.facility_ids:
                listed = {sorted(ixp.facility_ids)[0]}
            snapshot.ixp_facilities[ixp.ixp_id] = listed

    def _add_as_facilities(self, snapshot: SourceSnapshot) -> None:
        memberships_by_asn: dict[int, list] = {}
        for membership in self.world.memberships:
            memberships_by_asn.setdefault(membership.asn, []).append(membership)

        for asn, system in self.world.ases.items():
            memberships = memberships_by_asn.get(asn, [])
            has_remote = any(m.is_remote for m in memberships)
            if memberships:
                missing_rate = (
                    self.noise.facility_missing_rate_remote
                    if has_remote
                    else self.noise.facility_missing_rate_local
                )
            else:
                missing_rate = 0.15
            if self._keep(missing_rate):
                continue  # the network has no facility data at all
            for facility_id in sorted(system.facility_ids):
                if self._keep(0.93):
                    snapshot.as_facilities.append(
                        ASFacilityRecord(asn=asn, facility_id=facility_id, source=self.source_name)
                    )
            # Spurious entry: a remote reseller customer listing the facility
            # where its reseller hands off traffic to the IXP.
            reseller_memberships = [
                m for m in memberships if m.connection is ConnectionKind.REMOTE_RESELLER
            ]
            if reseller_memberships and self._keep(self.noise.facility_spurious_reseller_rate):
                membership = self._rng.choice(reseller_memberships)
                ixp = self.world.ixps[membership.ixp_id]
                if ixp.facility_ids:
                    spurious = self._rng.choice(sorted(ixp.facility_ids))
                    snapshot.as_facilities.append(
                        ASFacilityRecord(asn=asn, facility_id=spurious, source=self.source_name)
                    )

    def _add_port_capacities(self, snapshot: SourceSnapshot) -> None:
        for membership in self.world.memberships:
            if membership.departed_month is not None:
                continue
            if self._keep(self.noise.pdb_port_capacity_coverage):
                snapshot.port_capacities.append(
                    PortCapacityRecord(
                        ixp_id=membership.ixp_id,
                        asn=membership.asn,
                        capacity_mbps=membership.port_capacity_mbps,
                        source=self.source_name,
                    )
                )

    def _add_network_attributes(self, snapshot: SourceSnapshot) -> None:
        for asn, system in self.world.ases.items():
            if self._keep(self.noise.pdb_traffic_coverage):
                snapshot.traffic_levels[asn] = system.traffic_level
            snapshot.countries[asn] = system.country
