"""Simulated Routeviews ``prefix2as`` dataset.

Step 5 of the paper performs IP-to-AS mapping of traceroute hops using
CAIDA's Routeviews prefix-to-AS dataset.  The simulated equivalent exports
the routed prefixes originated by each AS plus the per-AS infrastructure
blocks, and offers a fast longest-prefix-match lookup.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.topology.world import World


@dataclass
class Prefix2ASMap:
    """Longest-prefix-match IP-to-AS mapping.

    The map indexes prefixes by length so that a lookup is a handful of
    dictionary probes instead of a scan over every prefix.
    """

    _by_length: dict[int, dict[int, int]] = field(default_factory=dict)

    def add(self, prefix: str, asn: int) -> None:
        """Register one prefix -> ASN mapping."""
        network = ipaddress.ip_network(prefix)
        bucket = self._by_length.setdefault(network.prefixlen, {})
        bucket[int(network.network_address)] = asn

    def lookup(self, ip: str) -> int | None:
        """Return the ASN originating the longest matching prefix, if any."""
        address = int(ipaddress.ip_address(ip))
        for length in sorted(self._by_length, reverse=True):
            key = (address >> (32 - length)) << (32 - length) if length < 32 else address
            asn = self._by_length[length].get(key)
            if asn is not None:
                return asn
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())


class Prefix2ASSource:
    """Builds a :class:`Prefix2ASMap` from the world's address plan."""

    def __init__(self, world: World) -> None:
        self.world = world

    def snapshot(self) -> Prefix2ASMap:
        """Export routed and infrastructure prefixes as an IP-to-AS map."""
        mapping = Prefix2ASMap()
        for prefix, asn in self.world.routed_prefixes.items():
            mapping.add(prefix, asn)
        for prefix, asn in self.world.infrastructure_prefixes.items():
            mapping.add(prefix, asn)
        return mapping
