"""Simulated Routeviews ``prefix2as`` dataset.

Step 5 of the paper performs IP-to-AS mapping of traceroute hops using
CAIDA's Routeviews prefix-to-AS dataset.  The simulated equivalent exports
the routed prefixes originated by each AS plus the per-AS infrastructure
blocks, and offers a fast longest-prefix-match lookup backed by the shared
:class:`~repro.netindex.LPMIndex` (a single binary search per lookup, with
memoisation of repeated probes).

The map is **generation-stamped** (:class:`~repro.versioning.Versioned`):
every mutation bumps its generation, which the step-graph engine folds into
its cache keys so cached step results survive exactly the revisions that
cannot affect them.  Small post-build deltas — a feed refresh re-mapping a
handful of prefixes — are served through an incremental
:class:`~repro.netindex.LPMDeltaView` overlay instead of a full interval
rebuild; the overlay is compacted into a fresh index past
:data:`~repro.netindex.DELTA_COMPACTION_THRESHOLD` patches, and removals
always rebuild (the flattened table cannot un-shadow a dropped range).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.netindex import LPMDeltaView, LPMIndex, apply_lpm_delta
from repro.topology.world import World
from repro.versioning import Change, ChangeKind, Versioned

#: The single journal domain of a prefix map (see :class:`ChangeJournal`).
DOMAIN_PREFIXES = "prefixes"


@dataclass
class Prefix2ASMap(Versioned):
    """Longest-prefix-match IP-to-AS mapping with an incremental delta path.

    Prefixes are accumulated with :meth:`add`; the backing
    :class:`~repro.netindex.LPMIndex` is (re)built lazily on the first lookup
    after a bulk mutation, so bulk loading stays cheap and the steady-state
    lookup path is a memoised binary search.  Mutations *after* the index was
    built patch it through an :class:`~repro.netindex.LPMDeltaView` overlay
    (keeping the warm base memo) until the overlay outgrows its compaction
    threshold; :attr:`incremental_patches` and :attr:`full_rebuilds` account
    which path served each revision.
    """

    _prefixes: dict[str, int] = field(default_factory=dict)
    _view: LPMIndex | LPMDeltaView | None = field(
        default=None, init=False, repr=False, compare=False)
    #: How many post-build mutations were absorbed as overlay patches.
    incremental_patches: int = field(default=0, init=False, repr=False, compare=False)
    #: How many times the full interval table was (re)built.
    full_rebuilds: int = field(default=0, init=False, repr=False, compare=False)

    def add(self, prefix: str, asn: int) -> None:
        """Register one prefix -> ASN mapping (latest registration wins).

        Re-registering a prefix with its current ASN is a no-op (no
        generation bump), so idempotent feed refreshes never invalidate
        downstream caches.
        """
        network = ipaddress.ip_network(prefix)
        key = str(network)
        old = self._prefixes.get(key)
        if old == asn:
            return
        kind = ChangeKind.ADD if key not in self._prefixes else ChangeKind.REPLACE
        self._prefixes[key] = asn
        self.record_change(Change(kind, DOMAIN_PREFIXES, key, old, asn))
        view = self._view
        if view is None:
            return
        patched = apply_lpm_delta(view, key, asn)
        # None signals compaction: the next lookup rebuilds the full table.
        self._view = patched
        if patched is not None:
            self.incremental_patches += 1

    def remove(self, prefix: str) -> bool:
        """Drop one prefix; returns whether it was registered.

        Removal cannot be patched incrementally (the flattened interval table
        no longer knows which outer prefix inherits the range), so the next
        lookup rebuilds the index.
        """
        key = str(ipaddress.ip_network(prefix))
        if key not in self._prefixes:
            return False
        old = self._prefixes.pop(key)
        self.record_change(Change(ChangeKind.REMOVE, DOMAIN_PREFIXES, key, old, None))
        self._view = None
        return True

    def lookup(self, ip: str) -> int | None:
        """Return the ASN originating the longest matching prefix, if any."""
        view = self._view
        if view is None:
            view = self._view = LPMIndex(self._prefixes)
            self.full_rebuilds += 1
        return view.lookup(ip)

    def version_token(self) -> tuple[int, int]:
        """``(generation, size)`` stamp folded into engine cache keys."""
        return (self.generation, len(self._prefixes))

    def __len__(self) -> int:
        return len(self._prefixes)


class Prefix2ASSource:
    """Builds a :class:`Prefix2ASMap` from the world's address plan."""

    def __init__(self, world: World) -> None:
        self.world = world

    def snapshot(self) -> Prefix2ASMap:
        """Export routed and infrastructure prefixes as an IP-to-AS map."""
        mapping = Prefix2ASMap()
        for prefix, asn in self.world.routed_prefixes.items():
            mapping.add(prefix, asn)
        for prefix, asn in self.world.infrastructure_prefixes.items():
            mapping.add(prefix, asn)
        return mapping
