"""Simulated Routeviews ``prefix2as`` dataset.

Step 5 of the paper performs IP-to-AS mapping of traceroute hops using
CAIDA's Routeviews prefix-to-AS dataset.  The simulated equivalent exports
the routed prefixes originated by each AS plus the per-AS infrastructure
blocks, and offers a fast longest-prefix-match lookup backed by the shared
:class:`~repro.netindex.LPMIndex` (a single binary search per lookup, with
memoisation of repeated probes).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.netindex import LPMIndex
from repro.topology.world import World


@dataclass
class Prefix2ASMap:
    """Longest-prefix-match IP-to-AS mapping.

    Prefixes are accumulated with :meth:`add`; the backing
    :class:`~repro.netindex.LPMIndex` is (re)built lazily on the first
    lookup after a mutation, so bulk loading stays cheap and the steady-state
    lookup path is a memoised binary search.
    """

    _prefixes: dict[str, int] = field(default_factory=dict)
    _index: LPMIndex | None = field(default=None, init=False, repr=False, compare=False)

    def add(self, prefix: str, asn: int) -> None:
        """Register one prefix -> ASN mapping (latest registration wins)."""
        network = ipaddress.ip_network(prefix)
        self._prefixes[str(network)] = asn
        self._index = None

    def lookup(self, ip: str) -> int | None:
        """Return the ASN originating the longest matching prefix, if any."""
        index = self._index
        if index is None:
            index = self._index = LPMIndex(self._prefixes)
        return index.lookup(ip)

    def __len__(self) -> int:
        return len(self._prefixes)


class Prefix2ASSource:
    """Builds a :class:`Prefix2ASMap` from the world's address plan."""

    def __init__(self, world: World) -> None:
        self.world = world

    def snapshot(self) -> Prefix2ASMap:
        """Export routed and infrastructure prefixes as an IP-to-AS map."""
        mapping = Prefix2ASMap()
        for prefix, asn in self.world.routed_prefixes.items():
            mapping.add(prefix, asn)
        for prefix, asn in self.world.infrastructure_prefixes.items():
            mapping.add(prefix, asn)
        return mapping
