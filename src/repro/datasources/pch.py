"""Simulated Packet Clearing House IXP directory.

PCH publishes an IXP directory with peering-LAN prefixes and a subset of
member interfaces (derived from its route collectors); interface coverage is
the lowest of the four sources merged in the paper.
"""

from __future__ import annotations

from repro.datasources.base import SimulatedSource
from repro.datasources.records import (
    InterfaceRecord,
    PrefixRecord,
    SourceName,
    SourceSnapshot,
)


class PacketClearingHouseSource(SimulatedSource):
    """Low coverage, small conflict rate."""

    source_name = SourceName.PCH

    def snapshot(self) -> SourceSnapshot:
        snapshot = SourceSnapshot(source=self.source_name)
        for ixp in self.world.ixps.values():
            if self._keep(self.noise.pch_prefix_coverage):
                snapshot.prefixes.append(
                    PrefixRecord(prefix=ixp.peering_lan, ixp_id=ixp.ixp_id, source=self.source_name)
                )
            for membership in self.world.active_memberships(ixp.ixp_id):
                if not self._keep(self.noise.pch_interface_coverage):
                    continue
                asn = membership.asn
                if self._keep(self.noise.pch_conflict_rate):
                    asn = self._wrong_asn(asn)
                snapshot.interfaces.append(
                    InterfaceRecord(
                        ip=membership.interface_ip,
                        asn=asn,
                        ixp_id=ixp.ixp_id,
                        source=self.source_name,
                    )
                )
        return snapshot
