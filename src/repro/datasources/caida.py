"""Simulated CAIDA AS-relationship / customer-cone dataset.

Section 6.2 of the paper compares the customer cones (from CAIDA's
AS-relationship dataset) of local, remote and hybrid IXP members.  The
simulated source exports the ground-truth relationship graph in the same
"serial-1"-like record format and precomputes cone sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DataSourceNoiseConfig
from repro.topology.relationships import Relationship, RelationshipEdge
from repro.topology.world import World


@dataclass(frozen=True)
class ASRelationshipDataset:
    """The exported relationship dataset plus derived cone sizes."""

    edges: tuple[RelationshipEdge, ...]
    cone_sizes: dict[int, int]

    def cone_size(self, asn: int) -> int:
        """Customer-cone size of an AS (1 for stubs and unknown ASes)."""
        return self.cone_sizes.get(asn, 1)


class CAIDASource:
    """Exports AS relationships and customer cones from the ground truth.

    CAIDA's inference is treated as accurate at the granularity this
    reproduction needs, so no noise is injected; the class exists to keep the
    inference/analysis layers consuming *datasets*, never the world directly.
    """

    def __init__(self, world: World, noise: DataSourceNoiseConfig | None = None) -> None:
        self.world = world
        self.noise = noise or DataSourceNoiseConfig()

    def snapshot(self) -> ASRelationshipDataset:
        """Export the relationship edges and cone sizes."""
        edges = tuple(self.world.relationships.edges())
        cone_sizes = self.world.relationships.all_cone_sizes()
        return ASRelationshipDataset(edges=edges, cone_sizes=cone_sizes)

    @staticmethod
    def serialize_edge(edge: RelationshipEdge) -> str:
        """Render one edge in CAIDA's ``as1|as2|rel`` text format."""
        rel = -1 if edge.relationship is Relationship.CUSTOMER_TO_PROVIDER else 0
        return f"{edge.first_asn}|{edge.second_asn}|{rel}"
