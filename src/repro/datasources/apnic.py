"""Simulated APNIC user-population estimates.

APNIC Labs publishes per-AS estimates of served user populations; the paper
uses them (alongside customer cones and traffic levels) to compare local,
remote and hybrid IXP members.  The simulated source reports the ground-truth
populations with a small multiplicative estimation error.
"""

from __future__ import annotations

import random

from repro.config import DataSourceNoiseConfig
from repro.topology.world import World


class APNICSource:
    """Per-AS user-population estimates with mild estimation noise."""

    def __init__(self, world: World, noise: DataSourceNoiseConfig | None = None) -> None:
        self.world = world
        self.noise = noise or DataSourceNoiseConfig()
        self._rng = random.Random(world.seed * 31 + self.noise.seed_offset)

    def snapshot(self) -> dict[int, int]:
        """Return estimated user population per ASN."""
        estimates: dict[int, int] = {}
        for asn, system in self.world.ases.items():
            error = self._rng.uniform(0.85, 1.15)
            estimates[asn] = int(system.user_population * error)
        return estimates
