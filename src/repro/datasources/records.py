"""Record types shared by all simulated data sources.

A :class:`SourceSnapshot` is what one database "knows" at collection time.
Snapshots are deliberately plain containers of primitive values (IPs, ASNs,
facility ids, CIDR strings) — the same granularity the real databases expose —
so that the merge logic and the inference pipeline cannot accidentally peek at
ground-truth objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geo.coordinates import GeoPoint
from repro.topology.entities import TrafficLevel


class SourceName(enum.Enum):
    """Identifier of a simulated database."""

    WEBSITE = "IXP websites"
    HE = "Hurricane Electric"
    PDB = "PeeringDB"
    PCH = "Packet Clearing House"
    INFLECT = "Inflect"
    CAIDA = "CAIDA"
    APNIC = "APNIC"


@dataclass(frozen=True)
class PrefixRecord:
    """One IXP peering-LAN prefix as reported by a source."""

    prefix: str
    ixp_id: str
    source: SourceName


@dataclass(frozen=True)
class InterfaceRecord:
    """One IXP interface (IP inside a peering LAN assigned to a member AS)."""

    ip: str
    asn: int
    ixp_id: str
    source: SourceName


@dataclass(frozen=True)
class FacilityRecord:
    """One colocation facility as reported by a source."""

    facility_id: str
    name: str
    city: str
    country: str
    location: GeoPoint
    source: SourceName


@dataclass(frozen=True)
class ASFacilityRecord:
    """Presence of an AS in a facility as reported by a source."""

    asn: int
    facility_id: str
    source: SourceName


@dataclass(frozen=True)
class PortCapacityRecord:
    """Port capacity of one IXP member as reported by a source."""

    ixp_id: str
    asn: int
    capacity_mbps: int
    source: SourceName


@dataclass
class SourceSnapshot:
    """Everything one database reports about the world.

    Attributes map one-to-one onto the data the paper pulls from each source:
    peering-LAN prefixes, IXP interfaces (IP-to-AS mappings), IXP and AS
    colocation, facility coordinates, member port capacities, the minimum
    physical port capacity advertised in IXP pricing pages, and per-AS
    attributes (traffic levels, user populations).
    """

    source: SourceName
    prefixes: list[PrefixRecord] = field(default_factory=list)
    interfaces: list[InterfaceRecord] = field(default_factory=list)
    facilities: list[FacilityRecord] = field(default_factory=list)
    ixp_facilities: dict[str, set[str]] = field(default_factory=dict)
    as_facilities: list[ASFacilityRecord] = field(default_factory=list)
    port_capacities: list[PortCapacityRecord] = field(default_factory=list)
    min_physical_capacity: dict[str, int] = field(default_factory=dict)
    traffic_levels: dict[int, TrafficLevel] = field(default_factory=dict)
    user_populations: dict[int, int] = field(default_factory=dict)
    countries: dict[int, str] = field(default_factory=dict)

    def interface_map(self) -> dict[str, InterfaceRecord]:
        """Interfaces indexed by IP (later records win, mirroring dump order)."""
        return {record.ip: record for record in self.interfaces}

    def prefix_map(self) -> dict[str, PrefixRecord]:
        """Prefixes indexed by CIDR string."""
        return {record.prefix: record for record in self.prefixes}

    def as_facility_map(self) -> dict[int, set[str]]:
        """AS -> set of facility ids, aggregated from the records."""
        result: dict[int, set[str]] = {}
        for record in self.as_facilities:
            result.setdefault(record.asn, set()).add(record.facility_id)
        return result

    def port_capacity_map(self) -> dict[tuple[str, int], int]:
        """(ixp, asn) -> capacity in Mbit/s."""
        return {(r.ixp_id, r.asn): r.capacity_mbps for r in self.port_capacities}
