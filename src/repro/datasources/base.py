"""Common machinery for simulated data sources.

Every simulated database derives from :class:`SimulatedSource`, which holds
the ground-truth world, the noise configuration and a private random stream
(seeded from the world seed plus a per-source offset, so that adding one
source never perturbs another source's noise).
"""

from __future__ import annotations

import random
import zlib
from abc import ABC, abstractmethod

from repro.config import DataSourceNoiseConfig
from repro.datasources.records import SourceName, SourceSnapshot
from repro.exceptions import DataSourceError
from repro.geo.coordinates import GeoPoint, offset_point
from repro.topology.world import World


class SimulatedSource(ABC):
    """Base class of all simulated databases."""

    #: Which database this class simulates; subclasses must override.
    source_name: SourceName

    def __init__(self, world: World, noise: DataSourceNoiseConfig | None = None) -> None:
        if not world.memberships:
            raise DataSourceError("cannot snapshot a world with no IXP memberships")
        self.world = world
        self.noise = noise or DataSourceNoiseConfig()
        # Derive a per-source seed that is stable across interpreter runs
        # (``hash(str)`` is randomised, so CRC32 is used instead).
        source_tag = zlib.crc32(self.source_name.value.encode("utf-8"))
        self._rng = random.Random(world.seed * 1_000_003 + self.noise.seed_offset * 97 + source_tag)

    @abstractmethod
    def snapshot(self) -> SourceSnapshot:
        """Produce this source's (noisy) view of the world."""

    # ------------------------------------------------------------------ #
    # Noise helpers shared by the subclasses
    # ------------------------------------------------------------------ #
    def _keep(self, probability: float) -> bool:
        """Bernoulli draw used for coverage decisions."""
        return self._rng.random() < probability

    def _wrong_asn(self, correct_asn: int) -> int:
        """Pick a different ASN from the world to model a conflicting record."""
        candidates = [asn for asn in self.world.ases if asn != correct_asn]
        if not candidates:
            return correct_asn
        return self._rng.choice(candidates)

    def _perturbed_location(self, location: GeoPoint, error_km: float) -> GeoPoint:
        """Shift a location by up to ``error_km`` to model bad geocoding."""
        distance = self._rng.uniform(error_km * 0.25, error_km)
        bearing = self._rng.uniform(0.0, 360.0)
        return offset_point(location, distance_km=distance, bearing_deg=bearing)
