"""Exception hierarchy for the remote-peering reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  Subclasses exist per functional area so tests
and downstream code can be precise about what failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class TopologyError(ReproError):
    """Raised when the synthetic world violates a structural invariant."""


class AddressingError(TopologyError):
    """Raised when IP address allocation fails or an address is invalid."""


class UnknownEntityError(TopologyError):
    """Raised when an entity id (ASN, IXP id, facility id, ...) is unknown."""


class DataSourceError(ReproError):
    """Raised when a simulated data source produces inconsistent records."""


class MeasurementError(ReproError):
    """Raised when a measurement campaign is asked to do something invalid."""


class VantagePointError(MeasurementError):
    """Raised when a vantage point cannot be used (e.g. filtered out)."""


class RoutingError(ReproError):
    """Raised when no forwarding path can be constructed between endpoints."""


class InferenceError(ReproError):
    """Raised when the inference pipeline receives inconsistent inputs."""


class WorkerCrashError(InferenceError):
    """Raised when a pool worker died and the retry policy was exhausted."""


class TaskTimeoutError(InferenceError):
    """Raised when a per-IXP task timed out and retries were exhausted."""


class InjectedFaultError(ReproError):
    """Raised when a planned fault of the injection harness fires.

    Only the fault-injection harness (:mod:`repro.resilience.faultplan`)
    raises this; seeing it outside a chaos run means a stale
    ``FaultPlan`` was left on an engine.
    """


class ValidationError(ReproError):
    """Raised when a validation dataset or metric computation is invalid."""


class ExecutorDegradedWarning(RuntimeWarning):
    """Warned when the engine demotes its executor down the cascade.

    A per-task timeout demotes the running schedule one rung down
    ``process -> thread -> serial``; the demotion is also journalled as a
    typed ``ResilienceEvent``, so it is loud in both channels.
    """
