"""The paper's primary contribution: the five-step remote-peering inference.

The pipeline classifies every IXP member interface as *local* or *remote* by
combining, in order:

1. :mod:`repro.core.step1_port_capacity` — reseller customers identified by
   fractional port capacities (below the IXP's minimum physical capacity);
2. :mod:`repro.core.step2_rtt` — the ping campaign post-processing: TTL
   filters, unusable-vantage-point removal, minimum-RTT extraction;
3. :mod:`repro.core.step3_colocation` — colocation-informed RTT
   interpretation over feasible facility rings;
4. :mod:`repro.core.step4_multi_ixp` — multi-IXP router inference from
   traceroute crossings and alias resolution;
5. :mod:`repro.core.step5_private_links` — private-connectivity localisation
   (Constrained-Facility-Search style voting).

:mod:`repro.core.baseline` implements the RTT-threshold-only state of the art
(Castro et al.) used as the comparison baseline.  :mod:`repro.core.engine`
executes the steps as a declared graph of fingerprint-keyed, cacheable nodes
(the scenario-sweep hot path), and :mod:`repro.core.pipeline` is the
single-configuration facade over it.
"""

from repro.core.types import (
    InferenceReport,
    InferenceResult,
    InferenceStep,
    PeeringClassification,
)
from repro.core.inputs import InferenceInputs
from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTCampaignSummary, RTTObservation, RTTMeasurementStep
from repro.core.step3_colocation import ColocationRTTStep, FeasibleFacilityAnalysis
from repro.core.step4_multi_ixp import MultiIXPRouterStep, MultiIXPRouter, MultiIXPRouterKind
from repro.core.step5_private_links import PrivateConnectivityStep
from repro.core.baseline import RTTBaseline
from repro.core.engine import (
    STEP_GRAPH,
    PipelineEngine,
    StepResultCache,
    StepScope,
    StepSpec,
    SweepRunner,
)
from repro.core.pipeline import PipelineOutcome, RemotePeeringPipeline

__all__ = [
    "STEP_GRAPH",
    "PipelineEngine",
    "StepResultCache",
    "StepScope",
    "StepSpec",
    "SweepRunner",
    "InferenceReport",
    "InferenceResult",
    "InferenceStep",
    "PeeringClassification",
    "InferenceInputs",
    "PortCapacityStep",
    "RTTCampaignSummary",
    "RTTObservation",
    "RTTMeasurementStep",
    "ColocationRTTStep",
    "FeasibleFacilityAnalysis",
    "MultiIXPRouterStep",
    "MultiIXPRouter",
    "MultiIXPRouterKind",
    "PrivateConnectivityStep",
    "RTTBaseline",
    "PipelineOutcome",
    "RemotePeeringPipeline",
]
