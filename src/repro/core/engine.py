"""Step-graph execution engine for the five-step inference pipeline.

The paper's headline analyses (fig. 9 per-step ablations, fig. 11 threshold
sensitivity, table 4 agreement) are *scenario sweeps*: the same five-step
methodology rerun under many :class:`~repro.config.InferenceConfig` variants.
The seed pipeline was a monolith — every sweep point recomputed Steps 1-5 for
every IXP even when the config change only affected one downstream step.

This module decomposes the pipeline into *declared step nodes*.  Each node
names, as data (:data:`STEP_GRAPH`):

* the :class:`~repro.config.InferenceConfig` **fields it reads** — nothing
  else about the config may influence the node's result;
* its **inputs** (the upstream nodes whose results it consumes);
* its **outputs** (what the node contributes to the final
  :class:`PipelineOutcome`);
* its **scope** — ``PER_IXP`` nodes are independent across IXPs (Steps 1-3
  and the RTT baseline) and can be scheduled concurrently; ``GLOBAL`` nodes
  see the whole studied set (the traceroute observables and Steps 4/5, whose
  multi-IXP routers and private adjacencies span IXPs).

Every node also names, as data, the **dataset domains and inputs-bundle
members it reads** (``data_domains`` / ``data_inputs``) — the versioning
half of the contract.

Every node result is cached in a shared :class:`StepResultCache` under a
fingerprint key derived from

``(step name, scope key, config_fingerprint(declared fields),
data version tokens, parent keys)``

so invalidation is transitive by construction, along *both* axes:

* **configuration** — changing a Step 2 threshold re-keys Steps 2, 3, 4, 5
  and the baseline but leaves Step 1 and the traceroute observables
  untouched; config fields no node declares (e.g. the analysis-only
  ``strong_remote_rtt_ms``) never cause recomputation;
* **dataset revision** — the data version tokens are the generation stamps
  of the declared dataset domains (:meth:`ObservedDataset.domain_token`) and
  inputs-bundle members (:meth:`~repro.versioning.Versioned.version_token`).
  A journalled mutation re-keys exactly the nodes whose declared data it
  touches: moving a facility re-keys Steps 3-5 but replays Steps 1-2, the
  traceroute observables and the baseline from cache; re-mapping a routed
  prefix re-keys the traceroute observables (and Steps 4-5 through them)
  while the whole per-IXP layer stays cached.

Equivalence contract (pinned by ``tests/test_core_engine.py`` and
``tests/test_versioning.py``):

1. **Bit-identical reports** — a node's cached result is the *replayable
   delta* of ``ensure``/``classify`` calls the step made.  The final report
   is a pure function of the call sequence, and the engine replays the
   per-step deltas in exactly the monolithic order (Step 1 per IXP, Step 3
   per IXP, Step 4, Step 5), so the assembled
   :class:`~repro.core.types.InferenceReport` equals the monolith's —
   including insertion order.
2. **Revision consistency** — the engine survives dataset revisions made
   through the journal-emitting mutators (and campaign appends through the
   recording mutators): the version tokens in every key guarantee a hit is
   proof of reusability.  Mutating the inputs *directly* (raw dict pokes at
   unchanged size) still requires ``invalidate_caches()`` on the mutated
   container or ``cache.clear()``, exactly like the other indexed
   subsystems.
3. **Shared immutables** — outcome containers (lists, dicts) are fresh per
   run, but the objects inside (crossings, adjacencies, routers, feasibility
   analyses, evidence values) are shared with the cache and between runs
   that hit the same keys; consumers must treat them as read-only, exactly
   as they already had to treat `PipelineOutcome` fields under the shared
   ``GeoDistanceIndex``.

:class:`StepResultCache` optionally enforces an LRU entry/byte budget so
unbounded scenario sweeps cannot grow the cache without limit;
:meth:`PipelineEngine.cache_eviction_stats` exposes the accounting.
"""

from __future__ import annotations

import enum
import hashlib
import sys
import time
import warnings
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, fields, is_dataclass
from threading import Lock
from typing import Any, Callable, NamedTuple, Sequence, cast

from repro.config import InferenceConfig, config_fingerprint
from repro.datasources.merge import (
    DOMAIN_AS_FACILITIES,
    DOMAIN_CAPACITIES,
    DOMAIN_FACILITY_LOCATIONS,
    DOMAIN_INTERFACES,
    DOMAIN_IXP_FACILITIES,
    DOMAIN_IXP_PREFIXES,
)
from repro.core.baseline import RTTBaseline
from repro.core.inputs import InferenceInputs
from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTCampaignSummary, RTTMeasurementStep
from repro.core.step3_colocation import ColocationRTTStep, FeasibleFacilityAnalysis
from repro.core.step4_multi_ixp import MultiIXPRouter, MultiIXPRouterStep
from repro.core.step5_private_links import PrivateConnectivityStep
from repro.core.types import (
    InferenceReport,
    InferenceResult,
    InferenceStep,
    PeeringClassification,
)
from repro.exceptions import (
    ExecutorDegradedWarning,
    InferenceError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.geo.delay_model import DelayModel
from repro.geo.distindex import GeoDistanceIndex
from repro.resilience import (
    FaultPlan,
    ResilienceEvent,
    ResilienceEventKind,
    ResilienceLog,
    RetryPolicy,
    perform_fault,
    task_digest,
)
from repro.traixroute.detector import CorpusDetectionIndex, IXPCrossing, PrivateAdjacency

#: One recorded ``ensure``/``classify`` call — heterogeneous by design (the
#: records exist only to be replayed, never inspected field by field).
_DeltaRecord = tuple[Any, ...]
#: A step's replayable contribution: its ordered tuple of recorded calls.
_Delta = tuple[_DeltaRecord, ...]
#: The feasibility analyses Step 3 contributes, keyed by (IXP, interface).
_FeasibleMap = dict[tuple[str, str], FeasibleFacilityAnalysis]


@dataclass
class PipelineOutcome:
    """Everything a pipeline run produced."""

    ixp_ids: list[str]
    report: InferenceReport
    baseline_report: InferenceReport
    rtt_summary: RTTCampaignSummary
    feasible: dict[tuple[str, str], FeasibleFacilityAnalysis] = field(default_factory=dict)
    crossings: list[IXPCrossing] = field(default_factory=list)
    private_adjacencies: list[PrivateAdjacency] = field(default_factory=list)
    multi_ixp_routers: list[MultiIXPRouter] = field(default_factory=list)

    def remote_share(self, ixp_id: str | None = None) -> float:
        """Fraction of inferred interfaces classified remote."""
        return self.report.remote_share(ixp_id)


class StepScope(enum.Enum):
    """How a step node is keyed and scheduled."""

    PER_IXP = "per-ixp"
    GLOBAL = "global"


@dataclass(frozen=True)
class StepSpec:
    """Declaration of one pipeline step node.

    Attributes
    ----------
    name:
        Node identifier, also the cache-statistics label.
    scope:
        ``PER_IXP`` nodes are computed (and cached) once per studied IXP and
        are independent across IXPs; ``GLOBAL`` nodes run once per studied
        set.
    config_fields:
        The :class:`~repro.config.InferenceConfig` fields the node reads.
        This is a *contract*: the node's result must depend on no other
        config field, because only these enter its cache key.
    requires:
        Upstream nodes whose results feed this node.  A ``GLOBAL`` node
        requiring a ``PER_IXP`` node depends on that node at *every* studied
        IXP.
    provides:
        What the node contributes to the assembled
        :class:`PipelineOutcome` (documentation and introspection).
    studied_set_sensitive:
        Whether a ``GLOBAL`` node's result depends on *which* IXPs are
        studied.  The traceroute observables scan the whole corpus
        regardless, so they declare ``False`` and are shared across runs
        over different IXP subsets.  Ignored for ``PER_IXP`` nodes.
    data_domains:
        The :class:`~repro.datasources.merge.ObservedDataset` domains the
        node reads (see ``DATASET_DOMAINS``).  Like ``config_fields`` this
        is a *contract*: the node's result must depend on no other slice of
        the dataset, because only these domains' generation stamps enter its
        cache key.
    data_inputs:
        The :class:`~repro.core.inputs.InferenceInputs` members (beyond the
        dataset) whose :meth:`~repro.versioning.Versioned.version_token`
        enters the node's cache key — ``"ping_result"``, ``"corpus"`` and/or
        ``"prefix2as"``.  The alias resolver is world-backed and immutable,
        so no node declares it.
    thread_confined:
        Class names whose instances, inside this node's call graph, are
        **confined to the computing thread** — fresh objects built per
        compute (the recording report, the per-IXP campaign summary) that
        the node mutates freely without locks.  This is a *contract* checked
        by the concurrency rule (:mod:`repro.contracts.concurrency`): writes
        to instances of any *other* shared class must be lock-guarded, and a
        declared class the node never mutates is itself a finding (the
        declaration must not drift from the code).  Only meaningful on
        ``PER_IXP`` nodes — ``GLOBAL`` nodes run serially.
    """

    name: str
    scope: StepScope
    config_fields: tuple[str, ...]
    requires: tuple[str, ...]
    provides: tuple[str, ...]
    studied_set_sensitive: bool = True
    data_domains: tuple[str, ...] = ()
    data_inputs: tuple[str, ...] = ()
    thread_confined: tuple[str, ...] = ()


#: The declared step graph, in the paper's execution order (Section 5.2).
STEP_GRAPH: tuple[StepSpec, ...] = (
    StepSpec(
        name="step1",
        scope=StepScope.PER_IXP,
        config_fields=("enable_step1_port_capacity",),
        requires=(),
        provides=("report_delta",),
        data_domains=(DOMAIN_INTERFACES, DOMAIN_CAPACITIES),
        thread_confined=("InferenceReport",),
    ),
    StepSpec(
        name="step2",
        scope=StepScope.PER_IXP,
        config_fields=("atlas_route_server_filter_ms", "lg_rounding_adjustment_ms"),
        requires=(),
        provides=("rtt_summary",),
        data_inputs=("ping_result",),
    ),
    StepSpec(
        name="step3",
        scope=StepScope.PER_IXP,
        config_fields=("enable_step3_colocation_rtt", "feasible_facility_tolerance_km"),
        requires=("step1", "step2"),
        provides=("report_delta", "feasible"),
        data_domains=(
            DOMAIN_INTERFACES,
            DOMAIN_IXP_FACILITIES,
            DOMAIN_AS_FACILITIES,
            DOMAIN_FACILITY_LOCATIONS,
        ),
        thread_confined=("InferenceReport",),
    ),
    StepSpec(
        name="traceroute",
        scope=StepScope.GLOBAL,
        config_fields=(),
        requires=(),
        provides=("crossings", "private_adjacencies"),
        studied_set_sensitive=False,
        data_domains=(DOMAIN_IXP_PREFIXES, DOMAIN_INTERFACES, DOMAIN_IXP_FACILITIES),
        data_inputs=("corpus", "prefix2as"),
    ),
    StepSpec(
        name="step4",
        scope=StepScope.GLOBAL,
        config_fields=("enable_step4_multi_ixp",),
        requires=("step3", "traceroute"),
        provides=("report_delta", "multi_ixp_routers"),
        data_domains=(
            DOMAIN_INTERFACES,
            DOMAIN_IXP_FACILITIES,
            DOMAIN_AS_FACILITIES,
            DOMAIN_FACILITY_LOCATIONS,
        ),
    ),
    StepSpec(
        name="step5",
        scope=StepScope.GLOBAL,
        config_fields=(
            "enable_step5_private_links",
            "min_private_neighbours",
            "max_coherent_vote_facilities",
        ),
        requires=("step4", "traceroute"),
        provides=("report_delta",),
        data_domains=(
            DOMAIN_INTERFACES,
            DOMAIN_IXP_FACILITIES,
            DOMAIN_AS_FACILITIES,
            DOMAIN_FACILITY_LOCATIONS,
        ),
    ),
    StepSpec(
        name="baseline",
        scope=StepScope.PER_IXP,
        config_fields=("rtt_baseline_threshold_ms",),
        requires=("step2",),
        provides=("baseline_report",),
        data_domains=(DOMAIN_INTERFACES,),
        thread_confined=("InferenceReport",),
    ),
)

_SPECS: dict[str, StepSpec] = {spec.name: spec for spec in STEP_GRAPH}


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one step label."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


def _estimate_size(value: object, _seen: set[int] | None = None) -> int:
    """Rough deep size of a cached step result, in bytes.

    Walks tuples/lists/dicts/sets and dataclass fields (the shapes step
    results are made of), counting every shared object once.  An estimate is
    all the byte budget needs — the goal is proportional accounting, not
    exact accounting.
    """
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return 0
    _seen.add(marker)
    size = sys.getsizeof(value)
    if isinstance(value, dict):
        for key, item in value.items():
            size += _estimate_size(key, _seen) + _estimate_size(item, _seen)
    elif isinstance(value, (tuple, list, set, frozenset)):
        for item in value:
            size += _estimate_size(item, _seen)
    elif is_dataclass(value) and not isinstance(value, type):
        for spec in fields(value):
            size += _estimate_size(getattr(value, spec.name), _seen)
    return size


class StepResultCache:
    """Shared store of step-node results keyed by fingerprint.

    The cache is safe to share across configurations, pipeline facades,
    sweep runs and journalled dataset revisions over *one* inputs bundle:
    the key of every entry already encodes everything that may legally
    influence the result (declared config fields, the version tokens of the
    declared data, and upstream keys), so a hit is a proof of reusability.
    It is **not** safe to share across different inputs bundles — the bundle
    identity is deliberately not part of the key because an engine is bound
    to one bundle for its lifetime.

    ``max_entries`` / ``max_bytes`` cap the cache with least-recently-used
    eviction (the ROADMAP's unbounded-sweep concern): every hit refreshes an
    entry's recency, inserts evict the coldest entries until the budget
    holds, and evictions are tallied per step label in :attr:`stats` (an
    evicted entry is charged to the label that inserted it).  Byte
    accounting uses a rough deep-size estimate computed once per insert.

    Thread-safe for the engine's per-IXP thread pool: lookups and inserts are
    serialised by a lock; concurrent misses on the same key compute
    duplicates (idempotent by construction) and keep the first stored value.
    """

    def __init__(
        self,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        # key -> (value, label, byte estimate); ordered oldest-used first.
        self._entries: OrderedDict[str, tuple[object, str, int]] = OrderedDict()
        self._lock = Lock()
        self.stats: dict[str, CacheStats] = {}
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.total_bytes = 0

    def get_or_compute(self, label: str, key: str, compute: Callable[[], object]) -> object:
        """The cached value for ``key``, computing (and storing) it if absent."""
        with self._lock:
            stats = self.stats.setdefault(label, CacheStats())
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                stats.hits += 1
                return entry[0]
        value = compute()
        size = _estimate_size(value) if self.max_bytes is not None else 0
        with self._lock:
            stats.misses += 1
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry[0]
            self._entries[key] = (value, label, size)
            self.total_bytes += size
            self._evict_over_budget()
            return value

    def peek(self, key: str) -> tuple[bool, object]:
        """``(present, value)`` for ``key`` without computing on a miss.

        Refreshes the entry's LRU recency but records neither a hit nor a
        miss — the process scheduler peeks every per-IXP node to decide
        which IXPs still need worker trips, and those probes would otherwise
        distort the per-step accounting.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return (False, None)
            self._entries.move_to_end(key)
            return (True, entry[0])

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries until the budget holds (locked).

        The most recently inserted entry is never evicted: a single result
        larger than the whole byte budget must still be returned (and is
        simply dropped on the next insert).
        """
        while len(self._entries) > 1 and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self.total_bytes > self.max_bytes)
        ):
            _, (_, label, size) = self._entries.popitem(last=False)
            self.total_bytes -= size
            self.stats.setdefault(label, CacheStats()).evictions += 1

    def eviction_stats(self) -> dict[str, object]:
        """Budget/eviction accounting snapshot (entries, bytes, per-label)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "total_bytes": self.total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "evictions": sum(s.evictions for s in self.stats.values()),
                "evictions_by_step": {
                    label: s.evictions for label, s in self.stats.items() if s.evictions
                },
            }

    def clear(self) -> None:
        """Drop every entry (required if the inputs were mutated directly)."""
        with self._lock:
            self._entries.clear()
            self.stats.clear()
            self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------------- #
# Replayable report deltas
# --------------------------------------------------------------------- #
class _RecordingReport(InferenceReport):
    """An :class:`InferenceReport` that logs mutating calls for replay.

    The report's final state is a pure function of its ``ensure``/``classify``
    call sequence, so recording a step's calls (after replaying its
    prerequisites) captures exactly that step's contribution, and replaying
    the recorded deltas in monolithic step order rebuilds a bit-identical
    report.
    """

    def __init__(self) -> None:
        super().__init__()
        self.log: list[_DeltaRecord] | None = None

    def start_recording(self) -> None:
        self.log = []

    def ensure(self, ixp_id: str, interface_ip: str, asn: int) -> InferenceResult:
        if self.log is not None and (ixp_id, interface_ip) not in self.results:
            self.log.append(("ensure", ixp_id, interface_ip, asn))
        return super().ensure(ixp_id, interface_ip, asn)

    def classify(
        self,
        ixp_id: str,
        interface_ip: str,
        asn: int,
        classification: PeeringClassification,
        step: InferenceStep,
        evidence: dict[str, object] | None = None,
        *,
        overwrite: bool = False,
    ) -> InferenceResult:
        if self.log is not None:
            self.log.append(("classify", ixp_id, interface_ip, asn, classification,
                             step, dict(evidence) if evidence else None, overwrite))
        return super().classify(ixp_id, interface_ip, asn, classification, step,
                                evidence, overwrite=overwrite)


def _replay(report: InferenceReport, delta: _Delta) -> None:
    """Apply one recorded delta to a report, with fresh evidence dicts."""
    for record in delta:
        if record[0] == "ensure":
            report.ensure(record[1], record[2], record[3])
        else:
            _, ixp_id, interface_ip, asn, classification, step, evidence, overwrite = record
            report.classify(ixp_id, interface_ip, asn, classification, step,
                            dict(evidence) if evidence else None, overwrite=overwrite)


def _report_as_delta(report: InferenceReport) -> _Delta:
    """A standalone report (the baseline's) rendered as a replayable delta."""
    log: list[_DeltaRecord] = []
    for (ixp_id, interface_ip), result in report.results.items():
        log.append(("ensure", ixp_id, interface_ip, result.asn))
        if result.is_inferred:
            log.append(("classify", ixp_id, interface_ip, result.asn,
                        result.classification, result.step,
                        dict(result.evidence) or None, False))
    return tuple(log)


# --------------------------------------------------------------------- #
# Fingerprint keys
# --------------------------------------------------------------------- #
class _KeyResolver:
    """Derives (and memoises) the cache key of every node for one run.

    A key digests the node name, its scope token (the IXP id, or the studied
    tuple for global nodes), the fingerprint of its declared config fields,
    the version tokens of its declared data (dataset domains and
    inputs-bundle members) and the keys of its parents — so a key matches
    exactly when nothing that may legally influence the node's result
    differs.  Version tokens are sampled once per run (the engine contract
    forbids mutating the inputs mid-run).
    """

    def __init__(
        self,
        config: InferenceConfig,
        ixp_ids: tuple[str, ...],
        inputs: InferenceInputs,
    ) -> None:
        self._config = config
        self._ixp_ids = ixp_ids
        self._inputs = inputs
        self._memo: dict[tuple[str, str | None], str] = {}
        self._data_tokens: dict[str, tuple[object, object]] = {}
        # One resolver is shared by every thread of a run's per-IXP pool;
        # only the memo stores need serialising (a duplicated digest is
        # idempotent, the lock just keeps the dict fills race-free).
        self._lock = Lock()

    def _data_token(self, spec: StepSpec) -> tuple[object, object]:
        """The version stamps of everything the node declared it reads."""
        token = self._data_tokens.get(spec.name)
        if token is None:
            dataset = self._inputs.dataset
            token = (
                tuple(
                    (domain, dataset.domain_token(domain))
                    for domain in spec.data_domains
                ),
                tuple(
                    (name, getattr(self._inputs, name).version_token())
                    for name in spec.data_inputs
                ),
            )
            with self._lock:
                self._data_tokens[spec.name] = token
        return token

    def key(self, name: str, ixp_id: str | None = None) -> str:
        memo_key = (name, ixp_id)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        spec = _SPECS[name]
        parents: list[str] = []
        for requirement in spec.requires:
            required = _SPECS[requirement]
            if required.scope is StepScope.PER_IXP and spec.scope is StepScope.PER_IXP:
                parents.append(self.key(requirement, ixp_id))
            elif required.scope is StepScope.PER_IXP:
                parents.extend(self.key(requirement, i) for i in self._ixp_ids)
            else:
                parents.append(self.key(requirement))
        if spec.scope is StepScope.PER_IXP:
            scope_token: object = ixp_id
        else:
            scope_token = self._ixp_ids if spec.studied_set_sensitive else "*"
        fingerprint = config_fingerprint(self._config, spec.config_fields)
        payload = repr((name, scope_token, fingerprint, self._data_token(spec), parents))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        # key() recurses into parents outside the lock; only the store needs it.
        with self._lock:
            self._memo[memo_key] = digest
        return digest


class _PerIXPResults(NamedTuple):
    """The cached results of one IXP's per-IXP node chain."""

    step1_delta: _Delta
    summary: RTTCampaignSummary
    step3_delta: _Delta
    feasible: _FeasibleMap
    baseline_delta: _Delta


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #
class PipelineEngine:
    """Executes the declared step graph over one inputs bundle.

    One engine (hence one :class:`StepResultCache`, one
    :class:`GeoDistanceIndex`, one :class:`DelayModel`) serves every
    configuration run over the same inputs; :class:`SweepRunner` and
    :class:`~repro.core.pipeline.RemotePeeringPipeline` are thin layers on
    top of :meth:`run`.

    ``max_workers`` plus ``executor`` schedule the per-IXP nodes (Steps 1-3
    and the baseline).  ``executor="thread"`` (the default) runs them on a
    persistent :class:`ThreadPoolExecutor`; Steps 1-3 are independent across
    IXPs and every shared structure they touch (the dataset views, the geo
    index and delay-model memos, the cache) tolerates concurrent lazy fills,
    so results are identical to the serial schedule.  ``executor="process"``
    ships each pending IXP's chain to a persistent
    :class:`ProcessPoolExecutor` whose workers hold a pickled snapshot of
    the inputs (true CPU parallelism past the GIL); the replayable report
    deltas the chain returns are plain picklable tuples, and the parent
    stores them under the very cache keys the serial schedule would have
    used, merging in deterministic monolithic order — so outcomes stay
    bit-identical.  ``executor="serial"`` ignores ``max_workers``.

    Pools are created lazily, reused across runs (:meth:`executor_stats`
    counts reuses) and released by :meth:`shutdown` (the engine is also a
    context manager).  A journalled inputs
    revision recreates the process pool on the next run — the workers'
    snapshots would otherwise answer for stale data; direct raw mutation of
    the inputs is (exactly as for the caches) not detected.

    **Failure semantics** (:mod:`repro.resilience`).  Every per-IXP task
    is governed by ``retry_policy``: a failed attempt is retried after a
    capped exponential backoff whose jitter derives deterministically from
    the task digest — no wall clock, no RNG; the sleep goes through the
    injectable ``sleep``, like the phase ``clock``.  A
    ``BrokenProcessPool`` retires the broken pool, rebuilds it and
    resubmits only the unfinished tasks, each charged one attempt so a
    task that keeps killing workers exhausts the policy
    (:class:`WorkerCrashError`) instead of looping.  ``task_timeout_s``
    bounds every result wait; a timeout retires the hung pool and demotes
    the *current run* one rung down the cascade ``process -> thread ->
    serial`` (``ExecutorDegradedWarning`` — the next run starts back at
    the configured executor), or raises :class:`TaskTimeoutError` once the
    task's attempts are spent.  Every decision is journalled as a typed
    :class:`~repro.resilience.ResilienceEvent` surfaced by
    :meth:`executor_stats` / :meth:`resilience_events`; nothing is silent.
    Retried and demoted chains store through the same fingerprint keys and
    their deltas are still absorbed in submission order, so the assembled
    outcome stays bit-identical to the fault-free serial schedule.
    ``fault_plan`` injects deterministic faults (crashes, exceptions,
    pickling failures, hangs) for replayable chaos runs.
    """

    def __init__(
        self,
        inputs: InferenceInputs,
        *,
        delay_model: DelayModel | None = None,
        geo_index: GeoDistanceIndex | None = None,
        cache: StepResultCache | None = None,
        cache_max_entries: int | None = None,
        cache_max_bytes: int | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
        clock: Callable[[], float] = time.perf_counter,
        retry_policy: RetryPolicy | None = None,
        task_timeout_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inputs = inputs
        self.delay_model = delay_model or DelayModel()
        if geo_index is not None and geo_index.dataset is not inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")
        self.geo_index = geo_index if geo_index is not None else inputs.geo_index
        if cache is None:
            cache = StepResultCache(
                max_entries=cache_max_entries, max_bytes=cache_max_bytes)
        elif cache_max_entries is not None or cache_max_bytes is not None:
            # A shared cache keeps its own budget; silently dropping the
            # kwargs would misreport what bounds the sweep.
            raise InferenceError(
                "cache budgets must be set on the shared cache itself")
        self.cache = cache
        if executor not in ("serial", "thread", "process"):
            raise InferenceError(
                f"unknown executor {executor!r}; "
                "expected 'serial', 'thread' or 'process'")
        self.executor = executor
        # Eager validation: a bad worker count must fail here, loudly, not
        # as a late pool failure deep inside the first parallel run.
        if max_workers is not None and (
                isinstance(max_workers, bool)
                or not isinstance(max_workers, int)
                or max_workers < 1):
            raise InferenceError(
                f"max_workers must be a positive int or None, "
                f"got {max_workers!r}")
        self.max_workers = max_workers
        if task_timeout_s is not None and not task_timeout_s > 0:
            raise InferenceError(
                f"task_timeout_s must be positive, got {task_timeout_s!r}")
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy())
        self.task_timeout_s = task_timeout_s
        self.fault_plan = fault_plan
        # The backoff sleeper is injected like the phase clock: the engine
        # never calls time.sleep itself (contracts rule 5), and tests can
        # record the deterministic schedule instead of waiting it out.
        self._sleep = sleep
        self._resilience = ResilienceLog()
        # Persistent per-engine pools (the former pool-per-run churn is a
        # counted non-event now): created lazily by the first parallel run,
        # reused by every later one, released by shutdown().  All pool
        # state is guarded by _pool_lock.
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._process_inputs_token: object | None = None
        # Pools abandoned by crash recovery or timeout demotion: already
        # shut down (workers terminated) at retirement, parked here so
        # shutdown() stays idempotent even after breakage.
        self._retired_pools: list[ProcessPoolExecutor] = []
        self._pools_created = 0
        self._pool_reuses = 0
        self._pool_lock = Lock()
        # Cumulative wall-clock per run phase (seconds), accumulated under
        # _pool_lock so concurrent runs on a shared engine stay consistent.
        # "per_ixp_map" is the schedulable fan-out the executor seam
        # parallelises; "run" is the whole of run() including the serial
        # global nodes and outcome assembly.  The clock is injected (not
        # called as time.perf_counter inline) so the accounting is pure
        # telemetry: no step result depends on it, and determinism-sensitive
        # harnesses can pass a stub.
        self._clock = clock
        self._phase_seconds: dict[str, float] = {"per_ixp_map": 0.0, "run": 0.0}
        self._runs_timed = 0
        # Per-path corpus detection, maintained incrementally across
        # journalled prefix revisions (created on the first traceroute node);
        # the lock makes the lazy creation build-once under concurrent runs.
        self._corpus_detection: CorpusDetectionIndex | None = None
        self._detection_lock = Lock()

    def cache_eviction_stats(self) -> dict[str, object]:
        """The step-result cache's LRU budget accounting (ROADMAP open item)."""
        return self.cache.eviction_stats()

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #
    def _inputs_snapshot_token(self) -> object:
        """Version stamp of the whole inputs bundle, for pool staleness.

        Built from the members' ``version_token()`` stamps, so every
        journalled revision (and any direct growth/shrink the size hints
        catch) changes it; same-size direct mutation is not detected,
        exactly as for the step cache.
        """
        inputs = self.inputs
        return (
            inputs.dataset.version_token(),
            inputs.ping_result.version_token(),
            inputs.corpus.version_token(),
            inputs.prefix2as.version_token(),
        )

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            pool = self._thread_pool
            if pool is None:
                pool = ThreadPoolExecutor(max_workers=self.max_workers)
                self._thread_pool = pool
                self._pools_created += 1
            else:
                self._pool_reuses += 1
            return pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        token = self._inputs_snapshot_token()
        with self._pool_lock:
            pool = self._process_pool
            if pool is not None and self._process_inputs_token != token:
                # The workers hold a pickled snapshot of the inputs; after a
                # journalled revision they would answer for stale data.
                pool.shutdown(wait=True)
                pool = None
                self._process_pool = None
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_process_worker_init,
                    initargs=(self.inputs, self.delay_model, self.fault_plan),
                )
                self._process_pool = pool
                self._process_inputs_token = token
                self._pools_created += 1
            else:
                self._pool_reuses += 1
            return pool

    def executor_stats(self) -> dict[str, object]:
        """Executor-seam accounting: pools, phase timings, resilience events."""
        resilience: dict[str, object] = {
            "counts": self._resilience.counts(),
            "events": self._resilience.snapshot(),
        }
        with self._pool_lock:
            return {
                "executor": self.executor,
                "max_workers": self.max_workers,
                "task_timeout_s": self.task_timeout_s,
                "pools_created": self._pools_created,
                "pool_reuses": self._pool_reuses,
                "pools_retired": len(self._retired_pools),
                "thread_pool_live": self._thread_pool is not None,
                "process_pool_live": self._process_pool is not None,
                "runs_timed": self._runs_timed,
                "phase_seconds": dict(self._phase_seconds),
                "resilience": resilience,
            }

    def resilience_events(self) -> tuple[ResilienceEvent, ...]:
        """The typed journal of fault-handling decisions, oldest first."""
        return self._resilience.snapshot()

    def shutdown(self) -> None:
        """Release the engine's executor pools (idempotent, breakage-safe).

        Live pools are drained with ``wait=True`` outside the pool lock (a
        broken pool's join returns immediately); pools already retired by
        crash recovery or timeout demotion were shut down — workers
        terminated — at retirement and are only dropped here.  Calling
        :meth:`shutdown` again, or after a failed run, is a no-op.
        """
        with self._pool_lock:
            thread_pool = self._thread_pool
            process_pool = self._process_pool
            self._thread_pool = None
            self._process_pool = None
            self._process_inputs_token = None
            self._retired_pools = []
        if thread_pool is not None:
            thread_pool.shutdown(wait=True)
        if process_pool is not None:
            process_pool.shutdown(wait=True)

    def __enter__(self) -> PipelineEngine:
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    def run(self, config: InferenceConfig, ixp_ids: Sequence[str]) -> PipelineOutcome:
        """Run every enabled step for the given IXPs under one configuration."""
        if not ixp_ids:
            raise InferenceError("at least one IXP id is required")
        ixp_ids = tuple(ixp_ids)
        resolver = _KeyResolver(config, ixp_ids, self.inputs)
        cache = self.cache

        # Phase accounting happens in the finally so a run that raises
        # mid-map still books its elapsed time and, more importantly, never
        # skips the bookkeeping that keeps shutdown() releasing pools.
        run_started = self._clock()
        map_elapsed = 0.0
        try:
            map_started = self._clock()
            per_ixp = self._map_per_ixp(config, ixp_ids, resolver)
            map_elapsed = self._clock() - map_started

            crossings, adjacencies = cast(
                "tuple[list[IXPCrossing], list[PrivateAdjacency]]",
                cache.get_or_compute(
                    "traceroute", resolver.key("traceroute"),
                    self._compute_traceroute))

            step1_deltas = [results.step1_delta for results in per_ixp]
            step3_deltas = [results.step3_delta for results in per_ixp]
            feasible: _FeasibleMap = {}
            for results in per_ixp:
                feasible.update(results.feasible)

            step4_delta, routers = cast(
                "tuple[_Delta, list[MultiIXPRouter]]",
                cache.get_or_compute(
                    "step4", resolver.key("step4"),
                    lambda: self._compute_step4(config, ixp_ids, step1_deltas,
                                                step3_deltas, crossings)))
            step5_delta = cast("_Delta", cache.get_or_compute(
                "step5", resolver.key("step5"),
                lambda: self._compute_step5(config, ixp_ids, step1_deltas,
                                            step3_deltas, step4_delta,
                                            adjacencies, routers, feasible)))

            # Assembly: replay the deltas in the monolithic step order, so
            # the final report is bit-identical to the seed single-pass
            # pipeline.
            report = InferenceReport()
            for delta in step1_deltas:
                _replay(report, delta)
            for delta in step3_deltas:
                _replay(report, delta)
            _replay(report, step4_delta)
            _replay(report, step5_delta)

            baseline = InferenceReport()
            for results in per_ixp:
                _replay(baseline, results.baseline_delta)

            rtt_summary = RTTCampaignSummary()
            for results in per_ixp:
                rtt_summary.merge_from(results.summary)

            return PipelineOutcome(
                ixp_ids=list(ixp_ids),
                report=report,
                baseline_report=baseline,
                rtt_summary=rtt_summary,
                feasible=feasible,
                crossings=list(crossings),
                private_adjacencies=list(adjacencies),
                multi_ixp_routers=list(routers),
            )
        finally:
            with self._pool_lock:
                self._phase_seconds["per_ixp_map"] += map_elapsed
                self._phase_seconds["run"] += self._clock() - run_started
                self._runs_timed += 1

    # ------------------------------------------------------------------ #
    # Per-IXP chains (Steps 1-3 + baseline): resilient scheduling
    # ------------------------------------------------------------------ #
    def _map_per_ixp(
        self,
        config: InferenceConfig,
        ixp_ids: tuple[str, ...],
        resolver: _KeyResolver,
    ) -> list[_PerIXPResults]:
        """Schedule every IXP's chain under the run's resilience regime.

        The run starts in the configured executor mode and works in
        *rounds*: each round submits every still-unfinished task, collects
        in submission order, and either finishes, queues retries (per
        :attr:`retry_policy`), recovers a crashed pool, or demotes the
        mode one rung down the cascade ``process -> thread -> serial``
        after a task timeout.  The serial round always completes (or
        exhausts the policy); results are returned in ``ixp_ids`` order so
        the downstream merge stays the deterministic monolithic one.
        """
        parallel = (self.executor != "serial"
                    and self.max_workers is not None and self.max_workers > 1
                    and len(ixp_ids) > 1)
        mode = self.executor if parallel else "serial"
        results: dict[str, _PerIXPResults] = {}
        pending = list(ixp_ids)
        if mode == "process":
            pending = []
            for ixp_id in ixp_ids:
                cached = self._cached_per_ixp(ixp_id, resolver)
                if cached is not None:
                    results[ixp_id] = cached
                else:
                    pending.append(ixp_id)
        attempts = {ixp_id: 0 for ixp_id in pending}
        while pending:
            if mode == "process":
                mode, pending = self._process_round(
                    config, pending, attempts, results, resolver)
            elif mode == "thread":
                mode, pending = self._thread_round(
                    config, pending, attempts, results, resolver)
            else:
                self._serial_round(config, pending, attempts, results, resolver)
                pending = []
        return [results[ixp_id] for ixp_id in ixp_ids]

    def _run_chain_task(
        self,
        config: InferenceConfig,
        ixp_id: str,
        attempt: int,
        resolver: _KeyResolver,
    ) -> _PerIXPResults:
        """One in-process attempt at one IXP's chain, fault plan first."""
        plan = self.fault_plan
        if plan is not None:
            perform_fault(
                plan, task_digest(config, ixp_id), attempt, in_worker=False)
        return self._per_ixp_chain(config, ixp_id, resolver)

    def _retry_backoff(
        self,
        config: InferenceConfig,
        ixp_id: str,
        attempt: int,
        error: Exception,
    ) -> None:
        """Journal the retry and sleep its deterministic backoff, or re-raise."""
        if not self.retry_policy.should_retry(attempt):
            raise error
        self._resilience.record(ResilienceEvent(
            kind=ResilienceEventKind.RETRY, context=ixp_id,
            detail=type(error).__name__, attempt=attempt))
        self._sleep(
            self.retry_policy.delay_s(task_digest(config, ixp_id), attempt))

    def _note_timeout(self, ixp_id: str, attempt: int) -> None:
        """Journal a task timeout; raise once the task's attempts are spent."""
        self._resilience.record(ResilienceEvent(
            kind=ResilienceEventKind.TASK_TIMEOUT, context=ixp_id,
            detail=f"timeout_s={self.task_timeout_s}", attempt=attempt))
        if not self.retry_policy.should_retry(attempt):
            raise TaskTimeoutError(
                f"per-IXP task {ixp_id!r} timed out on attempt {attempt} "
                f"(task_timeout_s={self.task_timeout_s}) with no retries left")

    def _demote(self, mode: str, reason: str) -> str:
        """One rung down the cascade, journalled and warned — never silent."""
        demoted = {"process": "thread", "thread": "serial"}[mode]
        self._resilience.record(ResilienceEvent(
            kind=ResilienceEventKind.EXECUTOR_DEMOTION, context="scheduler",
            detail=f"{mode}->{demoted}: {reason}"))
        warnings.warn(
            ExecutorDegradedWarning(
                f"per-IXP executor demoted {mode} -> {demoted} ({reason})"),
            stacklevel=2)
        return demoted

    def _retire_process_pool(self) -> None:
        """Abandon the live process pool (broken, or hosting a hung task).

        The pool is shut down without waiting, its worker processes are
        terminated (a hung worker would otherwise sleep on past the run),
        and the executor object is parked in ``_retired_pools`` so a later
        :meth:`shutdown` stays idempotent even after breakage.  The next
        :meth:`_ensure_process_pool` builds a fresh pool.
        """
        with self._pool_lock:
            pool = self._process_pool
            self._process_pool = None
            self._process_inputs_token = None
            if pool is not None:
                self._retired_pools.append(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                workers = getattr(pool, "_processes", None) or {}
                for process in list(workers.values()):
                    process.terminate()

    def _crash_recovery(
        self, unfinished: list[str], attempts: dict[str, int]
    ) -> tuple[str, list[str]]:
        """Rebuild after ``BrokenProcessPool``; resubmit unfinished tasks only.

        Every unfinished task is charged one attempt — its in-flight work
        died with the pool — so a task that keeps crashing its worker
        exhausts the policy (:class:`WorkerCrashError`) instead of
        rebuilding forever.  Finished tasks were already absorbed in
        submission order and are not resubmitted.
        """
        for ixp_id in unfinished:
            attempts[ixp_id] += 1
            if not self.retry_policy.should_retry(attempts[ixp_id]):
                self._retire_process_pool()
                raise WorkerCrashError(
                    f"worker pool crashed and task {ixp_id!r} exhausted its "
                    f"{self.retry_policy.max_attempts} attempt(s)")
        self._resilience.record(ResilienceEvent(
            kind=ResilienceEventKind.WORKER_CRASH, context="pool",
            detail=",".join(unfinished)))
        self._retire_process_pool()
        self._resilience.record(ResilienceEvent(
            kind=ResilienceEventKind.POOL_REBUILD, context="pool",
            detail=f"resubmitting {len(unfinished)} task(s)"))
        return "process", list(unfinished)

    def _process_round(
        self,
        config: InferenceConfig,
        pending: list[str],
        attempts: dict[str, int],
        results: dict[str, _PerIXPResults],
        resolver: _KeyResolver,
    ) -> tuple[str, list[str]]:
        """One submit-and-collect pass over the process pool.

        Shipped chains are absorbed into the parent cache as they are
        collected — in submission order, never completion order — so the
        stores happen exactly where the fault-free schedule would have
        made them.  Returns ``(next mode, still-unfinished tasks)``.
        """
        try:
            pool = self._ensure_process_pool()
            futures: dict[str, Future[_PerIXPResults]] = {}
            for ixp_id in pending:
                futures[ixp_id] = pool.submit(
                    _process_chain_task,
                    (config, ixp_id, attempts[ixp_id] + 1))
        except BrokenExecutor:
            return self._crash_recovery(list(pending), attempts)
        retry_queue: list[str] = []
        for index, ixp_id in enumerate(pending):
            attempt = attempts[ixp_id] + 1
            try:
                shipped = futures[ixp_id].result(timeout=self.task_timeout_s)
            except FuturesTimeoutError:
                attempts[ixp_id] = attempt
                self._note_timeout(ixp_id, attempt)
                self._retire_process_pool()
                mode = self._demote("process", f"task {ixp_id!r} timed out")
                return mode, retry_queue + pending[index:]
            except BrokenExecutor:
                return self._crash_recovery(
                    retry_queue + pending[index:], attempts)
            except Exception as error:
                attempts[ixp_id] = attempt
                self._retry_backoff(config, ixp_id, attempt, error)
                retry_queue.append(ixp_id)
            else:
                attempts[ixp_id] = attempt
                results[ixp_id] = self._absorb_per_ixp(
                    ixp_id, resolver, shipped)
        return "process", retry_queue

    def _thread_round(
        self,
        config: InferenceConfig,
        pending: list[str],
        attempts: dict[str, int],
        results: dict[str, _PerIXPResults],
        resolver: _KeyResolver,
    ) -> tuple[str, list[str]]:
        """One submit-and-collect pass over the thread pool.

        Mirrors :meth:`_process_round` minus the crash class (threads
        cannot die under the scheduler); a timed-out thread keeps running
        harmlessly — every store it will eventually make is an idempotent
        ``get_or_compute`` — while the serial round recomputes its task.
        """
        pool = self._ensure_thread_pool()
        futures: dict[str, Future[_PerIXPResults]] = {}
        for ixp_id in pending:
            futures[ixp_id] = pool.submit(
                self._run_chain_task, config, ixp_id,
                attempts[ixp_id] + 1, resolver)
        retry_queue: list[str] = []
        for index, ixp_id in enumerate(pending):
            attempt = attempts[ixp_id] + 1
            try:
                chain = futures[ixp_id].result(timeout=self.task_timeout_s)
            except FuturesTimeoutError:
                attempts[ixp_id] = attempt
                self._note_timeout(ixp_id, attempt)
                mode = self._demote("thread", f"task {ixp_id!r} timed out")
                return mode, retry_queue + pending[index:]
            except Exception as error:
                attempts[ixp_id] = attempt
                self._retry_backoff(config, ixp_id, attempt, error)
                retry_queue.append(ixp_id)
            else:
                attempts[ixp_id] = attempt
                results[ixp_id] = chain
        return "thread", retry_queue

    def _serial_round(
        self,
        config: InferenceConfig,
        pending: list[str],
        attempts: dict[str, int],
        results: dict[str, _PerIXPResults],
        resolver: _KeyResolver,
    ) -> None:
        """Inline execution — the cascade's always-completing last resort.

        No timeout applies (there is nothing left to demote to); failures
        still retry under the policy until it exhausts.
        """
        for ixp_id in pending:
            while True:
                attempt = attempts[ixp_id] + 1
                try:
                    chain = self._run_chain_task(
                        config, ixp_id, attempt, resolver)
                except Exception as error:
                    attempts[ixp_id] = attempt
                    self._retry_backoff(config, ixp_id, attempt, error)
                    continue
                attempts[ixp_id] = attempt
                results[ixp_id] = chain
                break

    def _cached_per_ixp(
        self, ixp_id: str, resolver: _KeyResolver
    ) -> _PerIXPResults | None:
        """The chain's results if every node is already cached, else ``None``.

        Uses :meth:`StepResultCache.peek` so probing which IXPs still need a
        worker trip does not distort the cache's hit/miss accounting.
        """
        cache = self.cache
        hit1, step1 = cache.peek(resolver.key("step1", ixp_id))
        hit2, summary = cache.peek(resolver.key("step2", ixp_id))
        hit3, step3_pair = cache.peek(resolver.key("step3", ixp_id))
        hit_b, baseline = cache.peek(resolver.key("baseline", ixp_id))
        if not (hit1 and hit2 and hit3 and hit_b):
            return None
        step3_delta, feasible = cast("tuple[_Delta, _FeasibleMap]", step3_pair)
        return _PerIXPResults(step1_delta=cast("_Delta", step1),
                              summary=cast(RTTCampaignSummary, summary),
                              step3_delta=step3_delta, feasible=feasible,
                              baseline_delta=cast("_Delta", baseline))

    def _absorb_per_ixp(
        self, ixp_id: str, resolver: _KeyResolver, shipped: _PerIXPResults
    ) -> _PerIXPResults:
        """Store a worker-computed chain under the parent's cache keys.

        Goes through :meth:`StepResultCache.get_or_compute` so the store
        obeys the cache's budgets and accounting; a concurrent run that
        filled a node first wins, exactly as for thread workers.
        """
        cache = self.cache
        step1 = cast("_Delta", cache.get_or_compute(
            "step1", resolver.key("step1", ixp_id), lambda: shipped.step1_delta))
        summary = cast(RTTCampaignSummary, cache.get_or_compute(
            "step2", resolver.key("step2", ixp_id), lambda: shipped.summary))
        step3_delta, feasible = cast("tuple[_Delta, _FeasibleMap]", cache.get_or_compute(
            "step3", resolver.key("step3", ixp_id),
            lambda: (shipped.step3_delta, shipped.feasible)))
        baseline = cast("_Delta", cache.get_or_compute(
            "baseline", resolver.key("baseline", ixp_id),
            lambda: shipped.baseline_delta))
        return _PerIXPResults(step1_delta=step1, summary=summary,
                              step3_delta=step3_delta, feasible=feasible,
                              baseline_delta=baseline)

    def _per_ixp_chain(
        self, config: InferenceConfig, ixp_id: str, resolver: _KeyResolver
    ) -> _PerIXPResults:
        cache = self.cache
        step1 = cast("_Delta", cache.get_or_compute(
            "step1", resolver.key("step1", ixp_id),
            lambda: self._compute_step1(config, ixp_id)))
        summary = cast(RTTCampaignSummary, cache.get_or_compute(
            "step2", resolver.key("step2", ixp_id),
            lambda: self._compute_step2(config, ixp_id)))
        step3_delta, feasible = cast("tuple[_Delta, _FeasibleMap]", cache.get_or_compute(
            "step3", resolver.key("step3", ixp_id),
            lambda: self._compute_step3(config, ixp_id, step1, summary)))
        baseline = cast("_Delta", cache.get_or_compute(
            "baseline", resolver.key("baseline", ixp_id),
            lambda: self._compute_baseline(config, ixp_id, summary)))
        return _PerIXPResults(step1_delta=step1, summary=summary,
                              step3_delta=step3_delta, feasible=feasible,
                              baseline_delta=baseline)

    def _compute_step1(self, config: InferenceConfig, ixp_id: str) -> _Delta:
        report = _RecordingReport()
        report.start_recording()
        if config.enable_step1_port_capacity:
            PortCapacityStep(self.inputs).run([ixp_id], report)
        else:
            # Make sure every member interface is tracked even if Step 1 is
            # off (the monolith's _register_all branch).
            for interface_ip, asn in self.inputs.dataset.interfaces_of_ixp(ixp_id).items():
                report.ensure(ixp_id, interface_ip, asn)
        return tuple(report.log or ())

    def _compute_step2(self, config: InferenceConfig, ixp_id: str) -> RTTCampaignSummary:
        return RTTMeasurementStep(self.inputs, config).run([ixp_id])

    def _compute_step3(
        self,
        config: InferenceConfig,
        ixp_id: str,
        step1_delta: _Delta,
        summary: RTTCampaignSummary,
    ) -> tuple[_Delta, _FeasibleMap]:
        report = _RecordingReport()
        _replay(report, step1_delta)
        analyses: _FeasibleMap = {}
        report.start_recording()
        if config.enable_step3_colocation_rtt:
            step3 = ColocationRTTStep(self.inputs, config, self.delay_model,
                                      geo_index=self.geo_index)
            analyses = step3.run([ixp_id], report, summary)
        return tuple(report.log or ()), analyses

    def _compute_baseline(
        self, config: InferenceConfig, ixp_id: str, summary: RTTCampaignSummary
    ) -> _Delta:
        report = RTTBaseline(self.inputs, config).run([ixp_id], summary)
        return _report_as_delta(report)

    # ------------------------------------------------------------------ #
    # Global nodes (traceroute observables, Steps 4-5)
    # ------------------------------------------------------------------ #
    def _compute_traceroute(self) -> tuple[list[IXPCrossing], list[PrivateAdjacency]]:
        if self._corpus_detection is None:
            # Double-checked lazy creation: two concurrent runs must share
            # one incrementally maintained index, not race two into place.
            with self._detection_lock:
                if self._corpus_detection is None:
                    self._corpus_detection = CorpusDetectionIndex(
                        self.inputs.dataset, self.inputs.prefix2as, self.inputs.corpus)
        return self._corpus_detection.results()

    def _compute_step4(
        self,
        config: InferenceConfig,
        ixp_ids: tuple[str, ...],
        step1_deltas: list[_Delta],
        step3_deltas: list[_Delta],
        crossings: list[IXPCrossing],
    ) -> tuple[_Delta, list[MultiIXPRouter]]:
        report = _RecordingReport()
        for delta in step1_deltas:
            _replay(report, delta)
        for delta in step3_deltas:
            _replay(report, delta)
        routers: list[MultiIXPRouter] = []
        report.start_recording()
        if config.enable_step4_multi_ixp:
            step4 = MultiIXPRouterStep(self.inputs, config, geo_index=self.geo_index)
            routers = step4.run(list(ixp_ids), report, crossings)
        return tuple(report.log or ()), routers

    def _compute_step5(
        self,
        config: InferenceConfig,
        ixp_ids: tuple[str, ...],
        step1_deltas: list[_Delta],
        step3_deltas: list[_Delta],
        step4_delta: _Delta,
        adjacencies: list[PrivateAdjacency],
        routers: list[MultiIXPRouter],
        feasible: _FeasibleMap,
    ) -> _Delta:
        report = _RecordingReport()
        for delta in step1_deltas:
            _replay(report, delta)
        for delta in step3_deltas:
            _replay(report, delta)
        _replay(report, step4_delta)
        report.start_recording()
        if config.enable_step5_private_links:
            step5 = PrivateConnectivityStep(self.inputs, config, geo_index=self.geo_index)
            step5.run(list(ixp_ids), report, adjacencies, routers, feasible)
        return tuple(report.log or ())


# --------------------------------------------------------------------- #
# Process-executor worker side
# --------------------------------------------------------------------- #
# One serial engine per worker process, built from the pickled inputs by
# the pool initializer and reused for every task the worker serves.  The
# fault plan rides in through the same initializer: the injection harness
# wraps the worker entry point, keyed by task digest, so chaos runs are
# replayable (see repro.resilience.faultplan).
_WORKER_ENGINE: PipelineEngine | None = None
_WORKER_FAULT_PLAN: FaultPlan | None = None


def _process_worker_init(
    inputs: InferenceInputs,
    delay_model: DelayModel,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Pool initializer: build the worker's serial engine, warm its geometry.

    Runs once per worker process.  The bulk geometry prebuild over the
    vantage-point footprint replaces what would otherwise be thousands of
    lazy scalar memo fills on the worker's first chain.
    """
    global _WORKER_ENGINE, _WORKER_FAULT_PLAN
    engine = PipelineEngine(inputs, delay_model=delay_model, executor="serial")
    geo_index = engine.geo_index
    if geo_index is not None:
        geo_index.prebuild(inputs.vantage_point_locations())
    _WORKER_ENGINE = engine
    _WORKER_FAULT_PLAN = fault_plan


def _process_chain_task(
    task: tuple[InferenceConfig, str, int],
) -> _PerIXPResults:
    """Run one attempt of one IXP's chain inside a worker process."""
    engine = _WORKER_ENGINE
    if engine is None:
        raise InferenceError("process worker used before its initializer ran")
    config, ixp_id, attempt = task
    plan = _WORKER_FAULT_PLAN
    if plan is not None:
        payload = perform_fault(
            plan, task_digest(config, ixp_id), attempt, in_worker=True)
        if payload is not None:
            # The injected pickling fault: ship the poisoned payload so the
            # failure fires in the worker's result pickling, exactly where
            # a genuinely unpicklable result would.
            return cast(_PerIXPResults, payload)
    resolver = _KeyResolver(config, (ixp_id,), engine.inputs)
    return engine._per_ixp_chain(config, ixp_id, resolver)


class SweepRunner:
    """Runs a list of config scenarios through one shared engine.

    Every scenario reuses every step result whose fingerprint key is
    unchanged — a fig. 9-style ablation that only toggles Step 4 reuses
    Steps 1-3, the traceroute observables and the baseline verbatim, paying
    only for Step 4/5 and outcome assembly.
    """

    def __init__(self, engine: PipelineEngine) -> None:
        self.engine = engine

    def run(
        self, configs: Sequence[InferenceConfig], ixp_ids: Sequence[str]
    ) -> list[PipelineOutcome]:
        """One :class:`PipelineOutcome` per config, in input order."""
        return [self.engine.run(config, ixp_ids) for config in configs]
