"""Step 1 — finding reseller customers via port capacities.

Fractional port capacities (anything below the minimum physical capacity the
IXP sells directly, ``Cmin``) can only be bought through port resellers, so a
member whose observed port capacity ``Cx`` satisfies ``Cx < Cmin`` is a
remote peer by Definition 1.  This step is applied first because it is highly
precise, even though its coverage is limited to IXPs with published pricing
and members with known port capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inputs import InferenceInputs
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification


@dataclass
class PortCapacityStep:
    """Classify reseller customers from fractional port capacities."""

    inputs: InferenceInputs

    def run(self, ixp_ids: list[str], report: InferenceReport) -> int:
        """Apply the step to every member interface of the given IXPs.

        Returns the number of interfaces classified by this step.
        """
        dataset = self.inputs.dataset
        classified = 0
        for ixp_id in ixp_ids:
            min_capacity = dataset.min_capacity(ixp_id)
            for interface_ip, asn in sorted(dataset.interfaces_of_ixp(ixp_id).items()):
                report.ensure(ixp_id, interface_ip, asn)
                if min_capacity is None:
                    continue
                capacity = dataset.port_capacity(ixp_id, asn)
                if capacity is None:
                    continue
                if capacity < min_capacity:
                    report.classify(
                        ixp_id,
                        interface_ip,
                        asn,
                        PeeringClassification.REMOTE,
                        InferenceStep.PORT_CAPACITY,
                        evidence={
                            "port_capacity_mbps": capacity,
                            "min_physical_capacity_mbps": min_capacity,
                        },
                    )
                    classified += 1
        return classified
