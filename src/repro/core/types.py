"""Result types shared by the inference steps."""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.exceptions import InferenceError
from repro.versioning import GenerationGuardedIndex, Versioned


class PeeringClassification(enum.Enum):
    """Outcome of the inference for one IXP member interface."""

    LOCAL = "local"
    REMOTE = "remote"
    UNKNOWN = "unknown"


class InferenceStep(enum.Enum):
    """Which part of the methodology produced a classification."""

    PORT_CAPACITY = "port-capacity"
    RTT_COLOCATION = "rtt+colocation"
    MULTI_IXP_ROUTER = "multi-ixp-router"
    PRIVATE_CONNECTIVITY = "private-connectivity"
    RTT_BASELINE = "rtt-baseline"


@dataclass
class InferenceResult:
    """Classification of one (IXP, member interface) pair.

    Attributes
    ----------
    ixp_id / interface_ip / asn:
        The peering interface being classified and its member AS.
    classification:
        Local, remote, or unknown (no inference possible).
    step:
        The methodology step that produced the classification (``None`` while
        unknown).
    evidence:
        Step-specific details (RTT, feasible facilities, router ids, votes...)
        kept for reporting and debugging.
    """

    ixp_id: str
    interface_ip: str
    asn: int
    classification: PeeringClassification = PeeringClassification.UNKNOWN
    step: InferenceStep | None = None
    evidence: dict[str, object] = field(default_factory=dict)

    @property
    def is_inferred(self) -> bool:
        """True when the interface has been classified local or remote."""
        return self.classification is not PeeringClassification.UNKNOWN

    @property
    def is_remote(self) -> bool:
        """True when the interface was classified remote."""
        return self.classification is PeeringClassification.REMOTE


@dataclass
class InferenceReport(Versioned):
    """The collection of classifications produced by a pipeline run.

    :meth:`results_for_as` and :meth:`results_for_ixp` are served from lazily
    built key indexes guarded by ``(generation, len(results))`` version
    tokens (:class:`~repro.versioning.GenerationGuardedIndex`): Step 4
    queries the ASN index once per (router, IXP) combination and sweep
    reporting queries the IXP index once per (scenario, IXP), which on a
    corpus is far too hot for a linear scan.  The indexes store keys, so
    in-place reclassification stays visible without a rebuild; key-set
    changes at unchanged size require :meth:`invalidate_caches` (an opaque
    generation bump).
    """

    results: dict[tuple[str, str], InferenceResult] = field(default_factory=dict)

    _as_index: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)
    _ixp_index: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        """Re-key the derived indexes; the next accessor call rebuilds them."""
        self.bump_generation()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def ensure(self, ixp_id: str, interface_ip: str, asn: int) -> InferenceResult:
        """Get (or create as UNKNOWN) the result for one interface."""
        key = (ixp_id, interface_ip)
        if key not in self.results:
            self.results[key] = InferenceResult(ixp_id=ixp_id, interface_ip=interface_ip, asn=asn)
        return self.results[key]

    def classify(
        self,
        ixp_id: str,
        interface_ip: str,
        asn: int,
        classification: PeeringClassification,
        step: InferenceStep,
        evidence: dict[str, object] | None = None,
        *,
        overwrite: bool = False,
    ) -> InferenceResult:
        """Record a classification; earlier steps win unless ``overwrite``."""
        if classification is PeeringClassification.UNKNOWN:
            raise InferenceError("classify() must not be called with UNKNOWN")
        result = self.ensure(ixp_id, interface_ip, asn)
        if result.is_inferred and not overwrite:
            return result
        result.classification = classification
        result.step = step
        if evidence:
            result.evidence.update(evidence)
        return result

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def result_for(self, ixp_id: str, interface_ip: str) -> InferenceResult | None:
        """The result for one interface, if tracked."""
        return self.results.get((ixp_id, interface_ip))

    def classification_of(self, ixp_id: str, interface_ip: str) -> PeeringClassification:
        """Classification for one interface (UNKNOWN if never seen)."""
        result = self.results.get((ixp_id, interface_ip))
        return result.classification if result else PeeringClassification.UNKNOWN

    def _build_ixp_index(self) -> dict[str, list[tuple[str, str]]]:
        index: dict[str, list[tuple[str, str]]] = {}
        for key in self.results:
            index.setdefault(key[0], []).append(key)
        return index

    def _build_as_index(self) -> dict[int, list[tuple[str, str]]]:
        index: dict[int, list[tuple[str, str]]] = {}
        for key, result in self.results.items():
            index.setdefault(result.asn, []).append(key)
        return index

    def results_for_ixp(self, ixp_id: str) -> list[InferenceResult]:
        """All results at one IXP."""
        index = self._ixp_index.get(
            (self.generation, len(self.results)), self._build_ixp_index)
        results = self.results
        # Tolerate keys deleted since the index was built instead of raising.
        return [results[key] for key in index.get(ixp_id, ()) if key in results]

    def results_for_as(self, asn: int, ixp_id: str | None = None) -> list[InferenceResult]:
        """All results for one member AS, optionally restricted to an IXP."""
        index = self._as_index.get(
            (self.generation, len(self.results)), self._build_as_index)
        results = self.results
        # Tolerate keys deleted since the index was built instead of raising.
        return [
            results[key] for key in index.get(asn, ())
            if key in results and (ixp_id is None or key[0] == ixp_id)
        ]

    def inferred(self) -> list[InferenceResult]:
        """Every classified (non-unknown) result."""
        return [r for r in self.results.values() if r.is_inferred]

    def unknown(self) -> list[InferenceResult]:
        """Every result still lacking a classification."""
        return [r for r in self.results.values() if not r.is_inferred]

    def remote_share(self, ixp_id: str | None = None) -> float:
        """Fraction of inferred interfaces classified remote."""
        pool = [
            r for r in self.inferred() if ixp_id is None or r.ixp_id == ixp_id
        ]
        if not pool:
            return 0.0
        return sum(1 for r in pool if r.is_remote) / len(pool)

    def coverage(self, ixp_id: str | None = None) -> float:
        """Fraction of tracked interfaces that received a classification."""
        pool = [
            r for r in self.results.values() if ixp_id is None or r.ixp_id == ixp_id
        ]
        if not pool:
            return 0.0
        return sum(1 for r in pool if r.is_inferred) / len(pool)

    def step_contributions(self, ixp_id: str | None = None) -> dict[InferenceStep, int]:
        """How many classifications each step contributed."""
        counter: Counter[InferenceStep] = Counter()
        for result in self.inferred():
            if ixp_id is not None and result.ixp_id != ixp_id:
                continue
            if result.step is not None:
                counter[result.step] += 1
        return dict(counter)

    def classification_of_as(self, asn: int) -> str:
        """Member-level label: ``"local"``, ``"remote"``, ``"hybrid"`` or ``"unknown"``.

        A member AS is *hybrid* when it holds both local and remote
        connections across its inferred interfaces (Section 6.2).
        """
        classes = {
            r.classification for r in self.results_for_as(asn) if r.is_inferred
        }
        if not classes:
            return "unknown"
        if classes == {PeeringClassification.LOCAL}:
            return "local"
        if classes == {PeeringClassification.REMOTE}:
            return "remote"
        return "hybrid"

    def __len__(self) -> int:
        return len(self.results)
