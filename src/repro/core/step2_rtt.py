"""Step 2 — ping RTT measurement post-processing.

The raw ping campaign output (per-round RTT and reply-TTL samples) is turned
into one *minimum RTT observation* per (IXP, member interface):

* **TTL match / switch filters** — replies whose TTL is not consistent with
  the expected initial TTLs (64/255 minus the in-fabric hop) are discarded,
  because they indicate replies generated outside the IXP subnet;
* **unusable Atlas probes** — probes that never answered, and probes whose
  minimum RTT to the IXP route server is at or above 1 ms (they most likely
  sit in the IXP management LAN rather than a peering facility), are dropped;
* **looking-glass rounding** — LGs that report integer milliseconds yield a
  rounded-up RTT; the lower bound used for the minimum-distance estimate is
  therefore relaxed by one millisecond (Section 6.1);
* the **minimum** of the surviving samples is kept, to counter transient
  latency inflation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.constants import EXPECTED_INITIAL_TTLS
from repro.core.inputs import InferenceInputs
from repro.measurement.results import PingSeries
from repro.measurement.vantage import VantagePoint
from repro.versioning import GenerationGuardedIndex, Versioned

#: Reply TTLs the match/switch filters accept: the initial TTL itself (reply
#: generated on the LAN) or one below it (reply that crossed the IXP switch).
_ACCEPTED_REPLY_TTLS: frozenset[int] = frozenset(EXPECTED_INITIAL_TTLS) | frozenset(
    ttl - 1 for ttl in EXPECTED_INITIAL_TTLS
)


@dataclass(frozen=True)
class RTTObservation:
    """Minimum-RTT observation for one (IXP, interface) pair.

    Attributes
    ----------
    rtt_min_ms:
        The minimum RTT across surviving samples (and across vantage points,
        keeping the smallest).
    rtt_lower_ms:
        The value to use when translating the RTT into a *lower* distance
        bound; it equals ``rtt_min_ms`` except for rounding looking glasses,
        where one millisecond of rounding slack is subtracted.
    vp_id:
        The vantage point that produced the kept observation.
    """

    ixp_id: str
    interface_ip: str
    rtt_min_ms: float
    rtt_lower_ms: float
    vp_id: str


@dataclass
class RTTCampaignSummary(Versioned):
    """Everything Step 2 extracted from the raw ping campaign."""

    observations: dict[tuple[str, str], RTTObservation] = field(default_factory=dict)
    usable_vps: dict[str, VantagePoint] = field(default_factory=dict)
    discarded_vps: dict[str, str] = field(default_factory=dict)
    queried_per_vp: dict[str, int] = field(default_factory=dict)
    responsive_per_vp: dict[str, int] = field(default_factory=dict)

    # Lazily built IXP -> observation-keys index, guarded by a
    # ``(generation, len(observations))`` version token
    # (:class:`~repro.versioning.GenerationGuardedIndex`).  The index stores
    # keys, not observation objects, so in-place replacement of an
    # observation under an existing key stays visible without a rebuild.
    # Mutations that keep the size unchanged but alter the key set (delete
    # one key, insert another) require :meth:`invalidate_caches`.
    _keys_by_ixp: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        """Re-key the derived index; the next accessor call rebuilds it."""
        self.bump_generation()

    def merge_from(self, part: "RTTCampaignSummary") -> None:
        """Fold another summary's entries into this one (later parts win).

        This is the journal-honouring way to assemble a campaign-wide
        summary from per-IXP parts: one generation bump covers the whole
        merge, so the ``_keys_by_ixp`` index can never survive it stale.
        """
        self.observations.update(part.observations)
        self.usable_vps.update(part.usable_vps)
        self.discarded_vps.update(part.discarded_vps)
        self.queried_per_vp.update(part.queried_per_vp)
        self.responsive_per_vp.update(part.responsive_per_vp)
        self.bump_generation()

    def observation_for(self, ixp_id: str, interface_ip: str) -> RTTObservation | None:
        """The kept observation for one interface, if any."""
        return self.observations.get((ixp_id, interface_ip))

    def _build_keys_by_ixp(self) -> dict[str, list[tuple[str, str]]]:
        index: dict[str, list[tuple[str, str]]] = {}
        for key in self.observations:
            index.setdefault(key[0], []).append(key)
        return index

    def observations_for_ixp(self, ixp_id: str) -> list[RTTObservation]:
        """All kept observations at one IXP."""
        index = self._keys_by_ixp.get(
            (self.generation, len(self.observations)), self._build_keys_by_ixp)
        observations = self.observations
        # Tolerate keys deleted since the index was built instead of raising.
        return [observations[key] for key in index.get(ixp_id, ()) if key in observations]

    def response_rate(self, vp_id: str) -> float:
        """Fraction of queried interfaces that answered a vantage point."""
        queried = self.queried_per_vp.get(vp_id, 0)
        if queried == 0:
            return 0.0
        return self.responsive_per_vp.get(vp_id, 0) / queried


@dataclass
class RTTMeasurementStep:
    """Turns raw ping series into per-interface minimum-RTT observations."""

    inputs: InferenceInputs
    config: InferenceConfig = field(default_factory=InferenceConfig)

    def run(self, ixp_ids: list[str]) -> RTTCampaignSummary:
        """Process the campaign for the given IXPs."""
        summary = RTTCampaignSummary()
        wanted = set(ixp_ids)
        ping = self.inputs.ping_result

        for vp_id, vp in sorted(ping.vantage_points.items()):
            if vp.ixp_id not in wanted:
                continue
            reason = self._unusable_reason(vp)
            if reason is not None:
                summary.discarded_vps[vp_id] = reason
                continue
            summary.usable_vps[vp_id] = vp

        # Iterate the campaign's per-IXP series index instead of filtering
        # the full series list: the engine runs this step once per studied
        # IXP, and a full scan per IXP would be O(IXPs x series).  The kept
        # observation per key is unaffected by iteration order (_prefer is a
        # total order), and keys never span IXPs.  Deduplicate the requested
        # ids so a repeated id cannot double-count the per-VP tallies.
        for ixp_id in dict.fromkeys(ixp_ids):
            for series in ping.series_for_ixp(ixp_id):
                vp = ping.vantage_points.get(series.vp_id)
                if vp is None or series.vp_id not in summary.usable_vps:
                    continue
                summary.queried_per_vp[series.vp_id] = (
                    summary.queried_per_vp.get(series.vp_id, 0) + 1
                )
                observation = self._process_series(series, vp)
                if observation is None:
                    continue
                summary.responsive_per_vp[series.vp_id] = (
                    summary.responsive_per_vp.get(series.vp_id, 0) + 1
                )
                key = (series.ixp_id, series.target_ip)
                existing = summary.observations.get(key)
                if existing is None or self._prefer(observation, existing):
                    summary.observations[key] = observation
        return summary

    @staticmethod
    def _prefer(candidate: RTTObservation, incumbent: RTTObservation) -> bool:
        """Deterministic keep-the-best rule for one (IXP, interface) key.

        The smallest ``rtt_min_ms`` wins; on a tie the smaller
        ``rtt_lower_ms`` (an integer-rounding LG carries a millisecond of
        rounding slack worth keeping), then the lexicographically smallest
        ``vp_id``, so the winner never depends on the order of
        ``ping.series``.
        """
        return (candidate.rtt_min_ms, candidate.rtt_lower_ms, candidate.vp_id) < (
            incumbent.rtt_min_ms, incumbent.rtt_lower_ms, incumbent.vp_id)

    # ------------------------------------------------------------------ #
    def _unusable_reason(self, vp: VantagePoint) -> str | None:
        """Reason to discard a vantage point, or ``None`` if it is usable."""
        ping = self.inputs.ping_result
        route_server = ping.route_server_series_for_vp(vp.vp_id)
        if route_server is None or not route_server.responded:
            if vp.is_looking_glass:
                # LGs sit on the peering LAN; a silent route server is fine.
                return None
            return "no response from the IXP route server"
        filtered = self._filtered_rtts(route_server)
        if not filtered:
            return None if vp.is_looking_glass else "route-server replies failed the TTL filters"
        if not vp.is_looking_glass and min(filtered) >= self.config.atlas_route_server_filter_ms:
            return "route-server RTT >= 1 ms (probably a management-LAN probe)"
        return None

    def _filtered_rtts(self, series: PingSeries) -> list[float]:
        """Apply the TTL match/switch filters and return surviving RTTs."""
        return [s.rtt_ms for s in series.samples if s.reply_ttl in _ACCEPTED_REPLY_TTLS]

    def _process_series(self, series: PingSeries, vp: VantagePoint) -> RTTObservation | None:
        rtts = self._filtered_rtts(series)
        if not rtts:
            return None
        rtt_min = min(rtts)
        rtt_lower = rtt_min
        if vp.rounds_rtt_up:
            rtt_lower = max(0.0, rtt_min - self.config.lg_rounding_adjustment_ms)
        return RTTObservation(
            ixp_id=series.ixp_id,
            interface_ip=series.target_ip,
            rtt_min_ms=rtt_min,
            rtt_lower_ms=rtt_lower,
            vp_id=vp.vp_id,
        )
