"""Step 4 — multi-IXP router inference.

An AS can terminate several IXP connections on the same border router
(Section 5.1.3).  Traceroute paths betray this: the interface that precedes
an IXP-LAN hop belongs to the member's border router, so a router whose
interfaces precede the LANs of *several* IXPs is a multi-IXP router.

If earlier steps already classified the AS at one of those IXPs, simple
geometric consistency arguments propagate the classification to the others:

* **local multi-IXP router** — the AS is local at one involved IXP and all
  involved IXPs share at least one facility: the single router can be (and
  is) local to all of them;
* **remote multi-IXP router** — the AS is remote at one involved IXP
  (``IXP_R``) and either all the involved IXPs share a facility, or every
  other involved IXP's facilities are closer to ``IXP_R`` than the AS itself
  can possibly be: the router is remote to all of them;
* **hybrid multi-IXP router** — the AS is local at ``IXP_L`` but another
  involved IXP shares no facility with ``IXP_L`` (or is farther away than the
  AS's own presence allows): the router is remote to that other IXP.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.core.inputs import InferenceInputs
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification
from repro.exceptions import InferenceError
from repro.geo.distindex import GeoDistanceIndex
from repro.traixroute.detector import IXPCrossing


class MultiIXPRouterKind(enum.Enum):
    """Classification of a multi-IXP router (Fig. 3 / Fig. 9d)."""

    LOCAL = "local"
    REMOTE = "remote"
    HYBRID = "hybrid"
    UNCLASSIFIED = "unclassified"


@dataclass
class MultiIXPRouter:
    """One router observed to connect to several IXPs."""

    asn: int
    interface_ips: frozenset[str]
    ixp_ids: frozenset[str]
    kind: MultiIXPRouterKind = MultiIXPRouterKind.UNCLASSIFIED

    @property
    def ixp_count(self) -> int:
        """Number of distinct next-hop IXPs observed for this router."""
        return len(self.ixp_ids)


@dataclass
class MultiIXPRouterStep:
    """Infer peering types through multi-IXP routers.

    The geometric conditions compare (AS, IXP) and (IXP, IXP) facility-set
    distances that recur across every router of the same AS and IXP pair;
    all of them are served by the shared :class:`GeoDistanceIndex` min/max
    aggregates, computed once per index lifetime.
    """

    inputs: InferenceInputs
    config: InferenceConfig = field(default_factory=InferenceConfig)
    geo_index: GeoDistanceIndex | None = None

    def __post_init__(self) -> None:
        if self.geo_index is None:
            self.geo_index = self.inputs.geo_index
        elif self.geo_index.dataset is not self.inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")

    def run(
        self,
        ixp_ids: list[str],
        report: InferenceReport,
        crossings: list[IXPCrossing],
    ) -> list[MultiIXPRouter]:
        """Apply the step; returns the multi-IXP routers it identified."""
        routers = self.identify_routers(crossings)
        studied = set(ixp_ids)
        for router in routers:
            self._classify_router(router, studied, report)
        return routers

    # ------------------------------------------------------------------ #
    # Router identification
    # ------------------------------------------------------------------ #
    def identify_routers(self, crossings: list[IXPCrossing]) -> list[MultiIXPRouter]:
        """Alias-resolve the entry interfaces seen before IXP hops.

        Only ASes observed at more than one IXP are worth resolving (the
        paper's optimisation); routers whose interfaces precede a single IXP
        are not multi-IXP routers and are skipped.
        """
        ixps_per_interface: dict[str, set[str]] = defaultdict(set)
        interfaces_per_asn: dict[int, set[str]] = defaultdict(set)
        for crossing in crossings:
            ixps_per_interface[crossing.entry_ip].add(crossing.ixp_id)
            interfaces_per_asn[crossing.entry_asn].add(crossing.entry_ip)

        routers: list[MultiIXPRouter] = []
        for asn, interfaces in sorted(interfaces_per_asn.items()):
            observed_ixps = set().union(*(ixps_per_interface[ip] for ip in interfaces))
            if len(observed_ixps) < 2:
                continue
            resolution = self.inputs.alias_resolver.resolve(interfaces)
            for group in resolution.groups:
                group_ixps: set[str] = set()
                for ip in group:
                    group_ixps.update(ixps_per_interface.get(ip, set()))
                if len(group_ixps) < 2:
                    continue
                routers.append(
                    MultiIXPRouter(
                        asn=asn,
                        interface_ips=frozenset(group),
                        ixp_ids=frozenset(group_ixps),
                    )
                )
        return routers

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def _classify_router(
        self, router: MultiIXPRouter, studied: set[str], report: InferenceReport
    ) -> None:
        involved = sorted(router.ixp_ids)
        prior: dict[str, PeeringClassification] = {}
        for ixp_id in involved:
            classes = {
                r.classification
                for r in report.results_for_as(router.asn, ixp_id)
                if r.is_inferred
            }
            if PeeringClassification.LOCAL in classes:
                prior[ixp_id] = PeeringClassification.LOCAL
            elif PeeringClassification.REMOTE in classes:
                prior[ixp_id] = PeeringClassification.REMOTE

        local_anchors = [i for i, c in prior.items() if c is PeeringClassification.LOCAL]
        remote_anchors = [i for i, c in prior.items() if c is PeeringClassification.REMOTE]

        if local_anchors:
            if self._all_share_a_facility(involved):
                router.kind = MultiIXPRouterKind.LOCAL
                self._propagate(router, involved, PeeringClassification.LOCAL, studied, report)
                return
            anchor = local_anchors[0]
            remotes = self._hybrid_remote_subset(router.asn, anchor, involved)
            if remotes:
                router.kind = MultiIXPRouterKind.HYBRID
                self._propagate(router, remotes, PeeringClassification.REMOTE, studied, report)
                self._propagate(router, [anchor], PeeringClassification.LOCAL, studied, report)
                return
            router.kind = MultiIXPRouterKind.LOCAL if len(local_anchors) == len(involved) \
                else MultiIXPRouterKind.UNCLASSIFIED
            return

        if remote_anchors:
            anchor = remote_anchors[0]
            if self._all_share_a_facility(involved) or self._remote_condition_b(
                router.asn, anchor, involved
            ):
                router.kind = MultiIXPRouterKind.REMOTE
                self._propagate(router, involved, PeeringClassification.REMOTE, studied, report)
                return
            router.kind = MultiIXPRouterKind.REMOTE if len(remote_anchors) == len(involved) \
                else MultiIXPRouterKind.UNCLASSIFIED
            return

        router.kind = MultiIXPRouterKind.UNCLASSIFIED

    def _propagate(
        self,
        router: MultiIXPRouter,
        ixp_ids: list[str],
        classification: PeeringClassification,
        studied: set[str],
        report: InferenceReport,
    ) -> None:
        dataset = self.inputs.dataset
        for ixp_id in ixp_ids:
            if ixp_id not in studied:
                continue
            for interface_ip, asn in dataset.interfaces_of_ixp(ixp_id).items():
                if asn != router.asn:
                    continue
                report.classify(
                    ixp_id,
                    interface_ip,
                    asn,
                    classification,
                    InferenceStep.MULTI_IXP_ROUTER,
                    evidence={
                        "multi_ixp_router_interfaces": sorted(router.interface_ips),
                        "involved_ixps": sorted(router.ixp_ids),
                        "router_kind": router.kind.value,
                    },
                )

    # ------------------------------------------------------------------ #
    # Geometric helpers
    # ------------------------------------------------------------------ #
    def _facilities(self, ixp_id: str) -> set[str]:
        return self.inputs.dataset.facilities_of_ixp(ixp_id)

    def _all_share_a_facility(self, ixp_ids: list[str]) -> bool:
        sets = [self._facilities(i) for i in ixp_ids]
        if any(not s for s in sets):
            return False
        common = set.intersection(*sets)
        return bool(common)

    def _remote_condition_b(self, asn: int, anchor_ixp: str, involved: list[str]) -> bool:
        """Condition 2(b): other IXPs are closer to the anchor IXP than the AS can be."""
        index = self.geo_index
        as_span = index.as_ixp_span_km(asn, anchor_ixp)
        if as_span is None:
            return False
        d_min = as_span[0]
        for ixp_id in involved:
            if ixp_id == anchor_ixp:
                continue
            other_span = index.ixp_pair_span_km(ixp_id, anchor_ixp)
            if other_span is None or other_span[1] >= d_min:
                return False
        return True

    def _hybrid_remote_subset(self, asn: int, anchor_ixp: str, involved: list[str]) -> list[str]:
        """IXPs to which the router must be remote, given it is local at the anchor."""
        index = self.geo_index
        anchor_facilities = self._facilities(anchor_ixp)
        common_span = index.common_facility_span_km(asn, anchor_ixp)
        d_max = common_span[1] if common_span is not None else None

        remotes: list[str] = []
        for ixp_id in involved:
            if ixp_id == anchor_ixp:
                continue
            other_facilities = self._facilities(ixp_id)
            if anchor_facilities and other_facilities and not (
                anchor_facilities & other_facilities
            ):
                remotes.append(ixp_id)
                continue
            if d_max is not None:
                between = index.ixp_pair_span_km(anchor_ixp, ixp_id)
                if between is not None and between[0] > d_max:
                    remotes.append(ixp_id)
        return remotes
