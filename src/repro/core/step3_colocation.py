"""Step 3 — colocation-informed RTT interpretation.

For every member interface with a minimum-RTT observation, the measured RTT
is translated into a *feasible distance ring* around the vantage point using
the physical speed bounds of the delay model (Fig. 6/7 of the paper):

* ``d_max`` follows from the Katz-Bassett maximum probe speed applied to the
  measured minimum RTT;
* ``d_min`` follows from the fitted minimum-speed curve, applied to the RTT
  minus the rounding slack of integer-reporting looking glasses.

IXP facilities (and the member's own facilities) whose distance from the
vantage point falls inside the ring are *feasible*.  The classification rules
are then:

* **remote** — the IXP has no feasible facility, or it has one but the member
  is only present at feasible facilities where the IXP is not;
* **local** — the member is present at a feasible facility of the IXP;
* **no inference** — the IXP has feasible facilities but the member is not
  observed at any feasible facility (typically missing colocation data);
  later steps handle these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.core.inputs import InferenceInputs
from repro.core.step2_rtt import RTTCampaignSummary, RTTObservation
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification
from repro.exceptions import InferenceError
from repro.geo.delay_model import DelayModel, FeasibleRing
from repro.geo.distindex import GeoDistanceIndex


@dataclass
class FeasibleFacilityAnalysis:
    """The geometric evidence Step 3 derived for one interface."""

    ixp_id: str
    interface_ip: str
    asn: int
    ring: FeasibleRing
    feasible_ixp_facilities: set[str] = field(default_factory=set)
    feasible_member_facilities: set[str] = field(default_factory=set)
    member_has_facility_data: bool = False
    classification: PeeringClassification = PeeringClassification.UNKNOWN

    @property
    def n_feasible_ixp_facilities(self) -> int:
        """Number of IXP facilities compatible with the measured RTT."""
        return len(self.feasible_ixp_facilities)


@dataclass
class ColocationRTTStep:
    """Combine minimum RTTs with colocation data (the heart of the method).

    All geometry goes through the shared :class:`GeoDistanceIndex`: each
    (vantage point, facility) distance is computed once per index lifetime —
    the observations of one VP share one sorted distance profile per
    footprint — and the feasibility test is two :mod:`bisect` calls instead
    of one Vincenty run per facility.
    """

    inputs: InferenceInputs
    config: InferenceConfig = field(default_factory=InferenceConfig)
    delay_model: DelayModel = field(default_factory=DelayModel)
    geo_index: GeoDistanceIndex | None = None

    def __post_init__(self) -> None:
        if self.geo_index is None:
            self.geo_index = self.inputs.geo_index
        elif self.geo_index.dataset is not self.inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")

    def run(
        self,
        ixp_ids: list[str],
        report: InferenceReport,
        rtt_summary: RTTCampaignSummary,
    ) -> dict[tuple[str, str], FeasibleFacilityAnalysis]:
        """Classify every interface with an RTT observation.

        Returns the per-interface geometric analysis (also used by Step 5 as
        the feasible-facility set of the IXP).
        """
        analyses: dict[tuple[str, str], FeasibleFacilityAnalysis] = {}
        dataset = self.inputs.dataset
        for ixp_id in ixp_ids:
            for interface_ip, asn in sorted(dataset.interfaces_of_ixp(ixp_id).items()):
                observation = rtt_summary.observation_for(ixp_id, interface_ip)
                if observation is None:
                    continue
                vp = rtt_summary.usable_vps.get(observation.vp_id)
                if vp is None:
                    continue
                analysis = self._analyse(ixp_id, interface_ip, asn, observation, vp.location)
                analyses[(ixp_id, interface_ip)] = analysis
                if analysis.classification is PeeringClassification.UNKNOWN:
                    continue
                report.classify(
                    ixp_id,
                    interface_ip,
                    asn,
                    analysis.classification,
                    InferenceStep.RTT_COLOCATION,
                    evidence={
                        "rtt_min_ms": observation.rtt_min_ms,
                        "feasible_ring_km": (analysis.ring.min_distance_km,
                                             analysis.ring.max_distance_km),
                        "feasible_ixp_facilities": sorted(analysis.feasible_ixp_facilities),
                        "vp_id": observation.vp_id,
                    },
                )
        return analyses

    # ------------------------------------------------------------------ #
    def _analyse(
        self,
        ixp_id: str,
        interface_ip: str,
        asn: int,
        observation: RTTObservation,
        vp_location,
    ) -> FeasibleFacilityAnalysis:
        index = self.geo_index
        tolerance = self.config.feasible_facility_tolerance_km
        ring = FeasibleRing(
            min_distance_km=self.delay_model.min_distance_km(observation.rtt_lower_ms),
            max_distance_km=self.delay_model.max_distance_km(observation.rtt_min_ms),
        )
        min_km = ring.min_distance_km - tolerance
        max_km = ring.max_distance_km + tolerance
        analysis = FeasibleFacilityAnalysis(
            ixp_id=ixp_id,
            interface_ip=interface_ip,
            asn=asn,
            ring=ring,
            feasible_ixp_facilities=index.feasible_ixp_facilities(
                vp_location, ixp_id, min_km, max_km),
            feasible_member_facilities=index.feasible_as_facilities(
                vp_location, asn, min_km, max_km),
            member_has_facility_data=self.inputs.dataset.has_facility_data_for_as(asn),
        )
        analysis.classification = self._classify(analysis)
        return analysis

    @staticmethod
    def _classify(analysis: FeasibleFacilityAnalysis) -> PeeringClassification:
        if not analysis.feasible_ixp_facilities:
            # No facility of the IXP is compatible with the measured RTT.
            return PeeringClassification.REMOTE
        overlap = analysis.feasible_ixp_facilities & analysis.feasible_member_facilities
        if overlap:
            return PeeringClassification.LOCAL
        if analysis.feasible_member_facilities:
            # The member is observed only at feasible facilities where the IXP
            # has no switching fabric.
            return PeeringClassification.REMOTE
        return PeeringClassification.UNKNOWN
