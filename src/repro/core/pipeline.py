"""The combined five-step inference pipeline (facade).

Step ordering follows the paper (Section 5.2): port capacities first (precise
but narrow), then the RTT campaign post-processing, then the
colocation-informed RTT interpretation, then multi-IXP routers, and finally
the private-connectivity vote as a last resort.  Each step only fills in
interfaces that earlier steps left unknown.

Since the step-graph refactor the execution itself lives in
:mod:`repro.core.engine`: the pipeline is a thin facade that binds one
:class:`~repro.config.InferenceConfig` to a :class:`PipelineEngine` and
returns the engine's (bit-identical) :class:`PipelineOutcome`.  Reusing one
pipeline instance — or passing a shared ``engine`` — carries the engine's
:class:`~repro.core.engine.StepResultCache` across runs, so repeated runs,
scenario sweeps and journalled dataset revisions skip every step whose
fingerprint (config fields + data version tokens) is unchanged.
"""

from __future__ import annotations

from repro.config import InferenceConfig
from repro.core.engine import PipelineEngine, PipelineOutcome
from repro.core.inputs import InferenceInputs
from repro.exceptions import InferenceError
from repro.geo.delay_model import DelayModel
from repro.geo.distindex import GeoDistanceIndex

__all__ = ["PipelineOutcome", "RemotePeeringPipeline"]


class RemotePeeringPipeline:
    """Runs the paper's methodology end to end on observable inputs.

    The geometry of Steps 3-5 is served by one shared
    :class:`GeoDistanceIndex`.  By default the pipeline uses the index owned
    by its inputs bundle, so rerunning the pipeline under different
    configurations (scenario sweeps, ablations) reuses every memoised
    distance from earlier runs — and, through the step-graph engine, every
    cached step result whose declared config fields are unchanged.
    """

    def __init__(
        self,
        inputs: InferenceInputs,
        config: InferenceConfig | None = None,
        *,
        delay_model: DelayModel | None = None,
        geo_index: GeoDistanceIndex | None = None,
        engine: PipelineEngine | None = None,
    ) -> None:
        self.inputs = inputs
        self.config = config or InferenceConfig()
        if geo_index is not None and geo_index.dataset is not inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")
        if engine is not None:
            # A shared engine computes with *its* delay model and geo index;
            # accepting different ones here would silently misreport what
            # ran, so explicit arguments must match the engine's.
            if engine.inputs is not inputs:
                raise InferenceError("engine must be built over the same inputs bundle")
            if delay_model is not None and delay_model is not engine.delay_model:
                raise InferenceError("delay_model must be the shared engine's own")
            if geo_index is not None and geo_index is not engine.geo_index:
                raise InferenceError("geo_index must be the shared engine's own")
            self.engine = engine
            self.delay_model = engine.delay_model
            self.geo_index = engine.geo_index
        else:
            self.delay_model = delay_model or DelayModel()
            self.geo_index = geo_index if geo_index is not None else inputs.geo_index
            self.engine = PipelineEngine(
                inputs, delay_model=self.delay_model, geo_index=self.geo_index)

    def run(self, ixp_ids: list[str]) -> PipelineOutcome:
        """Run every enabled step for the given IXPs."""
        return self.engine.run(self.config, ixp_ids)
