"""The combined five-step inference pipeline.

Step ordering follows the paper (Section 5.2): port capacities first (precise
but narrow), then the RTT campaign post-processing, then the
colocation-informed RTT interpretation, then multi-IXP routers, and finally
the private-connectivity vote as a last resort.  Each step only fills in
interfaces that earlier steps left unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.core.baseline import RTTBaseline
from repro.core.inputs import InferenceInputs
from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTCampaignSummary, RTTMeasurementStep
from repro.core.step3_colocation import ColocationRTTStep, FeasibleFacilityAnalysis
from repro.core.step4_multi_ixp import MultiIXPRouter, MultiIXPRouterStep
from repro.core.step5_private_links import PrivateConnectivityStep
from repro.core.types import InferenceReport
from repro.exceptions import InferenceError
from repro.geo.delay_model import DelayModel
from repro.geo.distindex import GeoDistanceIndex
from repro.traixroute.detector import CrossingDetector, IXPCrossing, PrivateAdjacency


@dataclass
class PipelineOutcome:
    """Everything a pipeline run produced."""

    ixp_ids: list[str]
    report: InferenceReport
    baseline_report: InferenceReport
    rtt_summary: RTTCampaignSummary
    feasible: dict[tuple[str, str], FeasibleFacilityAnalysis] = field(default_factory=dict)
    crossings: list[IXPCrossing] = field(default_factory=list)
    private_adjacencies: list[PrivateAdjacency] = field(default_factory=list)
    multi_ixp_routers: list[MultiIXPRouter] = field(default_factory=list)

    def remote_share(self, ixp_id: str | None = None) -> float:
        """Fraction of inferred interfaces classified remote."""
        return self.report.remote_share(ixp_id)


class RemotePeeringPipeline:
    """Runs the paper's methodology end to end on observable inputs.

    The geometry of Steps 3 and 4 is served by one shared
    :class:`GeoDistanceIndex`.  By default the pipeline uses the index owned
    by its inputs bundle, so rerunning the pipeline under different
    configurations (scenario sweeps, ablations) reuses every memoised
    distance from earlier runs.
    """

    def __init__(
        self,
        inputs: InferenceInputs,
        config: InferenceConfig | None = None,
        *,
        delay_model: DelayModel | None = None,
        geo_index: GeoDistanceIndex | None = None,
    ) -> None:
        self.inputs = inputs
        self.config = config or InferenceConfig()
        self.delay_model = delay_model or DelayModel()
        if geo_index is not None and geo_index.dataset is not inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")
        self.geo_index = geo_index if geo_index is not None else inputs.geo_index

    def run(self, ixp_ids: list[str]) -> PipelineOutcome:
        """Run every enabled step for the given IXPs."""
        if not ixp_ids:
            raise InferenceError("at least one IXP id is required")
        report = InferenceReport()

        # Step 1: port capacities.
        if self.config.enable_step1_port_capacity:
            PortCapacityStep(self.inputs).run(ixp_ids, report)
        else:
            self._register_all(ixp_ids, report)

        # Step 2: RTT campaign post-processing.
        rtt_step = RTTMeasurementStep(self.inputs, self.config)
        rtt_summary = rtt_step.run(ixp_ids)

        # Step 3: colocation-informed RTT interpretation.
        feasible: dict[tuple[str, str], FeasibleFacilityAnalysis] = {}
        if self.config.enable_step3_colocation_rtt:
            step3 = ColocationRTTStep(self.inputs, self.config, self.delay_model,
                                      geo_index=self.geo_index)
            feasible = step3.run(ixp_ids, report, rtt_summary)

        # Traceroute-derived observables shared by Steps 4 and 5.
        detector = CrossingDetector(self.inputs.dataset, self.inputs.prefix2as)
        crossings = detector.detect_corpus(self.inputs.corpus)
        adjacencies = detector.private_adjacencies_corpus(self.inputs.corpus)

        # Step 4: multi-IXP routers.
        multi_ixp_routers: list[MultiIXPRouter] = []
        if self.config.enable_step4_multi_ixp:
            step4 = MultiIXPRouterStep(self.inputs, self.config, geo_index=self.geo_index)
            multi_ixp_routers = step4.run(ixp_ids, report, crossings)

        # Step 5: private-connectivity localisation.
        if self.config.enable_step5_private_links:
            step5 = PrivateConnectivityStep(self.inputs, self.config)
            step5.run(ixp_ids, report, adjacencies, multi_ixp_routers, feasible)

        # The RTT-threshold baseline, for comparison, on the same measurements.
        baseline = RTTBaseline(self.inputs, self.config).run(ixp_ids, rtt_summary)

        return PipelineOutcome(
            ixp_ids=list(ixp_ids),
            report=report,
            baseline_report=baseline,
            rtt_summary=rtt_summary,
            feasible=feasible,
            crossings=crossings,
            private_adjacencies=adjacencies,
            multi_ixp_routers=multi_ixp_routers,
        )

    # ------------------------------------------------------------------ #
    def _register_all(self, ixp_ids: list[str], report: InferenceReport) -> None:
        """Make sure every member interface is tracked even if Step 1 is off."""
        for ixp_id in ixp_ids:
            for interface_ip, asn in self.inputs.dataset.interfaces_of_ixp(ixp_id).items():
                report.ensure(ixp_id, interface_ip, asn)
