"""Step 5 — localisation of private connectivity (last-resort heuristic).

Private interconnections are typically cross-connects inside a single
colocation facility.  If a member still lacks a classification after Steps
1-4, its private AS neighbours (extracted from traceroute hops that change AS
without traversing an IXP LAN) effectively *vote* for the facility its border
router lives in, in the spirit of Constrained Facility Search:

1. collect the private neighbours of the member's IXP-facing router (alias
   resolution groups the member's interfaces);
2. find the facilities most common among the majority of those neighbours;
3. if exactly one of those facilities is also a feasible facility of the IXP,
   the member is local; otherwise it is remote.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.core.inputs import InferenceInputs
from repro.core.step3_colocation import FeasibleFacilityAnalysis
from repro.core.step4_multi_ixp import MultiIXPRouter
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification
from repro.exceptions import InferenceError
from repro.geo.distindex import GeoDistanceIndex
from repro.traixroute.detector import PrivateAdjacency


@dataclass
class PrivateConnectivityStep:
    """Vote-based localisation of members through their private neighbours.

    The facility vote is served by the shared
    :class:`GeoDistanceIndex.majority_facility_vote` memo — the same
    neighbour sets recur across the interfaces of one member AS and across
    scenario-sweep reruns, so each vote is tallied once per index lifetime.
    """

    inputs: InferenceInputs
    config: InferenceConfig = field(default_factory=InferenceConfig)
    geo_index: GeoDistanceIndex | None = None

    def __post_init__(self) -> None:
        if self.geo_index is None:
            self.geo_index = self.inputs.geo_index
        elif self.geo_index.dataset is not self.inputs.dataset:
            raise InferenceError("geo_index must be built over the same dataset")

    def run(
        self,
        ixp_ids: list[str],
        report: InferenceReport,
        adjacencies: list[PrivateAdjacency],
        multi_ixp_routers: list[MultiIXPRouter],
        feasible: dict[tuple[str, str], FeasibleFacilityAnalysis],
    ) -> int:
        """Apply the heuristic to every still-unknown interface.

        Returns the number of interfaces classified by this step.
        """
        dataset = self.inputs.dataset
        neighbour_ips = self._interfaces_per_asn(adjacencies, multi_ixp_routers)
        adjacency_index = self._adjacency_index(adjacencies)
        classified = 0

        for ixp_id in ixp_ids:
            for interface_ip, asn in sorted(dataset.interfaces_of_ixp(ixp_id).items()):
                result = report.ensure(ixp_id, interface_ip, asn)
                if result.is_inferred:
                    continue
                neighbours = self._private_neighbours(
                    asn, interface_ip, neighbour_ips.get(asn, set()), adjacency_index)
                if len(neighbours) < self.config.min_private_neighbours:
                    # Fall back to AS-level private neighbours: the paper
                    # compiles N_x as the private AS neighbours of AS_x, not
                    # only of the single alias-resolved router.
                    neighbours = self._as_level_neighbours(
                        asn, neighbour_ips.get(asn, set()), adjacency_index)
                if len(neighbours) < self.config.min_private_neighbours:
                    continue
                common = self._common_facilities(neighbours)
                if not common:
                    continue
                ixp_feasible = self._feasible_ixp_facilities(ixp_id, interface_ip, feasible)
                overlap = common & ixp_feasible
                # No feasible IXP facility survives the neighbours' vote: the
                # member's router is pinned somewhere the IXP is not — remote.
                # A small, coherent vote that does include an IXP facility
                # pins the router inside the IXP's footprint — local.  A vote
                # that is both large and overlapping is ambiguous (typically
                # only huge transit carriers were observed as neighbours) and
                # produces no inference.
                if not overlap:
                    classification = PeeringClassification.REMOTE
                elif len(common) <= self.config.max_coherent_vote_facilities:
                    classification = PeeringClassification.LOCAL
                else:
                    continue
                report.classify(
                    ixp_id,
                    interface_ip,
                    asn,
                    classification,
                    InferenceStep.PRIVATE_CONNECTIVITY,
                    evidence={
                        "private_neighbours": sorted(neighbours),
                        "common_facilities": sorted(common),
                        "feasible_ixp_facilities": sorted(ixp_feasible),
                    },
                )
                classified += 1
        return classified

    # ------------------------------------------------------------------ #
    def _interfaces_per_asn(
        self,
        adjacencies: list[PrivateAdjacency],
        multi_ixp_routers: list[MultiIXPRouter],
    ) -> dict[int, set[str]]:
        """Candidate interfaces per AS: private-link ends plus multi-IXP routers."""
        interfaces: dict[int, set[str]] = defaultdict(set)
        for adjacency in adjacencies:
            interfaces[adjacency.near_asn].add(adjacency.near_ip)
            interfaces[adjacency.far_asn].add(adjacency.far_ip)
        for router in multi_ixp_routers:
            interfaces[router.asn].update(router.interface_ips)
        return interfaces

    @staticmethod
    def _adjacency_index(
        adjacencies: list[PrivateAdjacency],
    ) -> dict[str, set[int]]:
        """Map each interface to the ASes it is privately adjacent to."""
        index: dict[str, set[int]] = defaultdict(set)
        for adjacency in adjacencies:
            index[adjacency.near_ip].add(adjacency.far_asn)
            index[adjacency.far_ip].add(adjacency.near_asn)
        return index

    def _private_neighbours(
        self,
        asn: int,
        ixp_interface_ip: str,
        candidate_ips: set[str],
        adjacency_index: dict[str, set[int]],
    ) -> set[int]:
        """Private AS neighbours of the member's IXP-facing router."""
        resolution = self.inputs.alias_resolver.resolve(candidate_ips | {ixp_interface_ip})
        router_group = resolution.group_of(ixp_interface_ip)
        neighbours: set[int] = set()
        for ip in router_group:
            neighbours.update(adjacency_index.get(ip, set()))
        neighbours.discard(asn)
        return neighbours

    @staticmethod
    def _as_level_neighbours(
        asn: int,
        candidate_ips: set[str],
        adjacency_index: dict[str, set[int]],
    ) -> set[int]:
        """Private AS neighbours observed on any interface of the member AS."""
        neighbours: set[int] = set()
        for ip in candidate_ips:
            neighbours.update(adjacency_index.get(ip, set()))
        neighbours.discard(asn)
        return neighbours

    def _common_facilities(self, neighbours: set[int]) -> set[str]:
        """Facilities shared by the majority of the neighbours with data.

        When no facility reaches a strict majority the neighbour set is
        geographically incoherent and no vote is cast — Step 5 then simply
        makes no inference for this member.
        """
        return set(self.geo_index.majority_facility_vote(frozenset(neighbours)))

    def _feasible_ixp_facilities(
        self,
        ixp_id: str,
        interface_ip: str,
        feasible: dict[tuple[str, str], FeasibleFacilityAnalysis],
    ) -> set[str]:
        """Step 3's feasible facilities when available, otherwise all of them."""
        analysis = feasible.get((ixp_id, interface_ip))
        if analysis is not None and analysis.feasible_ixp_facilities:
            return set(analysis.feasible_ixp_facilities)
        return self.inputs.dataset.facilities_of_ixp(ixp_id)
