"""Bundle of observable inputs consumed by the inference pipeline.

The pipeline never touches the ground-truth world.  Everything it may use is
listed here: the merged public-database view, the raw ping campaign output,
the traceroute corpus, the IP-to-AS mapping and the alias-resolution service
(the latter two are external tools in the paper — Routeviews prefix2as and
MIDAR — and are simulated elsewhere in this library).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alias.midar import AliasResolver
from repro.datasources.merge import ObservedDataset
from repro.datasources.prefix2as import Prefix2ASMap
from repro.exceptions import InferenceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distindex import GeoDistanceIndex
from repro.measurement.results import PingCampaignResult, TracerouteCorpus


@dataclass
class InferenceInputs:
    """Everything the five-step pipeline is allowed to look at.

    ``geo_index`` is the shared :class:`~repro.geo.distindex.GeoDistanceIndex`
    over the dataset's facilities; one index is created per inputs bundle (or
    injected) so that every pipeline run over the same inputs — scenario
    sweeps rerun the pipeline under many configurations — reuses the same
    memoised distances.

    The bundle's members are generation-stamped
    (:class:`~repro.versioning.Versioned`): the step-graph engine folds the
    version tokens of each step's declared data into its cache keys, so one
    bundle (and one engine) survives journalled dataset and campaign
    revisions — steps whose declared inputs are untouched replay from cache.
    """

    dataset: ObservedDataset
    ping_result: PingCampaignResult
    corpus: TracerouteCorpus
    prefix2as: Prefix2ASMap
    alias_resolver: AliasResolver
    geo_index: GeoDistanceIndex | None = None

    def __post_init__(self) -> None:
        if not self.dataset.interface_ixp:
            raise InferenceError("the observed dataset contains no IXP interfaces")
        if self.geo_index is None:
            self.geo_index = GeoDistanceIndex(self.dataset)
        elif self.geo_index.dataset is not self.dataset:
            raise InferenceError("geo_index must be built over the same dataset")

    def interfaces_for(self, ixp_id: str) -> dict[str, int]:
        """IP -> ASN for the members of one IXP, as observed."""
        return self.dataset.interfaces_of_ixp(ixp_id)

    def vantage_point_locations(self) -> list[GeoPoint]:
        """Deduplicated vantage-point locations, in vantage-point-id order.

        The geometry hot path (Steps 3/4) measures every feasibility ring
        from a vantage point's location, so these are exactly the origin
        points worth bulk-prebuilding into the geo index
        (:meth:`~repro.geo.distindex.GeoDistanceIndex.prebuild`) — process
        workers do this once per pool so their first run is warm.
        """
        locations: list[GeoPoint] = []
        seen: set[GeoPoint] = set()
        for _vp_id, vantage_point in sorted(self.ping_result.vantage_points.items()):
            if vantage_point.location not in seen:
                seen.add(vantage_point.location)
                locations.append(vantage_point.location)
        return locations
