"""The RTT-threshold-only baseline (Castro et al.).

The state of the art before the paper inferred remote peering from a single
signal: a member whose minimum RTT from the IXP exceeds a fixed threshold
(10 ms) is remote, anything below is local.  Section 4 of the paper shows why
this is insufficient (remote peers can be nearby, wide-area IXPs make local
peers look far); the baseline is reproduced here so Table 4 can compare the
two approaches on identical measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import InferenceConfig
from repro.core.inputs import InferenceInputs
from repro.core.step2_rtt import RTTCampaignSummary
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification


@dataclass
class RTTBaseline:
    """Classify members purely by a minimum-RTT threshold."""

    inputs: InferenceInputs
    config: InferenceConfig = field(default_factory=InferenceConfig)

    def run(self, ixp_ids: list[str], rtt_summary: RTTCampaignSummary) -> InferenceReport:
        """Produce a standalone report using only the RTT threshold."""
        report = InferenceReport()
        dataset = self.inputs.dataset
        threshold = self.config.rtt_baseline_threshold_ms
        for ixp_id in ixp_ids:
            for interface_ip, asn in sorted(dataset.interfaces_of_ixp(ixp_id).items()):
                report.ensure(ixp_id, interface_ip, asn)
                observation = rtt_summary.observation_for(ixp_id, interface_ip)
                if observation is None:
                    continue
                classification = (
                    PeeringClassification.REMOTE
                    if observation.rtt_min_ms > threshold
                    else PeeringClassification.LOCAL
                )
                report.classify(
                    ixp_id,
                    interface_ip,
                    asn,
                    classification,
                    InferenceStep.RTT_BASELINE,
                    evidence={"rtt_min_ms": observation.rtt_min_ms,
                              "threshold_ms": threshold},
                )
        return report
