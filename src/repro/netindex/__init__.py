"""Shared longest-prefix-match index subsystem.

Every IP classification the reproduction performs — IP-to-AS mapping
(:mod:`repro.datasources.prefix2as`), IXP peering-LAN membership
(:meth:`repro.datasources.merge.ObservedDataset.ixp_for_ip`) and the per-hop
classification inside :class:`repro.traixroute.detector.CrossingDetector` —
funnels through the :class:`~repro.netindex.lpm.LPMIndex` defined here.

The index guarantees *true* longest-prefix-match semantics (the most specific
registered prefix containing an address wins, regardless of insertion order)
and answers lookups with a single binary search over pre-parsed integer
ranges instead of re-parsing every prefix on every probe.  See
:mod:`repro.netindex.lpm` for the data-structure details and the invariants
consumers rely on.
"""

from repro.netindex.lpm import LPMIndex

__all__ = ["LPMIndex"]
