"""Shared longest-prefix-match index subsystem.

Every IP classification the reproduction performs — IP-to-AS mapping
(:mod:`repro.datasources.prefix2as`), IXP peering-LAN membership
(:meth:`repro.datasources.merge.ObservedDataset.ixp_for_ip`) and the per-hop
classification inside :class:`repro.traixroute.detector.CrossingDetector` —
funnels through the :class:`~repro.netindex.lpm.LPMIndex` defined here.

The index guarantees *true* longest-prefix-match semantics (the most specific
registered prefix containing an address wins, regardless of insertion order)
and answers lookups with a single binary search over pre-parsed integer
ranges instead of re-parsing every prefix on every probe.
:class:`~repro.netindex.lpm.LPMDeltaView` is the incremental companion: a
frozen index plus a small add/replace overlay, compacted into a full rebuild
past :data:`~repro.netindex.lpm.DELTA_COMPACTION_THRESHOLD`, so journalled
dataset refreshes patch the LPM path instead of tearing it down.  See
:mod:`repro.netindex.lpm` for the data-structure details and the invariants
consumers rely on.

The ``(size-when-built, payload)`` lazy-cache helper that used to live here
(``SizeGuardedIndex``) was retired by the dataset-versioning layer; the
result containers now guard their derived views with
:class:`repro.versioning.GenerationGuardedIndex` tokens instead.
"""

from repro.netindex.lpm import (
    DELTA_COMPACTION_THRESHOLD,
    LPMDeltaView,
    LPMIndex,
    apply_lpm_delta,
)

__all__ = [
    "DELTA_COMPACTION_THRESHOLD",
    "LPMDeltaView",
    "LPMIndex",
    "apply_lpm_delta",
]
