"""Shared longest-prefix-match index subsystem.

Every IP classification the reproduction performs — IP-to-AS mapping
(:mod:`repro.datasources.prefix2as`), IXP peering-LAN membership
(:meth:`repro.datasources.merge.ObservedDataset.ixp_for_ip`) and the per-hop
classification inside :class:`repro.traixroute.detector.CrossingDetector` —
funnels through the :class:`~repro.netindex.lpm.LPMIndex` defined here.

The index guarantees *true* longest-prefix-match semantics (the most specific
registered prefix containing an address wins, regardless of insertion order)
and answers lookups with a single binary search over pre-parsed integer
ranges instead of re-parsing every prefix on every probe.  See
:mod:`repro.netindex.lpm` for the data-structure details and the invariants
consumers rely on.

:mod:`repro.netindex.sizeguard` holds the companion
:class:`~repro.netindex.sizeguard.SizeGuardedIndex` helper — the shared
implementation of the (size-when-built, payload) lazy-cache pattern used by
every derived-index accessor in the result containers.
"""

from repro.netindex.lpm import LPMIndex
from repro.netindex.sizeguard import SizeGuardedIndex

__all__ = ["LPMIndex", "SizeGuardedIndex"]
