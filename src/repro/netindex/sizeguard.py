"""Shared size-guarded lazy-index helper.

Several result containers serve hot accessors from a derived index (a dict
keyed by IXP, ASN or vantage point) that is built lazily from a backing
collection and must be rebuilt when that collection changes.  The guard used
everywhere is the *size* of the backing collection: the containers are
append-mostly, so growing or shrinking the collection is the mutation that
matters, and it is detectable in O(1).  The pattern used to be hand-rolled as
a ``(size-when-built, payload)`` tuple in five places (the
:class:`~repro.core.types.InferenceReport` indexes, the two
:class:`~repro.measurement.results.PingCampaignResult` indexes,
:meth:`~repro.core.step2_rtt.RTTCampaignSummary.observations_for_ixp` and the
:class:`~repro.datasources.merge.ObservedDataset` views); this module is the
single implementation they all share, so the staleness contract cannot drift.

The contract every consumer documents and relies on:

* the payload is rebuilt whenever the backing collection's size differs from
  the size at build time (growth and shrinkage are detected automatically);
* mutations that keep the size unchanged — replacing a value in place,
  deleting one key and inserting another — are *not* detected and require an
  explicit :meth:`SizeGuardedIndex.invalidate` (the containers expose this as
  ``invalidate_caches()``);
* the ``(size, payload)`` pair is stored and swapped as one atomic reference,
  so a reader never observes a fresh size with a stale payload (relevant when
  per-IXP engine nodes run on a thread pool — the worst concurrent case is a
  duplicated build, never a torn one).
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

P = TypeVar("P")


class SizeGuardedIndex(Generic[P]):
    """A lazily built payload guarded by the size of its backing collection."""

    __slots__ = ("_state",)

    def __init__(self) -> None:
        self._state: tuple[int, P] | None = None

    def get(self, current_size: int, build: Callable[[], P]) -> P:
        """The payload, rebuilt via ``build()`` if the guarded size changed."""
        state = self._state
        if state is None or state[0] != current_size:
            state = (current_size, build())
            self._state = state
        return state[1]

    def invalidate(self) -> None:
        """Drop the payload; the next :meth:`get` rebuilds it."""
        self._state = None

    @property
    def is_built(self) -> bool:
        """Whether a payload is currently held (mainly for tests)."""
        return self._state is not None
