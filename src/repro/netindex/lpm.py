"""Binary-search longest-prefix-match index over pre-parsed integer ranges.

The seed implementation of IP classification re-parsed every registered
prefix with :func:`ipaddress.ip_network` on *every* lookup and returned the
first match in insertion order — which is wrong whenever a more-specific
prefix nests inside a broader one, and linear in the number of prefixes.
:class:`LPMIndex` replaces that with a classic flattened interval table:

* at construction every prefix is parsed **once** into an integer
  ``[network, broadcast]`` range;
* nested ranges are flattened into *disjoint* intervals where each interval
  is owned by the most specific (longest) covering prefix, so a lookup is a
  single :func:`bisect.bisect_right` — ``O(log n)`` with no parsing;
* full-length (host-route) prefixes live in a plain dict consulted before
  the binary search — the exact-match fast path;
* every answer (including misses) is memoised per IP string, so repeated
  hops across a traceroute corpus resolve in ``O(1)`` without even parsing
  the address again.

Invariants consumers rely on:

1. **True LPM semantics** — the most specific registered prefix containing
   an address wins, independent of insertion order.
2. **Last registration wins** — registering the same prefix twice keeps the
   latest value (matching dict-overwrite semantics of the seed sources).
3. **Immutability** — an index never changes after construction; consumers
   that mutate their prefix sets rebuild the index (see the lazy rebuild
   pattern in :class:`repro.datasources.prefix2as.Prefix2ASMap` and
   :meth:`repro.datasources.merge.ObservedDataset.ixp_for_ip`).

Both IPv4 and IPv6 prefixes are supported; each version gets its own table.
"""

from __future__ import annotations

import ipaddress
from bisect import bisect_right
from typing import Generic, Iterable, Mapping, TypeVar

V = TypeVar("V")

#: Sentinel distinguishing "memoised miss" from "not memoised yet".
_UNCACHED = object()


class LPMIndex(Generic[V]):
    """Immutable longest-prefix-match index from CIDR prefixes to values."""

    __slots__ = ("_tables", "_hosts", "_memo", "_size")

    def __init__(self, entries: Iterable[tuple[str, V]] | Mapping[str, V] = ()) -> None:
        if isinstance(entries, Mapping):
            entries = entries.items()
        # version -> (network_int, prefixlen) -> value; last registration wins.
        by_version: dict[int, dict[tuple[int, int], V]] = {}
        hosts: dict[tuple[int, int], V] = {}
        for prefix, value in entries:
            if value is None:
                raise ValueError("LPMIndex values may not be None (None means miss)")
            network = ipaddress.ip_network(prefix)
            key = (int(network.network_address), network.prefixlen)
            if network.prefixlen == network.max_prefixlen:
                # Host routes live only in the exact-match dict; it already
                # answers them as the longest possible match.
                hosts[(network.version, key[0])] = value
            by_version.setdefault(network.version, {})[key] = value

        self._hosts = hosts
        self._size = sum(len(bucket) for bucket in by_version.values())
        self._tables: dict[int, tuple[list[int], list[int], list[V]]] = {}
        for version, bucket in by_version.items():
            max_prefixlen = 32 if version == 4 else 128
            intervals = sorted(
                (
                    (start, start + (1 << (max_prefixlen - length)) - 1, value)
                    for (start, length), value in bucket.items()
                    if length < max_prefixlen
                ),
                key=lambda interval: (interval[0], -interval[1]),
            )
            table = self._flatten(intervals)
            if table[0]:
                self._tables[version] = table
        self._memo: dict[str, V | None] = {}

    @staticmethod
    def _flatten(
        intervals: list[tuple[int, int, V]],
    ) -> tuple[list[int], list[int], list[V]]:
        """Flatten properly-nested ranges into disjoint most-specific intervals.

        ``intervals`` must be sorted by ``(start, end descending)`` so that at
        an equal ``start`` the shorter (outer) prefix is opened before the
        nested one; CIDR ranges never partially overlap.
        """
        starts: list[int] = []
        ends: list[int] = []
        values: list[V] = []

        def emit(lo: int, hi: int, value: V) -> None:
            if lo > hi:
                return
            if starts and values[-1] == value and ends[-1] == lo - 1:
                ends[-1] = hi
            else:
                starts.append(lo)
                ends.append(hi)
                values.append(value)

        stack: list[tuple[int, V]] = []  # (end, value) of currently open prefixes
        cursor = 0
        for start, end, value in intervals:
            while stack and stack[-1][0] < start:
                top_end, top_value = stack.pop()
                emit(cursor, top_end, top_value)
                cursor = top_end + 1
            if stack:
                emit(cursor, start - 1, stack[-1][1])
            stack.append((end, value))
            cursor = start
        while stack:
            top_end, top_value = stack.pop()
            emit(cursor, top_end, top_value)
            cursor = top_end + 1
        return starts, ends, values

    # ------------------------------------------------------------------ #
    def lookup(self, ip: str) -> V | None:
        """Value of the longest registered prefix containing ``ip``, if any."""
        cached = self._memo.get(ip, _UNCACHED)
        if cached is not _UNCACHED:
            return cached
        address = ipaddress.ip_address(ip)
        numeric = int(address)
        value: V | None = self._hosts.get((address.version, numeric))
        if value is None:
            table = self._tables.get(address.version)
            if table is not None:
                starts, ends, table_values = table
                slot = bisect_right(starts, numeric) - 1
                if slot >= 0 and ends[slot] >= numeric:
                    value = table_values[slot]
        self._memo[ip] = value
        return value

    def clear_cache(self) -> None:
        """Drop the lookup memo (the interval tables are untouched)."""
        self._memo.clear()

    def __len__(self) -> int:
        """Number of distinct registered prefixes."""
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
