"""Binary-search longest-prefix-match index over pre-parsed integer ranges.

The seed implementation of IP classification re-parsed every registered
prefix with :func:`ipaddress.ip_network` on *every* lookup and returned the
first match in insertion order — which is wrong whenever a more-specific
prefix nests inside a broader one, and linear in the number of prefixes.
:class:`LPMIndex` replaces that with a classic flattened interval table:

* at construction every prefix is parsed **once** into an integer
  ``[network, broadcast]`` range;
* nested ranges are flattened into *disjoint* intervals where each interval
  is owned by the most specific (longest) covering prefix, so a lookup is a
  single :func:`bisect.bisect_right` — ``O(log n)`` with no parsing;
* full-length (host-route) prefixes live in a plain dict consulted before
  the binary search — the exact-match fast path;
* every answer (including misses) is memoised per IP string, so repeated
  hops across a traceroute corpus resolve in ``O(1)`` without even parsing
  the address again.

Invariants consumers rely on:

1. **True LPM semantics** — the most specific registered prefix containing
   an address wins, independent of insertion order.
2. **Last registration wins** — registering the same prefix twice keeps the
   latest value (matching dict-overwrite semantics of the seed sources).
3. **Immutability** — an index never changes after construction; consumers
   that mutate their prefix sets rebuild the index, or wrap it in an
   :class:`LPMDeltaView` — a small add/replace overlay consulted alongside
   the frozen interval array, compacted into a full rebuild past a threshold
   (see :class:`repro.datasources.prefix2as.Prefix2ASMap` and
   :meth:`repro.datasources.merge.ObservedDataset.ixp_for_ip`).

Both IPv4 and IPv6 prefixes are supported; each version gets its own table.
"""

from __future__ import annotations

import ipaddress
from bisect import bisect_right
from threading import Lock
from typing import Generic, Iterable, Mapping, TypeVar, cast

V = TypeVar("V")

#: Overlay patches an :class:`LPMDeltaView` accumulates before its owner
#: should compact it into a freshly built :class:`LPMIndex`.  Each lookup
#: scans the overlay linearly (after the base binary search), so the overlay
#: must stay small relative to the base table.
DELTA_COMPACTION_THRESHOLD = 64

#: Sentinel distinguishing "memoised miss" from "not memoised yet".
_UNCACHED = object()


class LPMIndex(Generic[V]):
    """Immutable longest-prefix-match index from CIDR prefixes to values."""

    __slots__ = ("_tables", "_hosts", "_memo", "_size", "_lock")

    def __init__(self, entries: Iterable[tuple[str, V]] | Mapping[str, V] = ()) -> None:
        if isinstance(entries, Mapping):
            entries = entries.items()
        # version -> (network_int, prefixlen) -> value; last registration wins.
        by_version: dict[int, dict[tuple[int, int], V]] = {}
        hosts: dict[tuple[int, int], V] = {}
        for prefix, value in entries:
            if value is None:
                raise ValueError("LPMIndex values may not be None (None means miss)")
            network = ipaddress.ip_network(prefix)
            key = (int(network.network_address), network.prefixlen)
            if network.prefixlen == network.max_prefixlen:
                # Host routes live only in the exact-match dict; it already
                # answers them as the longest possible match.
                hosts[(network.version, key[0])] = value
            by_version.setdefault(network.version, {})[key] = value

        self._hosts = hosts
        self._size = sum(len(bucket) for bucket in by_version.values())
        self._tables: dict[int, tuple[list[int], list[int], list[V], list[int]]] = {}
        for version, bucket in by_version.items():
            max_prefixlen = 32 if version == 4 else 128
            intervals = sorted(
                (
                    (start, start + (1 << (max_prefixlen - length)) - 1, value, length)
                    for (start, length), value in bucket.items()
                    if length < max_prefixlen
                ),
                key=lambda interval: (interval[0], -interval[1]),
            )
            table = self._flatten(intervals)
            if table[0]:
                self._tables[version] = table
        self._memo: dict[str, tuple[V, int] | None] = {}
        self._lock = Lock()

    def __getstate__(
        self,
    ) -> tuple[
        dict[int, tuple[list[int], list[int], list[V], list[int]]],
        dict[tuple[int, int], V],
        dict[str, tuple[V, int] | None],
        int,
    ]:
        # The lock is process-local; the tables (and the memo, whose entries
        # are pure functions of them) travel to the worker as-is.
        return (self._tables, self._hosts, self._memo, self._size)

    def __setstate__(
        self,
        state: tuple[
            dict[int, tuple[list[int], list[int], list[V], list[int]]],
            dict[tuple[int, int], V],
            dict[str, tuple[V, int] | None],
            int,
        ],
    ) -> None:
        self._tables, self._hosts, self._memo, self._size = state
        self._lock = Lock()

    @staticmethod
    def _flatten(
        intervals: list[tuple[int, int, V, int]],
    ) -> tuple[list[int], list[int], list[V], list[int]]:
        """Flatten properly-nested ranges into disjoint most-specific intervals.

        ``intervals`` must be sorted by ``(start, end descending)`` so that at
        an equal ``start`` the shorter (outer) prefix is opened before the
        nested one; CIDR ranges never partially overlap.  Each emitted
        interval keeps the prefix length of its owner so lookups can report
        *how specific* their match was (the delta-overlay tie-breaker).
        """
        starts: list[int] = []
        ends: list[int] = []
        values: list[V] = []
        lengths: list[int] = []

        def emit(lo: int, hi: int, value: V, length: int) -> None:
            if lo > hi:
                return
            if (
                starts
                and values[-1] == value
                and lengths[-1] == length
                and ends[-1] == lo - 1
            ):
                ends[-1] = hi
            else:
                starts.append(lo)
                ends.append(hi)
                values.append(value)
                lengths.append(length)

        # (end, value, length) of currently open prefixes, outermost first.
        stack: list[tuple[int, V, int]] = []
        cursor = 0
        for start, end, value, length in intervals:
            while stack and stack[-1][0] < start:
                top_end, top_value, top_length = stack.pop()
                emit(cursor, top_end, top_value, top_length)
                cursor = top_end + 1
            if stack:
                emit(cursor, start - 1, stack[-1][1], stack[-1][2])
            stack.append((end, value, length))
            cursor = start
        while stack:
            top_end, top_value, top_length = stack.pop()
            emit(cursor, top_end, top_value, top_length)
            cursor = top_end + 1
        return starts, ends, values, lengths

    # ------------------------------------------------------------------ #
    def lookup(self, ip: str) -> V | None:
        """Value of the longest registered prefix containing ``ip``, if any."""
        match = self.lookup_match(ip)
        return None if match is None else match[0]

    def lookup_match(self, ip: str) -> tuple[V, int] | None:
        """``(value, prefixlen)`` of the longest match, or ``None`` on a miss.

        The prefix length is what :class:`LPMDeltaView` compares against its
        overlay patches: a patch wins exactly when it is at least as specific
        as the base match (an equally specific patch *is* the base prefix,
        re-registered with a new value).
        """
        cached = self._memo.get(ip, _UNCACHED)
        if cached is not _UNCACHED:
            # The sentinel is filtered out above; narrow for the checker.
            return cast("tuple[V, int] | None", cached)
        address = ipaddress.ip_address(ip)
        numeric = int(address)
        match: tuple[V, int] | None = None
        host_value = self._hosts.get((address.version, numeric))
        if host_value is not None:
            match = (host_value, address.max_prefixlen)
        else:
            table = self._tables.get(address.version)
            if table is not None:
                starts, ends, table_values, lengths = table
                slot = bisect_right(starts, numeric) - 1
                if slot >= 0 and ends[slot] >= numeric:
                    match = (table_values[slot], lengths[slot])
        # The match was computed from immutable tables; only the memo store
        # needs the lock, so the hit path above stays lock-free.
        with self._lock:
            self._memo[ip] = match
        return match

    def clear_cache(self) -> None:
        """Drop the lookup memo (the interval tables are untouched)."""
        with self._lock:
            self._memo.clear()

    def __len__(self) -> int:
        """Number of distinct registered prefixes."""
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class LPMDeltaView(Generic[V]):
    """A frozen :class:`LPMIndex` plus a small add/replace patch overlay.

    The incremental path of the dataset-versioning layer: when a prefix map
    that already built its index receives a *small* delta (a feed refresh
    adds or re-maps a handful of prefixes), rebuilding the whole interval
    table is wasteful.  The view keeps the frozen base index (and its warm
    lookup memo) and layers the patches on top:

    * a lookup asks the base for its longest match *with prefix length* and
      scans the overlay for containing patches;
    * the overlay wins when its best patch is **at least as specific** as the
      base match — an equally specific patch is necessarily the same prefix
      (two distinct equal-length prefixes cannot both contain one address),
      i.e. a re-registration whose new value must win;
    * prefix *removal* is unsupported by design: the flattened base table no
      longer knows which outer prefix should inherit a removed range, so
      owners fall back to a full rebuild (see ``Prefix2ASMap.remove``).

    Views are **immutable**: :meth:`patched` returns a new view sharing the
    base index, so owners can swap one reference atomically (the same
    torn-read-free contract as
    :class:`~repro.versioning.GenerationGuardedIndex`).  Owners compact the
    overlay into a fresh :class:`LPMIndex` once :attr:`delta_size` passes
    :data:`DELTA_COMPACTION_THRESHOLD` — the overlay scan is linear, so it
    must stay small relative to the base.
    """

    __slots__ = ("base", "_overlay", "_memo", "_lock")

    def __init__(
        self,
        base: LPMIndex[V],
        overlay: Mapping[str, tuple[int, int, int, V]] | None = None,
    ) -> None:
        self.base = base
        # canonical prefix -> (version, network_int, prefixlen, value)
        self._overlay: dict[str, tuple[int, int, int, V]] = dict(overlay or {})
        self._memo: dict[str, tuple[V, int] | None] = {}
        self._lock = Lock()

    def __getstate__(
        self,
    ) -> tuple[
        LPMIndex[V],
        dict[str, tuple[int, int, int, V]],
        dict[str, tuple[V, int] | None],
    ]:
        # The lock is process-local; base, overlay and memo travel as-is.
        return (self.base, self._overlay, self._memo)

    def __setstate__(
        self,
        state: tuple[
            LPMIndex[V],
            dict[str, tuple[int, int, int, V]],
            dict[str, tuple[V, int] | None],
        ],
    ) -> None:
        self.base, self._overlay, self._memo = state
        self._lock = Lock()

    @property
    def delta_size(self) -> int:
        """Number of overlay patches layered over the base index."""
        return len(self._overlay)

    def patched(self, prefix: str, value: V) -> "LPMDeltaView[V]":
        """A new view with one more add/replace patch (the base is shared)."""
        if value is None:
            raise ValueError("LPMDeltaView values may not be None (None means miss)")
        network = ipaddress.ip_network(prefix)
        overlay = dict(self._overlay)
        overlay[str(network)] = (
            network.version,
            int(network.network_address),
            network.prefixlen,
            value,
        )
        return LPMDeltaView(self.base, overlay)

    def lookup(self, ip: str) -> V | None:
        """Value of the longest patched-or-base prefix containing ``ip``."""
        match = self.lookup_match(ip)
        return None if match is None else match[0]

    def lookup_match(self, ip: str) -> tuple[V, int] | None:
        """``(value, prefixlen)`` of the longest match across base and overlay."""
        cached = self._memo.get(ip, _UNCACHED)
        if cached is not _UNCACHED:
            # The sentinel is filtered out above; narrow for the checker.
            return cast("tuple[V, int] | None", cached)
        address = ipaddress.ip_address(ip)
        numeric = int(address)
        max_prefixlen = address.max_prefixlen
        match = self.base.lookup_match(ip)
        for version, network_int, prefixlen, value in self._overlay.values():
            if version != address.version:
                continue
            shift = max_prefixlen - prefixlen
            if (numeric >> shift) != (network_int >> shift):
                continue
            # An equally specific overlay patch is the same prefix
            # re-registered, so ties go to the overlay (last write wins).
            if match is None or prefixlen >= match[1]:
                match = (value, prefixlen)
        with self._lock:
            self._memo[ip] = match
        return match


def apply_lpm_delta(
    view: LPMIndex[V] | LPMDeltaView[V], prefix: str, value: V
) -> LPMDeltaView[V] | None:
    """One add/replace patch on a built LPM view, or ``None`` to compact.

    The single implementation of the owner-side delta contract shared by
    :class:`repro.datasources.prefix2as.Prefix2ASMap` and the
    :meth:`~repro.datasources.merge.ObservedDataset.set_ixp_prefix` LAN
    index: wrap a bare :class:`LPMIndex` into a view on the first patch, and
    signal compaction (return ``None``; the caller drops its view and lazily
    rebuilds from the authoritative dict) once the overlay has reached
    :data:`DELTA_COMPACTION_THRESHOLD` patches *before* this one.
    """
    if isinstance(view, LPMIndex):
        view = LPMDeltaView(view)
    if view.delta_size >= DELTA_COMPACTION_THRESHOLD:
        return None
    return view.patched(prefix, value)
