"""The ground-truth world container.

A :class:`World` holds every entity of the synthetic Internet — facilities,
ASes, IXPs, resellers, routers, interfaces, memberships and the AS
relationship graph — and provides the lookup helpers the rest of the library
needs (facility locations, memberships per IXP, ground-truth labels for
validation, etc.).

A freshly generated world always passes :meth:`World.validate`, and the
hypothesis-based property tests assert that this stays true across seeds and
configurations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.exceptions import TopologyError, UnknownEntityError
from repro.geo.coordinates import GeoPoint, geodesic_distance_km
from repro.topology.entities import (
    AutonomousSystem,
    ConnectionKind,
    Facility,
    Interface,
    InterfaceKind,
    IXP,
    IXPMembership,
    PortReseller,
    PrivateLink,
    Router,
)
from repro.topology.relationships import ASRelationshipGraph


@dataclass
class World:
    """Container for the entire synthetic ground truth.

    Attributes
    ----------
    seed:
        Seed used by the generator that built this world (kept for
        provenance in exports and experiment reports).
    facilities / ases / ixps / resellers / routers / interfaces:
        Entity dictionaries keyed by their natural identifier.
    memberships:
        Every (IXP, member AS) attachment, including the ground-truth
        connection kind.
    relationships:
        The AS business-relationship graph (customer cones, BGP preferences).
    routed_prefixes:
        Mapping of CIDR prefix string to the originating ASN.
    """

    seed: int = 0
    facilities: dict[str, Facility] = field(default_factory=dict)
    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    ixps: dict[str, IXP] = field(default_factory=dict)
    resellers: dict[str, PortReseller] = field(default_factory=dict)
    routers: dict[str, Router] = field(default_factory=dict)
    interfaces: dict[str, Interface] = field(default_factory=dict)
    memberships: list[IXPMembership] = field(default_factory=list)
    private_links: list[PrivateLink] = field(default_factory=list)
    relationships: ASRelationshipGraph = field(default_factory=ASRelationshipGraph)
    routed_prefixes: dict[str, int] = field(default_factory=dict)
    infrastructure_prefixes: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        self._memberships_by_ixp: dict[str, list[IXPMembership]] = defaultdict(list)
        self._membership_by_interface: dict[str, IXPMembership] = {}
        self._routers_by_asn: dict[int, list[str]] = defaultdict(list)
        self._prefixes_by_asn: dict[int, list[str]] = defaultdict(list)
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the derived lookup indexes after bulk mutation."""
        self._memberships_by_ixp = defaultdict(list)
        self._membership_by_interface = {}
        for membership in self.memberships:
            self._memberships_by_ixp[membership.ixp_id].append(membership)
            self._membership_by_interface[membership.interface_ip] = membership
        self._routers_by_asn = defaultdict(list)
        for router in self.routers.values():
            self._routers_by_asn[router.asn].append(router.router_id)
        self._prefixes_by_asn = defaultdict(list)
        for prefix, asn in self.routed_prefixes.items():
            self._prefixes_by_asn[asn].append(prefix)

    def add_membership(self, membership: IXPMembership) -> None:
        """Register a membership and keep the indexes up to date."""
        self.memberships.append(membership)
        self._memberships_by_ixp[membership.ixp_id].append(membership)
        self._membership_by_interface[membership.interface_ip] = membership

    # ------------------------------------------------------------------ #
    # Entity lookups
    # ------------------------------------------------------------------ #
    def facility(self, facility_id: str) -> Facility:
        """Return a facility by id, raising :class:`UnknownEntityError` if absent."""
        try:
            return self.facilities[facility_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown facility {facility_id!r}") from exc

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        """Return an AS by number."""
        try:
            return self.ases[asn]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown AS{asn}") from exc

    def ixp(self, ixp_id: str) -> IXP:
        """Return an IXP by id."""
        try:
            return self.ixps[ixp_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown IXP {ixp_id!r}") from exc

    def router(self, router_id: str) -> Router:
        """Return a router by id."""
        try:
            return self.routers[router_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown router {router_id!r}") from exc

    def interface(self, ip: str) -> Interface:
        """Return an interface by IP address."""
        try:
            return self.interfaces[ip]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown interface {ip!r}") from exc

    def facility_location(self, facility_id: str) -> GeoPoint:
        """Coordinates of a facility."""
        return self.facility(facility_id).location

    # ------------------------------------------------------------------ #
    # Membership queries
    # ------------------------------------------------------------------ #
    def members_of(self, ixp_id: str) -> list[IXPMembership]:
        """All memberships of an IXP (raises if the IXP is unknown)."""
        self.ixp(ixp_id)
        return list(self._memberships_by_ixp.get(ixp_id, []))

    def membership_for_interface(self, interface_ip: str) -> IXPMembership:
        """The membership owning a given IXP-LAN interface address."""
        try:
            return self._membership_by_interface[interface_ip]
        except KeyError as exc:
            raise UnknownEntityError(f"no membership for interface {interface_ip!r}") from exc

    def memberships_of_as(self, asn: int) -> list[IXPMembership]:
        """Every IXP membership held by one AS."""
        return [m for m in self.memberships if m.asn == asn]

    def active_memberships(self, ixp_id: str | None = None) -> list[IXPMembership]:
        """Memberships that have not departed, optionally restricted to one IXP."""
        pool = self.members_of(ixp_id) if ixp_id is not None else self.memberships
        return [m for m in pool if m.departed_month is None]

    def private_links_of(self, asn: int) -> list[PrivateLink]:
        """Every private interconnection one AS takes part in."""
        return [link for link in self.private_links if link.involves(asn)]

    def private_links_in_facility(self, facility_id: str) -> list[PrivateLink]:
        """Every private interconnection hosted by one facility."""
        return [link for link in self.private_links if link.facility_id == facility_id]

    def routers_of_as(self, asn: int) -> list[Router]:
        """Every router owned by one AS."""
        return [self.routers[rid] for rid in self._routers_by_asn.get(asn, [])]

    def prefixes_of_as(self, asn: int) -> list[str]:
        """Prefixes originated by one AS."""
        return list(self._prefixes_by_asn.get(asn, []))

    def ground_truth_is_remote(self, interface_ip: str) -> bool:
        """Ground-truth remoteness label for an IXP-LAN interface."""
        return self.membership_for_interface(interface_ip).is_remote

    def ixps_by_member_count(self) -> list[IXP]:
        """IXPs ordered by decreasing number of members."""
        return sorted(
            self.ixps.values(),
            key=lambda ixp: (-len(self._memberships_by_ixp.get(ixp.ixp_id, [])), ixp.ixp_id),
        )

    def largest_ixps(self, count: int) -> list[IXP]:
        """The ``count`` IXPs with the most members."""
        return self.ixps_by_member_count()[:count]

    # ------------------------------------------------------------------ #
    # Geography helpers
    # ------------------------------------------------------------------ #
    def ixp_facility_locations(self, ixp_id: str) -> dict[str, GeoPoint]:
        """Facility-id -> coordinates for all facilities of one IXP."""
        ixp = self.ixp(ixp_id)
        return {fid: self.facility_location(fid) for fid in sorted(ixp.facility_ids)}

    def max_ixp_facility_distance_km(self, ixp_id: str) -> float:
        """Maximum pairwise distance between the facilities of an IXP."""
        locations = list(self.ixp_facility_locations(ixp_id).values())
        best = 0.0
        for i, a in enumerate(locations):
            for b in locations[i + 1:]:
                best = max(best, geodesic_distance_km(a, b))
        return best

    def distance_between_facilities_km(self, facility_a: str, facility_b: str) -> float:
        """Geodesic distance between two facilities."""
        return geodesic_distance_km(
            self.facility_location(facility_a), self.facility_location(facility_b)
        )

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    def remote_share(self, ixp_id: str | None = None) -> float:
        """Fraction of memberships whose ground truth is remote.

        Restricted to one IXP when ``ixp_id`` is given, global otherwise.
        Returns 0.0 when there are no memberships in scope.
        """
        pool = self.active_memberships(ixp_id)
        if not pool:
            return 0.0
        remote = sum(1 for m in pool if m.is_remote)
        return remote / len(pool)

    def summary(self) -> dict[str, int]:
        """Entity counts, handy for logging and experiment provenance."""
        return {
            "facilities": len(self.facilities),
            "ases": len(self.ases),
            "ixps": len(self.ixps),
            "resellers": len(self.resellers),
            "routers": len(self.routers),
            "interfaces": len(self.interfaces),
            "memberships": len(self.memberships),
            "routed_prefixes": len(self.routed_prefixes),
        }

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` on failure.

        The invariants encode the ground-truth consistency the paper's
        methodology implicitly relies on:

        * every membership references existing entities;
        * a local member's router sits in one of the IXP's facilities, a
          remote member's router does not;
        * fractional port capacities only appear on reseller connections;
        * IXP-LAN interfaces belong to the advertised peering LAN of their IXP;
        * router facility references exist and interface ownership matches.
        """
        import ipaddress

        for membership in self.memberships:
            ixp = self.ixp(membership.ixp_id)
            self.autonomous_system(membership.asn)
            router = self.router(membership.router_id)
            member_facility = self.facility(membership.member_facility_id)
            if router.facility_id != membership.member_facility_id:
                raise TopologyError(
                    f"membership of AS{membership.asn} at {ixp.ixp_id} says facility "
                    f"{member_facility.facility_id} but its router sits in {router.facility_id}"
                )
            is_colocated = membership.member_facility_id in ixp.facility_ids
            if membership.connection is ConnectionKind.LOCAL and not is_colocated:
                raise TopologyError(
                    f"local member AS{membership.asn} of {ixp.ixp_id} is not in an IXP facility"
                )
            if membership.connection is not ConnectionKind.LOCAL and is_colocated:
                # A remote member colocated with the IXP is allowed only for
                # reseller customers (the paper's Section 5.1.2 observation).
                if membership.connection is not ConnectionKind.REMOTE_RESELLER:
                    raise TopologyError(
                        f"remote member AS{membership.asn} of {ixp.ixp_id} is colocated with "
                        "the IXP but not a reseller customer"
                    )
            if membership.port_capacity_mbps < ixp.min_physical_capacity_mbps:
                if membership.connection is not ConnectionKind.REMOTE_RESELLER:
                    raise TopologyError(
                        f"AS{membership.asn} at {ixp.ixp_id} holds a fractional port but is "
                        "not a reseller customer"
                    )
            if membership.reseller_id is not None and membership.reseller_id not in self.resellers:
                raise TopologyError(
                    f"membership of AS{membership.asn} references unknown reseller "
                    f"{membership.reseller_id!r}"
                )
            lan = ipaddress.ip_network(ixp.peering_lan)
            if ipaddress.ip_address(membership.interface_ip) not in lan:
                raise TopologyError(
                    f"interface {membership.interface_ip} of AS{membership.asn} is outside the "
                    f"peering LAN {ixp.peering_lan} of {ixp.ixp_id}"
                )

        for interface in self.interfaces.values():
            router = self.router(interface.router_id)
            if interface.ip not in router.interface_ips:
                raise TopologyError(
                    f"interface {interface.ip} not registered on router {router.router_id}"
                )
            if interface.asn != router.asn:
                raise TopologyError(
                    f"interface {interface.ip} assigned to AS{interface.asn} but its router "
                    f"belongs to AS{router.asn}"
                )
            if interface.kind is InterfaceKind.IXP_LAN and interface.ixp_id not in self.ixps:
                raise TopologyError(
                    f"IXP-LAN interface {interface.ip} references unknown IXP {interface.ixp_id!r}"
                )

        for router in self.routers.values():
            self.facility(router.facility_id)
            self.autonomous_system(router.asn)

        for ixp in self.ixps.values():
            for facility_id in ixp.facility_ids:
                self.facility(facility_id)

        for asn in self.ases:
            for facility_id in self.ases[asn].facility_ids:
                self.facility(facility_id)

        for link in self.private_links:
            self.facility(link.facility_id)
            router_a = self.router(link.router_a)
            router_b = self.router(link.router_b)
            if router_a.asn != link.asn_a or router_b.asn != link.asn_b:
                raise TopologyError(
                    f"private link in {link.facility_id} references routers whose owners do not "
                    f"match AS{link.asn_a}/AS{link.asn_b}"
                )
            if router_a.facility_id != link.facility_id or router_b.facility_id != link.facility_id:
                raise TopologyError(
                    f"private link in {link.facility_id} connects routers outside that facility"
                )

        self.relationships.validate_acyclic()
