"""Entity dataclasses for the synthetic Internet/IXP world.

These classes describe the *ground truth*: where every facility is, which IXP
operates switching fabric where, which AS has routing equipment in which
facility, and — crucially — how every IXP member is really connected (locally,
through a port reseller, over a long layer-2 cable, or via an IXP federation).

The inference pipeline never sees these objects directly; it only sees the
noisy views produced by :mod:`repro.datasources` and the measurement results
produced by :mod:`repro.measurement`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constants import FRACTIONAL_CAPACITIES, PHYSICAL_CAPACITIES
from repro.exceptions import TopologyError
from repro.geo.coordinates import GeoPoint


class ConnectionKind(enum.Enum):
    """Ground-truth way an IXP member reaches the IXP switching fabric."""

    LOCAL = "local"
    REMOTE_RESELLER = "remote-reseller"
    REMOTE_LONG_CABLE = "remote-long-cable"
    REMOTE_FEDERATION = "remote-federation"

    @property
    def is_remote(self) -> bool:
        """True for every kind except a direct local connection."""
        return self is not ConnectionKind.LOCAL


class InterfaceKind(enum.Enum):
    """Role of a router interface."""

    IXP_LAN = "ixp-lan"           #: address inside an IXP peering LAN
    BACKBONE = "backbone"         #: intra-AS / transit interface
    PRIVATE_PEERING = "private"   #: private (non-IXP) interconnection interface


class TrafficLevel(enum.Enum):
    """Self-reported aggregate traffic levels, PeeringDB-style buckets."""

    MBPS_100 = "0-100 Mbps"
    MBPS_1000 = "100-1000 Mbps"
    GBPS_5 = "1-5 Gbps"
    GBPS_10 = "5-10 Gbps"
    GBPS_100 = "10-100 Gbps"
    GBPS_1000 = "100-1000 Gbps"
    TBPS_PLUS = "1 Tbps+"

    @property
    def ordinal(self) -> int:
        """Monotonic rank of the bucket (0 = smallest traffic)."""
        return list(TrafficLevel).index(self)


@dataclass(frozen=True)
class Facility:
    """A colocation facility (data centre) where networks can deploy routers.

    Attributes
    ----------
    facility_id:
        Unique identifier, e.g. ``"fac-0042"``.
    name:
        Human-readable name, e.g. ``"Equinix AM7 Amsterdam"``.
    city / country:
        City name (gazetteer) and ISO alpha-2 country code.
    location:
        Geographic coordinates of the facility.
    operator:
        Facility operator brand (used only for realism in exports).
    """

    facility_id: str
    name: str
    city: str
    country: str
    location: GeoPoint
    operator: str = "Generic DC"


@dataclass
class AutonomousSystem:
    """An autonomous system (network) in the synthetic world.

    Attributes
    ----------
    asn:
        Autonomous System Number.
    name:
        Organisation name.
    country:
        ISO alpha-2 country code of the headquarters.
    headquarters_city:
        Gazetteer city of the headquarters.
    facility_ids:
        Facilities where the AS has deployed routing equipment (ground truth).
    tier:
        1 for transit-free backbones, 2 for regional transit providers, 3 for
        stub/edge networks.  Drives the relationship generator.
    traffic_level:
        Self-reported aggregate traffic bucket (PeeringDB-style).
    user_population:
        Estimated served user population (APNIC-style).
    prefix_count:
        Number of /24-equivalent prefixes originated by the AS.
    is_reseller_carrier:
        True if the AS is the carrier network of a port reseller.
    """

    asn: int
    name: str
    country: str
    headquarters_city: str
    facility_ids: set[str] = field(default_factory=set)
    tier: int = 3
    traffic_level: TrafficLevel = TrafficLevel.MBPS_1000
    user_population: int = 0
    prefix_count: int = 1
    is_reseller_carrier: bool = False

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")
        if self.tier not in (1, 2, 3):
            raise TopologyError(f"tier must be 1, 2 or 3, got {self.tier}")
        if self.prefix_count < 1:
            raise TopologyError("prefix_count must be at least 1")


@dataclass(frozen=True)
class PortReseller:
    """An organisation reselling fractions of IXP ports to remote peers.

    Attributes
    ----------
    reseller_id:
        Unique identifier, e.g. ``"rsl-03"``.
    name:
        Brand name.
    carrier_asn:
        ASN of the layer-2 carrier network operated by the reseller.
    facility_ids:
        Facilities where the reseller offers access handoff.
    served_ixp_ids:
        IXPs on which the reseller owns physical ports to resell.
    """

    reseller_id: str
    name: str
    carrier_asn: int
    facility_ids: frozenset[str]
    served_ixp_ids: frozenset[str]


@dataclass
class Router:
    """A border router owned by an AS, physically located in one facility.

    Attributes
    ----------
    router_id:
        Unique identifier, e.g. ``"rtr-000123"``.
    asn:
        Owning AS.
    facility_id:
        Facility where the chassis is installed (ground truth location).
    interface_ips:
        IP addresses configured on this router.
    """

    router_id: str
    asn: int
    facility_id: str
    interface_ips: list[str] = field(default_factory=list)

    def add_interface(self, ip: str) -> None:
        """Attach an interface IP to the router (idempotent)."""
        if ip not in self.interface_ips:
            self.interface_ips.append(ip)


@dataclass(frozen=True)
class Interface:
    """A single router interface and its role.

    Attributes
    ----------
    ip:
        Dotted-quad IPv4 address (unique world-wide in the simulation).
    asn:
        AS that the interface is assigned to.
    router_id:
        Router carrying the interface.
    kind:
        Role of the interface (IXP LAN / backbone / private peering).
    ixp_id:
        For IXP-LAN interfaces, the IXP whose peering LAN contains the IP.
    """

    ip: str
    asn: int
    router_id: str
    kind: InterfaceKind
    ixp_id: str | None = None

    def __post_init__(self) -> None:
        if self.kind is InterfaceKind.IXP_LAN and self.ixp_id is None:
            raise TopologyError(f"IXP-LAN interface {self.ip} must reference an IXP")


@dataclass
class IXP:
    """An Internet eXchange Point.

    Attributes
    ----------
    ixp_id:
        Unique identifier, e.g. ``"ixp-007"``.
    name:
        Exchange name, e.g. ``"AMS-IX-SIM"``.
    city / country:
        Primary metro and country of the exchange.
    peering_lan:
        The IPv4 prefix (CIDR string) of the peering LAN.
    facility_ids:
        Facilities where the IXP operates switching equipment.
    min_physical_capacity_mbps:
        Minimum port capacity (Mbit/s) that can be bought *directly* from the
        IXP; anything below this is only available through resellers.
    allows_resellers:
        Whether the IXP runs a reseller programme at all.
    route_server_ip:
        Address of the IXP route server inside the peering LAN (used as the
        reference target when sanity-checking Atlas vantage points).
    federation_id:
        Identifier shared by IXPs belonging to the same federation (e.g. the
        GlobePeer-style products); ``None`` for standalone IXPs.
    """

    ixp_id: str
    name: str
    city: str
    country: str
    peering_lan: str
    facility_ids: set[str] = field(default_factory=set)
    min_physical_capacity_mbps: int = 1_000
    allows_resellers: bool = True
    route_server_ip: str | None = None
    federation_id: str | None = None

    def __post_init__(self) -> None:
        if self.min_physical_capacity_mbps not in PHYSICAL_CAPACITIES:
            raise TopologyError(
                "min_physical_capacity_mbps must be one of the physical port "
                f"capacities {PHYSICAL_CAPACITIES}, got {self.min_physical_capacity_mbps}"
            )


@dataclass(frozen=True)
class PrivateLink:
    """A private (non-IXP) interconnection between two ASes in one facility.

    Private interconnections are typically established by cross-connecting
    routers inside the same colocation facility (Section 5.1.4); Step 5 of the
    inference algorithm exploits exactly this property.

    Attributes
    ----------
    facility_id:
        Facility where the cross-connect lives.
    asn_a / asn_b:
        The two interconnected networks.
    interface_a / interface_b:
        The interface addresses on either side of the link (used when the
        traceroute simulator expands the hop).
    router_a / router_b:
        The routers terminating the link.
    """

    facility_id: str
    asn_a: int
    asn_b: int
    interface_a: str
    interface_b: str
    router_a: str
    router_b: str

    def involves(self, asn: int) -> bool:
        """True if ``asn`` is one of the two endpoints."""
        return asn in (self.asn_a, self.asn_b)

    def other_end(self, asn: int) -> int:
        """The ASN at the opposite end of the link from ``asn``."""
        if asn == self.asn_a:
            return self.asn_b
        if asn == self.asn_b:
            return self.asn_a
        raise TopologyError(f"AS{asn} is not an endpoint of this private link")


@dataclass
class IXPMembership:
    """Ground truth of how one AS peers at one IXP.

    Attributes
    ----------
    ixp_id / asn:
        The exchange and the member network.
    interface_ip:
        The member's address inside the IXP peering LAN.
    router_id:
        The member router terminating the IXP port or VLAN.
    member_facility_id:
        Facility where that router is physically installed.  For a local
        member this is one of the IXP's facilities; for a remote member it
        usually is not.
    connection:
        Ground-truth connection kind (local / reseller / long cable /
        federation).
    port_capacity_mbps:
        Capacity of the port or virtual port.
    reseller_id:
        Reseller used, when ``connection`` is ``REMOTE_RESELLER``.
    joined_month / departed_month:
        Month indices (0-based, relative to the start of the longitudinal
        window) used by the evolution analysis; ``departed_month`` is ``None``
        for members still connected.
    """

    ixp_id: str
    asn: int
    interface_ip: str
    router_id: str
    member_facility_id: str
    connection: ConnectionKind
    port_capacity_mbps: int
    reseller_id: str | None = None
    joined_month: int = 0
    departed_month: int | None = None

    def __post_init__(self) -> None:
        valid_capacities = set(PHYSICAL_CAPACITIES) | set(FRACTIONAL_CAPACITIES)
        if self.port_capacity_mbps not in valid_capacities:
            raise TopologyError(
                f"unknown port capacity {self.port_capacity_mbps} Mbps for "
                f"AS{self.asn} at {self.ixp_id}"
            )
        if self.connection is ConnectionKind.REMOTE_RESELLER and self.reseller_id is None:
            raise TopologyError(
                f"reseller connection for AS{self.asn} at {self.ixp_id} must name a reseller"
            )

    @property
    def is_remote(self) -> bool:
        """Ground-truth remoteness of this membership."""
        return self.connection.is_remote

    def active_in_month(self, month: int) -> bool:
        """True if the membership exists during the given month index."""
        if month < self.joined_month:
            return False
        return self.departed_month is None or month < self.departed_month
