"""AS business relationships and customer cones.

Section 6.2 of the paper characterises remote/local/hybrid IXP members by the
size of their CAIDA customer cone.  This module provides the substrate: a
relationship graph holding customer-to-provider (c2p) and peer-to-peer (p2p)
edges, plus the customer-cone computation (the set of ASes reachable by
walking provider->customer edges only).

The same graph also feeds the BGP-like path selection of
:mod:`repro.routing.path_selection` (Gao-Rexford preferences).
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass

import networkx as nx

from repro.exceptions import TopologyError


class Relationship(enum.Enum):
    """Business relationship between two ASes."""

    CUSTOMER_TO_PROVIDER = "c2p"
    PEER_TO_PEER = "p2p"


@dataclass(frozen=True)
class RelationshipEdge:
    """One relationship record, CAIDA serialisation style.

    For ``CUSTOMER_TO_PROVIDER`` the edge is read "``customer`` buys transit
    from ``provider``"; for ``PEER_TO_PEER`` the two fields are just the two
    peers (order not meaningful).
    """

    first_asn: int
    second_asn: int
    relationship: Relationship


class ASRelationshipGraph:
    """Holds c2p / p2p edges and answers cone and neighbour queries."""

    def __init__(self) -> None:
        # Directed graph with provider -> customer edges.
        self._transit = nx.DiGraph()
        # Undirected graph for p2p edges.
        self._peering = nx.Graph()
        self._cone_cache: dict[int, frozenset[int]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_asn(self, asn: int) -> None:
        """Register an AS even if it has no relationships yet."""
        self._transit.add_node(asn)
        self._peering.add_node(asn)

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"AS{customer} cannot be its own provider")
        self.add_asn(customer)
        self.add_asn(provider)
        self._transit.add_edge(provider, customer)
        self._cone_cache.clear()

    def add_peering(self, asn_a: int, asn_b: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if asn_a == asn_b:
            raise TopologyError(f"AS{asn_a} cannot peer with itself")
        self.add_asn(asn_a)
        self.add_asn(asn_b)
        self._peering.add_edge(asn_a, asn_b)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def asns(self) -> set[int]:
        """All registered ASNs."""
        return set(self._transit.nodes)

    def providers_of(self, asn: int) -> set[int]:
        """Direct transit providers of an AS."""
        if asn not in self._transit:
            return set()
        return set(self._transit.predecessors(asn))

    def customers_of(self, asn: int) -> set[int]:
        """Direct customers of an AS."""
        if asn not in self._transit:
            return set()
        return set(self._transit.successors(asn))

    def peers_of(self, asn: int) -> set[int]:
        """Settlement-free peers of an AS."""
        if asn not in self._peering:
            return set()
        return set(self._peering.neighbors(asn))

    def relationship_between(self, asn_a: int, asn_b: int) -> str | None:
        """Return the relationship from ``asn_a``'s point of view.

        Returns ``"c2p"`` if ``asn_a`` is a customer of ``asn_b``, ``"p2c"``
        if ``asn_a`` is a provider of ``asn_b``, ``"p2p"`` for settlement-free
        peering, or ``None`` if the two ASes have no direct relationship.
        """
        if self._transit.has_edge(asn_b, asn_a):
            return "c2p"
        if self._transit.has_edge(asn_a, asn_b):
            return "p2c"
        if self._peering.has_edge(asn_a, asn_b):
            return "p2p"
        return None

    def is_provider_of(self, provider: int, customer: int) -> bool:
        """True if ``provider`` sells transit to ``customer``."""
        return self._transit.has_edge(provider, customer)

    # ------------------------------------------------------------------ #
    # Customer cones
    # ------------------------------------------------------------------ #
    def customer_cone(self, asn: int) -> frozenset[int]:
        """The customer cone of an AS (itself plus everything below it).

        Defined as in CAIDA's serial-1 dataset: the set of ASes reachable by
        following only provider->customer edges, including the AS itself.
        """
        if asn in self._cone_cache:
            return self._cone_cache[asn]
        if asn not in self._transit:
            cone = frozenset({asn})
            self._cone_cache[asn] = cone
            return cone
        visited: set[int] = {asn}
        queue: deque[int] = deque([asn])
        while queue:
            current = queue.popleft()
            for customer in self._transit.successors(current):
                if customer not in visited:
                    visited.add(customer)
                    queue.append(customer)
        cone = frozenset(visited)
        self._cone_cache[asn] = cone
        return cone

    def customer_cone_size(self, asn: int) -> int:
        """Number of ASes in the customer cone (including the AS itself)."""
        return len(self.customer_cone(asn))

    def all_cone_sizes(self) -> dict[int, int]:
        """Customer-cone size for every registered AS."""
        return {asn: self.customer_cone_size(asn) for asn in self.asns}

    # ------------------------------------------------------------------ #
    # Export / sanity
    # ------------------------------------------------------------------ #
    def edges(self) -> list[RelationshipEdge]:
        """Return every relationship as a list of records (CAIDA-dump style)."""
        records: list[RelationshipEdge] = []
        for provider, customer in self._transit.edges:
            records.append(
                RelationshipEdge(
                    first_asn=customer,
                    second_asn=provider,
                    relationship=Relationship.CUSTOMER_TO_PROVIDER,
                )
            )
        for a, b in self._peering.edges:
            records.append(
                RelationshipEdge(first_asn=a, second_asn=b, relationship=Relationship.PEER_TO_PEER)
            )
        return records

    def validate_acyclic(self) -> None:
        """Ensure the transit hierarchy has no customer/provider cycles."""
        if not nx.is_directed_acyclic_graph(self._transit):
            cycle = nx.find_cycle(self._transit)
            raise TopologyError(f"transit hierarchy contains a cycle: {cycle}")

    def degree_summary(self) -> dict[int, dict[str, int]]:
        """Per-AS neighbour counts, useful for analysis and tests."""
        summary: dict[int, dict[str, int]] = defaultdict(dict)
        for asn in self.asns:
            summary[asn] = {
                "providers": len(self.providers_of(asn)),
                "customers": len(self.customers_of(asn)),
                "peers": len(self.peers_of(asn)),
            }
        return dict(summary)
