"""Seeded synthetic world generator.

The generator builds a ground-truth :class:`~repro.topology.world.World`
whose statistical shape matches the ecosystem the paper measures (DESIGN.md
§5): a heavy-tailed IXP size distribution rooted in the largest peering
markets, wide-area IXPs whose switching fabric spans several metros, port
resellers with wide geographic footprints, and IXP memberships split between
local and remote connections with the paper's distance and port-capacity mix.

The construction is entirely deterministic given ``GeneratorConfig.seed``.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

from repro.config import GeneratorConfig
from repro.constants import (
    CAPACITY_10GE,
    CAPACITY_40GE,
    CAPACITY_100GE,
    CAPACITY_GE,
    FRACTIONAL_CAPACITIES,
)
from repro.exceptions import TopologyError
from repro.geo.cities import WORLD_CITIES, City
from repro.geo.coordinates import geodesic_distance_km, offset_point
from repro.geo.regions import region_for_country
from repro.topology.addressing import AddressPlan
from repro.topology.entities import (
    AutonomousSystem,
    ConnectionKind,
    Facility,
    Interface,
    InterfaceKind,
    IXP,
    IXPMembership,
    PortReseller,
    PrivateLink,
    Router,
    TrafficLevel,
)
from repro.topology.world import World

_FACILITY_OPERATORS = (
    "Equinix",
    "Interxion",
    "Digital Realty",
    "Telehouse",
    "CoreSite",
    "NTT GDC",
    "Global Switch",
    "DataHouse",
)

_RESELLER_NAMES = (
    "IX Reach",
    "RETN Connect",
    "Epsilon Fabric",
    "Console Connect",
    "Atrato Access",
    "BSO Link",
    "NetIX Carrier",
    "Megaport Wire",
    "PCCW PeerLink",
    "Seaborn Peer",
)

#: First ASN handed to ordinary networks.
_BASE_ASN = 1_000
#: First ASN handed to reseller carrier networks.
_RESELLER_BASE_ASN = 64_500


@dataclass
class _MembershipPlan:
    """Internal plan for one membership before entities are materialised."""

    ixp_id: str
    asn: int
    connection: ConnectionKind
    member_facility_id: str
    port_capacity_mbps: int
    reseller_id: str | None
    joined_month: int
    departed_month: int | None


class WorldGenerator:
    """Builds a ground-truth world from a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = random.Random(self.config.seed)
        self._plan = AddressPlan()
        self._world = World(seed=self.config.seed)
        self._facilities_by_city: dict[str, list[str]] = defaultdict(list)
        self._router_by_as_facility: dict[tuple[int, str], str] = {}
        self._router_counter = 0
        self._ixp_sizes: dict[str, int] = {}
        self._ixp_remote_fraction: dict[str, float] = {}
        self._ixp_primary_facility: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> World:
        """Generate and validate a world."""
        cities = list(WORLD_CITIES)
        self._build_facilities(cities)
        self._build_ixps(cities)
        self._build_ases(cities)
        self._build_resellers()
        self._build_relationships()
        self._build_memberships()
        self._ensure_home_routers()
        self._build_transit_interconnects()
        self._build_backbone_interfaces()
        self._build_private_links()
        self._build_routed_prefixes()
        self._world.reindex()
        self._world.validate()
        return self._world

    # ------------------------------------------------------------------ #
    # Facilities
    # ------------------------------------------------------------------ #
    def _build_facilities(self, cities: list[City]) -> None:
        counter = 0
        for index, city in enumerate(cities):
            if index < self.config.n_major_markets:
                low, high = self.config.facilities_per_major_city
            else:
                low, high = self.config.facilities_per_minor_city
            count = self._rng.randint(low, high)
            for slot in range(count):
                counter += 1
                facility_id = f"fac-{counter:04d}"
                operator = self._rng.choice(_FACILITY_OPERATORS)
                location = offset_point(
                    city.location,
                    distance_km=self._rng.uniform(1.0, 22.0),
                    bearing_deg=self._rng.uniform(0.0, 360.0),
                )
                facility = Facility(
                    facility_id=facility_id,
                    name=f"{operator} {city.name} {slot + 1}",
                    city=city.name,
                    country=city.country,
                    location=location,
                    operator=operator,
                )
                self._world.facilities[facility_id] = facility
                self._facilities_by_city[city.name].append(facility_id)

    # ------------------------------------------------------------------ #
    # IXPs
    # ------------------------------------------------------------------ #
    def _ixp_target_size(self, rank: int) -> int:
        raw = self.config.largest_ixp_members * (rank + 1) ** (-self.config.ixp_size_decay)
        return max(self.config.smallest_ixp_members, int(round(raw)))

    def _build_ixps(self, cities: list[City]) -> None:
        config = self.config
        wide_area_count = max(1, round(config.wide_area_ixp_fraction * config.n_ixps))
        # Wide-area IXPs: spread across ranks but guarantee presence among the
        # larger exchanges (the paper finds 20% of the top-50 are wide-area).
        candidate_ranks = list(range(2, config.n_ixps))
        self._rng.shuffle(candidate_ranks)
        wide_area_ranks = set(candidate_ranks[:wide_area_count])
        large_ranks = set(range(2, max(3, config.n_ixps // 3)))
        if not wide_area_ranks & large_ranks:
            # Guarantee at least one wide-area IXP among the larger exchanges
            # (the paper finds 20% of the top-50 to be wide-area) by swapping
            # one of the selected ranks rather than growing the set.
            smallest_selected = max(wide_area_ranks) if wide_area_ranks else None
            if smallest_selected is not None:
                wide_area_ranks.discard(smallest_selected)
            wide_area_ranks.add(min(large_ranks))

        reseller_disallowed_count = round(config.reseller_disallowed_fraction * config.n_ixps)
        disallowed_ranks = set(
            self._rng.sample(range(2, config.n_ixps), k=min(reseller_disallowed_count,
                                                            max(0, config.n_ixps - 2)))
        )

        for rank in range(config.n_ixps):
            city = cities[rank % len(cities)]
            ixp_id = f"ixp-{rank:03d}"
            size = self._ixp_target_size(rank)
            suffix = "" if rank < len(cities) else f" {rank // len(cities) + 1}"
            name = f"{city.name.upper().replace(' ', '')}-IX{suffix}"

            home_facilities = self._facilities_by_city[city.name]
            n_home = min(len(home_facilities), 1 + size // 60 + self._rng.randint(0, 2))
            facility_ids = set(self._rng.sample(home_facilities, k=max(1, n_home)))

            if rank in wide_area_ranks:
                extra_low, extra_high = config.wide_area_extra_cities
                n_extra_cities = self._rng.randint(extra_low, extra_high)
                other_cities = [c for c in cities if c.name != city.name]
                for extra_city in self._rng.sample(other_cities, k=min(n_extra_cities,
                                                                       len(other_cities))):
                    pool = self._facilities_by_city[extra_city.name]
                    if pool:
                        facility_ids.add(self._rng.choice(pool))

            min_capacity = CAPACITY_10GE if self._rng.random() < 0.08 else CAPACITY_GE
            allows_resellers = rank not in disallowed_ranks

            peering_lan = self._plan.allocate_peering_lan(ixp_id, expected_members=size + 8)
            ixp = IXP(
                ixp_id=ixp_id,
                name=name,
                city=city.name,
                country=city.country,
                peering_lan=str(peering_lan),
                facility_ids=facility_ids,
                min_physical_capacity_mbps=min_capacity,
                allows_resellers=allows_resellers,
                route_server_ip=self._plan.allocate_member_interface(ixp_id),
            )
            self._world.ixps[ixp_id] = ixp
            self._ixp_sizes[ixp_id] = size
            home_pool = sorted(facility_ids & set(home_facilities))
            self._ixp_primary_facility[ixp_id] = home_pool[0] if home_pool else sorted(facility_ids)[0]

            if rank < 2:
                remote_fraction = config.largest_ixp_remote_fraction
            elif not allows_resellers:
                remote_fraction = config.no_reseller_remote_fraction
            else:
                remote_fraction = min(
                    0.95, max(0.05, self._rng.gauss(config.base_remote_fraction, 0.05))
                )
            self._ixp_remote_fraction[ixp_id] = remote_fraction

        # Federations: pair up IXPs located in different cities.
        ixp_ids = sorted(self._world.ixps)
        federation_candidates = [i for i in ixp_ids if i not in ("ixp-000", "ixp-001")]
        self._rng.shuffle(federation_candidates)
        for pair_index in range(self.config.federation_pairs):
            if len(federation_candidates) < 2:
                break
            first = federation_candidates.pop()
            second = next(
                (c for c in federation_candidates
                 if self._world.ixps[c].city != self._world.ixps[first].city),
                None,
            )
            if second is None:
                continue
            federation_candidates.remove(second)
            federation_id = f"fed-{pair_index}"
            self._world.ixps[first].federation_id = federation_id
            self._world.ixps[second].federation_id = federation_id

    # ------------------------------------------------------------------ #
    # ASes
    # ------------------------------------------------------------------ #
    def _build_ases(self, cities: list[City]) -> None:
        config = self.config
        n_tier1 = max(3, round(config.tier1_fraction * config.n_ases))
        n_tier2 = max(10, round(config.tier2_fraction * config.n_ases))
        city_weights = [1.0 / (c.population_rank ** 0.45) for c in cities]

        for index in range(config.n_ases):
            asn = _BASE_ASN + index
            if index < n_tier1:
                tier = 1
            elif index < n_tier1 + n_tier2:
                tier = 2
            else:
                tier = 3
            home_city = self._rng.choices(cities, weights=city_weights, k=1)[0]
            home_pool = self._facilities_by_city[home_city.name]
            home_facility = self._rng.choice(home_pool)
            facility_ids = {home_facility}

            if tier == 1:
                extra = self._rng.randint(10, 28)
            elif tier == 2:
                extra = self._rng.randint(2, 7)
            else:
                roll = self._rng.random()
                if roll < 0.60:
                    extra = 0
                elif roll < 0.95:
                    extra = self._rng.randint(1, 2)
                else:
                    extra = self._rng.randint(3, 9)
            if extra:
                all_facilities = list(self._world.facilities)
                facility_ids.update(self._rng.sample(all_facilities,
                                                     k=min(extra, len(all_facilities))))

            traffic_level = self._sample_traffic_level(tier)
            user_population = self._sample_user_population(tier)
            prefix_count = {1: self._rng.randint(20, 60),
                            2: self._rng.randint(4, 18),
                            3: self._rng.randint(1, 4)}[tier]
            self._world.ases[asn] = AutonomousSystem(
                asn=asn,
                name=f"AS{asn}-NET",
                country=home_city.country,
                headquarters_city=home_city.name,
                facility_ids=facility_ids,
                tier=tier,
                traffic_level=traffic_level,
                user_population=user_population,
                prefix_count=prefix_count,
            )

    def _sample_traffic_level(self, tier: int) -> TrafficLevel:
        if tier == 1:
            return self._rng.choice([TrafficLevel.GBPS_1000, TrafficLevel.TBPS_PLUS])
        if tier == 2:
            return self._rng.choice(
                [TrafficLevel.GBPS_10, TrafficLevel.GBPS_100, TrafficLevel.GBPS_100]
            )
        return self._rng.choices(
            [
                TrafficLevel.MBPS_100,
                TrafficLevel.MBPS_1000,
                TrafficLevel.GBPS_5,
                TrafficLevel.GBPS_10,
            ],
            weights=[0.25, 0.40, 0.25, 0.10],
            k=1,
        )[0]

    def _sample_user_population(self, tier: int) -> int:
        scale = {1: 4_000_000, 2: 600_000, 3: 60_000}[tier]
        return int(self._rng.lognormvariate(0.0, 1.0) * scale)

    # ------------------------------------------------------------------ #
    # Resellers
    # ------------------------------------------------------------------ #
    def _build_resellers(self) -> None:
        reseller_allowing = [i for i, x in self._world.ixps.items() if x.allows_resellers]
        all_facilities = list(self._world.facilities)
        assigned_ixps: dict[str, set[str]] = defaultdict(set)

        for index in range(self.config.n_resellers):
            reseller_id = f"rsl-{index:02d}"
            carrier_asn = _RESELLER_BASE_ASN + index
            name = _RESELLER_NAMES[index % len(_RESELLER_NAMES)]
            n_facilities = self._rng.randint(15, min(60, len(all_facilities)))
            facility_ids = set(self._rng.sample(all_facilities, k=n_facilities))
            served = set(
                self._rng.sample(
                    reseller_allowing,
                    k=min(len(reseller_allowing), self._rng.randint(5, 20)),
                )
            )
            # The carrier network behind the reseller.
            home_facility = sorted(facility_ids)[0]
            home = self._world.facilities[home_facility]
            self._world.ases[carrier_asn] = AutonomousSystem(
                asn=carrier_asn,
                name=f"{name} Carrier",
                country=home.country,
                headquarters_city=home.city,
                facility_ids=set(facility_ids),
                tier=2,
                traffic_level=TrafficLevel.GBPS_100,
                user_population=0,
                prefix_count=self._rng.randint(2, 8),
                is_reseller_carrier=True,
            )
            self._world.resellers[reseller_id] = PortReseller(
                reseller_id=reseller_id,
                name=name,
                carrier_asn=carrier_asn,
                facility_ids=frozenset(facility_ids),
                served_ixp_ids=frozenset(served),
            )
            assigned_ixps[reseller_id] = served

        # Every reseller-allowing IXP must be served by at least one reseller.
        reseller_ids = sorted(self._world.resellers)
        for ixp_id in reseller_allowing:
            if not any(ixp_id in self._world.resellers[r].served_ixp_ids for r in reseller_ids):
                chosen = self._rng.choice(reseller_ids)
                reseller = self._world.resellers[chosen]
                self._world.resellers[chosen] = PortReseller(
                    reseller_id=reseller.reseller_id,
                    name=reseller.name,
                    carrier_asn=reseller.carrier_asn,
                    facility_ids=reseller.facility_ids,
                    served_ixp_ids=frozenset(set(reseller.served_ixp_ids) | {ixp_id}),
                )

    # ------------------------------------------------------------------ #
    # Relationships
    # ------------------------------------------------------------------ #
    def _build_relationships(self) -> None:
        graph = self._world.relationships
        tiers: dict[int, list[int]] = {1: [], 2: [], 3: []}
        for asn, system in self._world.ases.items():
            graph.add_asn(asn)
            tiers[system.tier].append(asn)

        tier1, tier2, tier3 = tiers[1], tiers[2], tiers[3]
        # Tier-1 mesh.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                graph.add_peering(a, b)
        # Tier-2 buy transit from tier-1, with regional preference.
        for asn in tier2:
            providers = self._pick_providers(asn, tier1, count=self._rng.randint(1, 3))
            for provider in providers:
                graph.add_customer_provider(customer=asn, provider=provider)
        # Some tier-2 peer among themselves.
        for asn in tier2:
            if self._rng.random() < 0.35 and len(tier2) > 1:
                other = self._rng.choice(tier2)
                if other != asn:
                    graph.add_peering(asn, other)
        # Tier-3 buy transit from tier-2 (regional preference), occasionally tier-1.
        for asn in tier3:
            pool = tier2 if self._rng.random() < 0.92 else tier1
            providers = self._pick_providers(asn, pool, count=self._rng.randint(1, 3))
            for provider in providers:
                graph.add_customer_provider(customer=asn, provider=provider)

    def _pick_providers(self, asn: int, pool: list[int], count: int) -> list[int]:
        system = self._world.ases[asn]
        region = region_for_country(system.country)
        regional = [p for p in pool
                    if region_for_country(self._world.ases[p].country) is region and p != asn]
        candidates = regional if len(regional) >= count else [p for p in pool if p != asn]
        if not candidates:
            return []
        return self._rng.sample(candidates, k=min(count, len(candidates)))

    # ------------------------------------------------------------------ #
    # Memberships
    # ------------------------------------------------------------------ #
    def _build_memberships(self) -> None:
        for ixp_id in sorted(self._ixp_sizes, key=lambda i: -self._ixp_sizes[i]):
            self._build_memberships_for_ixp(ixp_id)

    def _build_memberships_for_ixp(self, ixp_id: str) -> None:
        ixp = self._world.ixps[ixp_id]
        size = self._ixp_sizes[ixp_id]
        remote_fraction = self._ixp_remote_fraction[ixp_id]
        n_remote = round(size * remote_fraction)
        n_local = size - n_remote
        primary_location = self._world.facility_location(self._ixp_primary_facility[ixp_id])

        already_member = {m.asn for m in self._world.members_of(ixp_id)}
        candidate_asns = [
            asn for asn, system in self._world.ases.items()
            if not system.is_reseller_carrier and asn not in already_member
        ]

        distances: dict[int, float] = {}
        home_facilities: dict[int, str] = {}
        for asn in candidate_asns:
            home_facility = sorted(self._world.ases[asn].facility_ids)[0]
            home_facilities[asn] = home_facility
            distances[asn] = geodesic_distance_km(
                self._world.facility_location(home_facility), primary_location
            )

        local_plans = self._plan_local_members(ixp, candidate_asns, distances, n_local)
        chosen_local = {plan.asn for plan in local_plans}
        remaining = [asn for asn in candidate_asns if asn not in chosen_local]
        remote_plans = self._plan_remote_members(ixp, remaining, distances, home_facilities,
                                                 n_remote)

        for plan in local_plans + remote_plans:
            self._materialise_membership(plan)

        self._build_departed_memberships(ixp, candidate_asns,
                                         chosen_local | {p.asn for p in remote_plans})

    def _weighted_sample_asns(self, candidates: list[int], count: int) -> list[int]:
        """Sample ASNs without replacement, favouring larger networks."""
        if count <= 0 or not candidates:
            return []
        weights = {1: 7.0, 2: 3.0, 3: 1.0}
        pool = list(candidates)
        chosen: list[int] = []
        while pool and len(chosen) < count:
            pool_weights = [weights[self._world.ases[asn].tier] for asn in pool]
            pick = self._rng.choices(pool, weights=pool_weights, k=1)[0]
            pool.remove(pick)
            chosen.append(pick)
        return chosen

    def _plan_local_members(
        self,
        ixp: IXP,
        candidates: list[int],
        distances: dict[int, float],
        n_local: int,
    ) -> list[_MembershipPlan]:
        # Prefer ASes already colocated with the IXP, then ASes in the metro,
        # then anyone in the same country/region (they will be colocated).
        colocated = [a for a in candidates if self._world.ases[a].facility_ids & ixp.facility_ids]
        nearby = [a for a in candidates if a not in set(colocated) and distances[a] <= 50.0]
        rest = [a for a in candidates if a not in set(colocated) and a not in set(nearby)]
        same_country = [a for a in rest if self._world.ases[a].country == ixp.country]

        chosen: list[int] = []
        for pool in (colocated, nearby, same_country, rest):
            if len(chosen) >= n_local:
                break
            chosen.extend(self._weighted_sample_asns(
                [a for a in pool if a not in set(chosen)], n_local - len(chosen)))

        plans: list[_MembershipPlan] = []
        for asn in chosen[:n_local]:
            system = self._world.ases[asn]
            shared = sorted(system.facility_ids & ixp.facility_ids)
            if shared:
                member_facility = self._rng.choice(shared)
            else:
                member_facility = self._rng.choice(sorted(ixp.facility_ids))
                system.facility_ids.add(member_facility)
            plans.append(
                _MembershipPlan(
                    ixp_id=ixp.ixp_id,
                    asn=asn,
                    connection=ConnectionKind.LOCAL,
                    member_facility_id=member_facility,
                    port_capacity_mbps=self._sample_local_capacity(ixp),
                    reseller_id=None,
                    joined_month=self._sample_join_month(self.config.local_join_spread),
                    departed_month=None,
                )
            )
        return plans

    def _plan_remote_members(
        self,
        ixp: IXP,
        candidates: list[int],
        distances: dict[int, float],
        home_facilities: dict[int, str],
        n_remote: int,
    ) -> list[_MembershipPlan]:
        config = self.config
        n_same_metro = round(n_remote * config.remote_same_metro_fraction)
        n_regional = round(n_remote * config.remote_regional_fraction)
        n_far = max(0, n_remote - n_same_metro - n_regional)

        same_metro_pool = [a for a in candidates if distances[a] <= 80.0]
        regional_pool = [a for a in candidates if 100.0 < distances[a] <= 1_000.0]
        far_pool = [a for a in candidates if distances[a] > 1_000.0]

        chosen: list[tuple[int, str]] = []
        used: set[int] = set()
        metro_overrides: dict[int, str] = {}
        for pool, count, band in (
            (same_metro_pool, n_same_metro, "metro"),
            (regional_pool, n_regional, "regional"),
            (far_pool, n_far, "far"),
        ):
            picks = self._weighted_sample_asns([a for a in pool if a not in used], count)
            used.update(picks)
            chosen.extend((asn, band) for asn in picks)
            if band == "metro" and len(picks) < count:
                # Not enough networks are naturally homed near this IXP: pull
                # in far-away networks and give them a metro point of presence
                # outside the IXP's own facilities, so the calibrated share of
                # nearby-but-remote peers (Fig. 1b) is preserved.
                nearby = [f for f in self._facilities_by_city.get(ixp.city, [])
                          if f not in ixp.facility_ids]
                if nearby:
                    extra = self._weighted_sample_asns(
                        [a for a in candidates if a not in used], count - len(picks))
                    for asn in extra:
                        facility = self._rng.choice(nearby)
                        metro_overrides[asn] = facility
                        self._world.ases[asn].facility_ids.add(facility)
                    used.update(extra)
                    chosen.extend((asn, "metro") for asn in extra)
        # Top up from any remaining candidate if a band ran dry.
        if len(chosen) < n_remote:
            extra = self._weighted_sample_asns(
                [a for a in candidates if a not in used], n_remote - len(chosen))
            chosen.extend((asn, "far") for asn in extra)

        plans: list[_MembershipPlan] = []
        for asn, band in chosen[:n_remote]:
            preferred = metro_overrides.get(asn, home_facilities.get(asn))
            plans.append(
                self._plan_one_remote_member(ixp, asn, band, preferred_facility=preferred)
            )
        return plans

    def _plan_one_remote_member(
        self,
        ixp: IXP,
        asn: int,
        band: str,
        preferred_facility: str | None = None,
    ) -> _MembershipPlan:
        config = self.config
        system = self._world.ases[asn]
        connection = self._sample_remote_connection(ixp)
        reseller_id = None
        if connection is ConnectionKind.REMOTE_RESELLER:
            reseller_id = self._pick_reseller_for(ixp.ixp_id)
            if reseller_id is None:
                connection = ConnectionKind.REMOTE_LONG_CABLE

        member_facility: str
        colocated_reseller = (
            connection is ConnectionKind.REMOTE_RESELLER
            and self._rng.random() < config.remote_colocated_reseller_fraction
        )
        if colocated_reseller:
            # Reseller customer whose router actually sits in an IXP facility
            # (buys a cheaper fractional port through the reseller).
            member_facility = self._rng.choice(sorted(ixp.facility_ids))
            system.facility_ids.add(member_facility)
        elif preferred_facility is not None and preferred_facility not in ixp.facility_ids:
            # Keep the router at the facility whose distance placed this AS in
            # its distance band, so the RTT mix matches the calibration target.
            member_facility = preferred_facility
        else:
            own_facilities = sorted(system.facility_ids - ixp.facility_ids)
            if not own_facilities:
                # Give the AS a point of presence outside the IXP footprint.
                candidates = [f for f in self._world.facilities if f not in ixp.facility_ids]
                member_facility = self._rng.choice(candidates)
                system.facility_ids.add(member_facility)
            else:
                member_facility = own_facilities[0]

        capacity = self._sample_remote_capacity(ixp, connection)
        return _MembershipPlan(
            ixp_id=ixp.ixp_id,
            asn=asn,
            connection=connection,
            member_facility_id=member_facility,
            port_capacity_mbps=capacity,
            reseller_id=reseller_id,
            joined_month=self._sample_join_month(config.remote_join_spread),
            departed_month=None,
        )

    def _sample_remote_connection(self, ixp: IXP) -> ConnectionKind:
        config = self.config
        roll = self._rng.random()
        if ixp.allows_resellers:
            if roll < config.reseller_share_of_remote:
                return ConnectionKind.REMOTE_RESELLER
            if ixp.federation_id is not None and roll < (
                config.reseller_share_of_remote + config.federation_share_of_remote
            ):
                return ConnectionKind.REMOTE_FEDERATION
            return ConnectionKind.REMOTE_LONG_CABLE
        if ixp.federation_id is not None and roll < 0.15:
            return ConnectionKind.REMOTE_FEDERATION
        return ConnectionKind.REMOTE_LONG_CABLE

    def _pick_reseller_for(self, ixp_id: str) -> str | None:
        serving = [r for r in sorted(self._world.resellers)
                   if ixp_id in self._world.resellers[r].served_ixp_ids]
        if not serving:
            return None
        return self._rng.choice(serving)

    def _sample_local_capacity(self, ixp: IXP) -> int:
        options = [c for c in (CAPACITY_GE, CAPACITY_10GE, CAPACITY_40GE, CAPACITY_100GE)
                   if c >= ixp.min_physical_capacity_mbps]
        weights_map = {CAPACITY_GE: 0.45, CAPACITY_10GE: 0.41, CAPACITY_40GE: 0.04,
                       CAPACITY_100GE: 0.10}
        weights = [weights_map[c] for c in options]
        return self._rng.choices(options, weights=weights, k=1)[0]

    def _sample_remote_capacity(self, ixp: IXP, connection: ConnectionKind) -> int:
        if connection is ConnectionKind.REMOTE_RESELLER:
            if self._rng.random() < self.config.fractional_port_share_of_reseller:
                return self._rng.choice(list(FRACTIONAL_CAPACITIES))
            return self._rng.choices(
                [max(CAPACITY_GE, ixp.min_physical_capacity_mbps), CAPACITY_10GE],
                weights=[0.75, 0.25], k=1)[0]
        options = [c for c in (CAPACITY_GE, CAPACITY_10GE, CAPACITY_40GE)
                   if c >= ixp.min_physical_capacity_mbps]
        weights_map = {CAPACITY_GE: 0.55, CAPACITY_10GE: 0.40, CAPACITY_40GE: 0.05}
        return self._rng.choices(options, weights=[weights_map[c] for c in options], k=1)[0]

    def _sample_join_month(self, spread: float) -> int:
        if self.config.months <= 1 or self._rng.random() >= spread:
            return 0
        return self._rng.randint(1, self.config.months - 1)

    def _build_departed_memberships(
        self,
        ixp: IXP,
        candidates: list[int],
        already_chosen: set[int],
    ) -> None:
        """Add historical memberships that left the IXP inside the window."""
        config = self.config
        if config.months <= 1:
            return
        size = self._ixp_sizes[ixp.ixp_id]
        remote_fraction = self._ixp_remote_fraction[ixp.ixp_id]
        n_local_departed = round(config.local_departure_rate * size * (1 - remote_fraction))
        n_remote_departed = round(config.remote_departure_rate * size * remote_fraction)
        free = [a for a in candidates if a not in already_chosen]
        if not free:
            return

        local_picks = self._weighted_sample_asns(free, n_local_departed)
        remaining = [a for a in free if a not in set(local_picks)]
        remote_picks = self._weighted_sample_asns(remaining, n_remote_departed)

        for asn in local_picks:
            system = self._world.ases[asn]
            member_facility = self._rng.choice(sorted(ixp.facility_ids))
            system.facility_ids.add(member_facility)
            self._materialise_membership(_MembershipPlan(
                ixp_id=ixp.ixp_id,
                asn=asn,
                connection=ConnectionKind.LOCAL,
                member_facility_id=member_facility,
                port_capacity_mbps=self._sample_local_capacity(ixp),
                reseller_id=None,
                joined_month=0,
                departed_month=self._rng.randint(1, config.months - 1),
            ))
        for asn in remote_picks:
            plan = self._plan_one_remote_member(ixp, asn, band="far")
            plan.joined_month = 0
            plan.departed_month = self._rng.randint(1, config.months - 1)
            self._materialise_membership(plan)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def _router_for(self, asn: int, facility_id: str) -> Router:
        key = (asn, facility_id)
        if key in self._router_by_as_facility:
            return self._world.routers[self._router_by_as_facility[key]]
        self._router_counter += 1
        router_id = f"rtr-{self._router_counter:06d}"
        router = Router(router_id=router_id, asn=asn, facility_id=facility_id)
        self._world.routers[router_id] = router
        self._router_by_as_facility[key] = router_id
        return router

    def _materialise_membership(self, plan: _MembershipPlan) -> None:
        router = self._router_for(plan.asn, plan.member_facility_id)
        interface_ip = self._plan.allocate_member_interface(plan.ixp_id)
        router.add_interface(interface_ip)
        self._world.interfaces[interface_ip] = Interface(
            ip=interface_ip,
            asn=plan.asn,
            router_id=router.router_id,
            kind=InterfaceKind.IXP_LAN,
            ixp_id=plan.ixp_id,
        )
        membership = IXPMembership(
            ixp_id=plan.ixp_id,
            asn=plan.asn,
            interface_ip=interface_ip,
            router_id=router.router_id,
            member_facility_id=plan.member_facility_id,
            connection=plan.connection,
            port_capacity_mbps=plan.port_capacity_mbps,
            reseller_id=plan.reseller_id,
            joined_month=plan.joined_month,
            departed_month=plan.departed_month,
        )
        self._world.add_membership(membership)

    # ------------------------------------------------------------------ #
    # Backbone interfaces, private links, prefixes
    # ------------------------------------------------------------------ #
    def _ensure_home_routers(self) -> None:
        """Give every AS at least one router (at its home facility).

        Non-member ASes still appear in traceroute paths (as transit hops,
        private-peering neighbours or destinations), so they need routers and
        interfaces too.
        """
        self._world.reindex()
        for asn in sorted(self._world.ases):
            if self._world.routers_of_as(asn):
                continue
            home_facility = sorted(self._world.ases[asn].facility_ids)[0]
            self._router_for(asn, home_facility)

    def _build_transit_interconnects(self) -> None:
        """Realise every customer/provider relationship as a facility cross-connect.

        Transit interconnections are physically established where the customer
        is present (typically the carrier hotel hosting its main point of
        presence); the provider deploys or extends a PoP there.  This is the
        colocation correlation that makes private-connectivity localisation
        (Step 5 of the paper) work, so the ground truth must exhibit it.
        """
        self._world.reindex()
        preferred_facility: dict[int, str] = {}
        for membership in self._world.memberships:
            if membership.departed_month is None:
                preferred_facility.setdefault(membership.asn, membership.member_facility_id)

        for customer in sorted(self._world.ases):
            system = self._world.ases[customer]
            if system.is_reseller_carrier:
                continue
            facility_id = preferred_facility.get(
                customer, sorted(system.facility_ids)[0] if system.facility_ids else None)
            if facility_id is None:
                continue
            for provider in sorted(self._world.relationships.providers_of(customer)):
                provider_system = self._world.ases.get(provider)
                if provider_system is None:
                    continue
                provider_system.facility_ids.add(facility_id)
                customer_router = self._router_for(customer, facility_id)
                provider_router = self._router_for(provider, facility_id)
                ip_customer = self._plan.allocate_infrastructure_ip(customer)
                ip_provider = self._plan.allocate_infrastructure_ip(provider)
                customer_router.add_interface(ip_customer)
                provider_router.add_interface(ip_provider)
                self._world.interfaces[ip_customer] = Interface(
                    ip=ip_customer, asn=customer, router_id=customer_router.router_id,
                    kind=InterfaceKind.PRIVATE_PEERING)
                self._world.interfaces[ip_provider] = Interface(
                    ip=ip_provider, asn=provider, router_id=provider_router.router_id,
                    kind=InterfaceKind.PRIVATE_PEERING)
                self._world.private_links.append(PrivateLink(
                    facility_id=facility_id,
                    asn_a=customer,
                    asn_b=provider,
                    interface_a=ip_customer,
                    interface_b=ip_provider,
                    router_a=customer_router.router_id,
                    router_b=provider_router.router_id,
                ))
        self._world.reindex()

    def _build_backbone_interfaces(self) -> None:
        low, high = self.config.backbone_interfaces_per_router
        for router in self._world.routers.values():
            for _ in range(self._rng.randint(low, high)):
                ip = self._plan.allocate_infrastructure_ip(router.asn)
                router.add_interface(ip)
                self._world.interfaces[ip] = Interface(
                    ip=ip,
                    asn=router.asn,
                    router_id=router.router_id,
                    kind=InterfaceKind.BACKBONE,
                )

    def _build_private_links(self) -> None:
        config = self.config
        links_per_as: dict[int, int] = defaultdict(int)
        routers_by_facility: dict[str, list[Router]] = defaultdict(list)
        for router in self._world.routers.values():
            routers_by_facility[router.facility_id].append(router)

        for facility_id in sorted(routers_by_facility):
            routers = routers_by_facility[facility_id]
            by_asn: dict[int, Router] = {}
            for router in routers:
                by_asn.setdefault(router.asn, router)
            asns = sorted(by_asn)
            if len(asns) < 2:
                continue
            pairs = [(a, b) for i, a in enumerate(asns) for b in asns[i + 1:]]
            if len(pairs) > 400:
                pairs = self._rng.sample(pairs, k=400)
            for asn_a, asn_b in pairs:
                if self._rng.random() >= config.private_link_probability:
                    continue
                if (links_per_as[asn_a] >= config.max_private_links_per_as
                        or links_per_as[asn_b] >= config.max_private_links_per_as):
                    continue
                router_a, router_b = by_asn[asn_a], by_asn[asn_b]
                ip_a = self._plan.allocate_infrastructure_ip(asn_a)
                ip_b = self._plan.allocate_infrastructure_ip(asn_b)
                router_a.add_interface(ip_a)
                router_b.add_interface(ip_b)
                self._world.interfaces[ip_a] = Interface(
                    ip=ip_a, asn=asn_a, router_id=router_a.router_id,
                    kind=InterfaceKind.PRIVATE_PEERING)
                self._world.interfaces[ip_b] = Interface(
                    ip=ip_b, asn=asn_b, router_id=router_b.router_id,
                    kind=InterfaceKind.PRIVATE_PEERING)
                self._world.private_links.append(PrivateLink(
                    facility_id=facility_id,
                    asn_a=asn_a,
                    asn_b=asn_b,
                    interface_a=ip_a,
                    interface_b=ip_b,
                    router_a=router_a.router_id,
                    router_b=router_b.router_id,
                ))
                self._world.relationships.add_peering(asn_a, asn_b)
                links_per_as[asn_a] += 1
                links_per_as[asn_b] += 1

    def _build_routed_prefixes(self) -> None:
        for asn in sorted(self._world.ases):
            system = self._world.ases[asn]
            for _ in range(system.prefix_count):
                prefix = self._plan.allocate_routed_prefix(asn)
                self._world.routed_prefixes[str(prefix)] = asn
        for asn, block in self._plan.infrastructure_blocks().items():
            self._world.infrastructure_prefixes[str(block)] = asn

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests
    # ------------------------------------------------------------------ #
    def planned_remote_fraction(self, ixp_id: str) -> float:
        """The remote fraction the generator targeted for one IXP."""
        if ixp_id not in self._ixp_remote_fraction:
            raise TopologyError(f"unknown IXP {ixp_id!r}")
        return self._ixp_remote_fraction[ixp_id]
