"""Ground-truth Internet/IXP topology substrate.

The paper measures the real Internet; this reproduction synthesises a
ground-truth *world* with the same structure — colocation facilities with
geographic coordinates, IXPs (including wide-area IXPs and federations),
autonomous systems with points of presence, routers and interfaces, port
resellers, and IXP memberships labelled local or remote — and then lets every
other layer (data sources, measurements, inference) observe that world only
through realistic, noisy views.

Modules
-------
* :mod:`repro.topology.entities` — the dataclasses describing the world.
* :mod:`repro.topology.addressing` — IPv4 allocation for peering LANs,
  backbone interfaces and advertised prefixes.
* :mod:`repro.topology.world` — the :class:`~repro.topology.world.World`
  container with lookup helpers and invariant checking.
* :mod:`repro.topology.relationships` — AS business relationships and
  customer-cone computation (the CAIDA-style substrate of Section 6.2).
* :mod:`repro.topology.generator` — the seeded synthetic world generator.
* :mod:`repro.topology.evolution` — longitudinal evolution of IXP membership
  (new members joining, old members leaving) used by Section 6.3.
"""

from repro.topology.entities import (
    AutonomousSystem,
    ConnectionKind,
    Facility,
    Interface,
    InterfaceKind,
    IXP,
    IXPMembership,
    PortReseller,
    Router,
    TrafficLevel,
)
from repro.topology.world import World
from repro.topology.generator import WorldGenerator
from repro.topology.relationships import ASRelationshipGraph, Relationship

__all__ = [
    "AutonomousSystem",
    "ConnectionKind",
    "Facility",
    "Interface",
    "InterfaceKind",
    "IXP",
    "IXPMembership",
    "PortReseller",
    "Router",
    "TrafficLevel",
    "World",
    "WorldGenerator",
    "ASRelationshipGraph",
    "Relationship",
]
