"""IPv4 address allocation for the synthetic world.

Three address pools are carved out of documentation/benchmark space so they
never collide with each other:

* **IXP peering LANs** — one prefix per IXP (a /22 for the largest exchanges,
  a /24 for small ones), from which member interfaces and the route server
  are assigned.
* **Backbone / private-peering interfaces** — per-AS infrastructure addresses
  used on traceroute hops inside an AS or across private interconnections.
* **Advertised prefixes** — the routed address space each AS originates,
  used as traceroute/ping destinations by the routing layer.

The allocator is deliberately simple and fully deterministic: identical
generator seeds always yield identical addressing, which keeps every
experiment reproducible bit-for-bit.
"""

from __future__ import annotations

import ipaddress
from ipaddress import IPv4Address, IPv4Network

from repro.exceptions import AddressingError


class PrefixPool:
    """Sequentially allocates sub-prefixes out of one covering supernet."""

    def __init__(self, supernet: str) -> None:
        self.supernet = ipaddress.ip_network(supernet)
        self._cursor = int(self.supernet.network_address)

    def allocate(self, prefix_length: int) -> IPv4Network:
        """Allocate the next available prefix of the requested length.

        Raises
        ------
        AddressingError
            If the pool is exhausted or the requested length does not fit.
        """
        if prefix_length < self.supernet.prefixlen or prefix_length > 32:
            raise AddressingError(
                f"cannot allocate /{prefix_length} out of {self.supernet}"
            )
        block_size = 2 ** (32 - prefix_length)
        # Align the cursor on the block size.
        offset = self._cursor - int(self.supernet.network_address)
        if offset % block_size:
            self._cursor += block_size - (offset % block_size)
        end = int(self.supernet.broadcast_address) + 1
        if self._cursor + block_size > end:
            raise AddressingError(f"prefix pool {self.supernet} exhausted")
        network = ipaddress.ip_network((self._cursor, prefix_length))
        self._cursor += block_size
        return network

    @property
    def remaining_addresses(self) -> int:
        """Number of addresses not yet handed out."""
        return int(self.supernet.broadcast_address) + 1 - self._cursor


class LanAllocator:
    """Hands out host addresses inside one peering LAN."""

    def __init__(self, network: IPv4Network) -> None:
        self.network = network
        self._next_host = int(network.network_address) + 1

    def allocate_host(self) -> str:
        """Return the next free host address as a dotted-quad string."""
        address = IPv4Address(self._next_host)
        if address >= self.network.broadcast_address:
            raise AddressingError(f"peering LAN {self.network} has no free addresses")
        self._next_host += 1
        return str(address)

    @property
    def capacity(self) -> int:
        """Total number of assignable host addresses in the LAN."""
        return self.network.num_addresses - 2


class AddressPlan:
    """World-wide address plan: peering LANs, infrastructure, routed prefixes."""

    #: Supernet used for IXP peering LANs (documentation-ish space).
    IXP_SUPERNET = "185.0.0.0/9"
    #: Supernet used for AS backbone / private-peering interfaces.
    INFRASTRUCTURE_SUPERNET = "5.0.0.0/9"
    #: Supernet used for routed (advertised) prefixes.
    ROUTED_SUPERNET = "100.0.0.0/9"

    def __init__(self) -> None:
        self._ixp_pool = PrefixPool(self.IXP_SUPERNET)
        self._infra_pool = PrefixPool(self.INFRASTRUCTURE_SUPERNET)
        self._routed_pool = PrefixPool(self.ROUTED_SUPERNET)
        self._lan_allocators: dict[str, LanAllocator] = {}
        self._infra_allocators: dict[int, LanAllocator] = {}

    # ------------------------------------------------------------------ #
    # IXP peering LANs
    # ------------------------------------------------------------------ #
    def allocate_peering_lan(self, ixp_id: str, expected_members: int) -> IPv4Network:
        """Allocate a peering LAN sized for the expected number of members."""
        if ixp_id in self._lan_allocators:
            raise AddressingError(f"peering LAN for {ixp_id} already allocated")
        # Reserve head-room: route server, growth, unused addresses.
        needed = max(8, expected_members * 2 + 4)
        prefix_length = 32
        while 2**(32 - prefix_length) - 2 < needed:
            prefix_length -= 1
        network = self._ixp_pool.allocate(prefix_length)
        self._lan_allocators[ixp_id] = LanAllocator(network)
        return network

    def allocate_member_interface(self, ixp_id: str) -> str:
        """Allocate one member (or route-server) address inside an IXP LAN."""
        if ixp_id not in self._lan_allocators:
            raise AddressingError(f"no peering LAN allocated for {ixp_id}")
        return self._lan_allocators[ixp_id].allocate_host()

    # ------------------------------------------------------------------ #
    # AS infrastructure addresses
    # ------------------------------------------------------------------ #
    def allocate_infrastructure_block(self, asn: int) -> IPv4Network:
        """Allocate the per-AS block used for backbone/private interfaces."""
        if asn in self._infra_allocators:
            raise AddressingError(f"infrastructure block for AS{asn} already allocated")
        network = self._infra_pool.allocate(22)
        self._infra_allocators[asn] = LanAllocator(network)
        return network

    def allocate_infrastructure_ip(self, asn: int) -> str:
        """Allocate one backbone/private interface address for an AS."""
        if asn not in self._infra_allocators:
            self.allocate_infrastructure_block(asn)
        return self._infra_allocators[asn].allocate_host()

    def infrastructure_blocks(self) -> dict[int, IPv4Network]:
        """Per-AS infrastructure prefixes allocated so far."""
        return {asn: allocator.network for asn, allocator in self._infra_allocators.items()}

    # ------------------------------------------------------------------ #
    # Routed prefixes
    # ------------------------------------------------------------------ #
    def allocate_routed_prefix(self, asn: int) -> IPv4Network:
        """Allocate one /24 that the AS will originate in BGP."""
        del asn  # allocation is global; the caller records ownership
        return self._routed_pool.allocate(24)
