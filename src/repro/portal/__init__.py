"""Portal exports (Section 9 "Prototype and Portal").

The paper publishes monthly snapshots of its inferences and a geographic
visualisation through a web portal.  This package produces the same
artefacts as plain data files:

* :mod:`repro.portal.snapshots` — JSON snapshots of the per-interface
  inferences, one per IXP, with provenance metadata;
* :mod:`repro.portal.geojson` — GeoJSON feature collections of IXP
  facilities and member locations, coloured by inferred peering type.
"""

from repro.portal.snapshots import InferenceSnapshot, SnapshotExporter
from repro.portal.geojson import GeoJSONExporter

__all__ = ["InferenceSnapshot", "SnapshotExporter", "GeoJSONExporter"]
