"""JSON snapshots of the remote-peering inferences (portal backend)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import PipelineOutcome
from repro.datasources.merge import ObservedDataset
from repro.exceptions import ReproError


@dataclass
class InferenceSnapshot:
    """One exportable snapshot of the inferences for a set of IXPs."""

    label: str
    generated_from_seed: int
    ixps: dict[str, dict[str, object]] = field(default_factory=dict)

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the snapshot to JSON."""
        return json.dumps(
            {
                "label": self.label,
                "seed": self.generated_from_seed,
                "ixps": self.ixps,
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceSnapshot":
        """Parse a snapshot previously produced by :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            label=payload["label"],
            generated_from_seed=payload["seed"],
            ixps=payload["ixps"],
        )

    def remote_share(self, ixp_id: str) -> float:
        """Remote share recorded for one IXP."""
        if ixp_id not in self.ixps:
            raise ReproError(f"snapshot has no IXP {ixp_id!r}")
        return float(self.ixps[ixp_id]["remote_share"])


class SnapshotExporter:
    """Builds and writes portal snapshots from pipeline outcomes."""

    def __init__(self, dataset: ObservedDataset, *, seed: int = 0) -> None:
        self.dataset = dataset
        self.seed = seed

    def build(self, outcome: PipelineOutcome, *, label: str = "snapshot") -> InferenceSnapshot:
        """Build a snapshot covering every IXP of the outcome."""
        snapshot = InferenceSnapshot(label=label, generated_from_seed=self.seed)
        for ixp_id in outcome.ixp_ids:
            results = outcome.report.results_for_ixp(ixp_id)
            inferred = [r for r in results if r.is_inferred]
            members = []
            for result in sorted(results, key=lambda r: r.interface_ip):
                members.append(
                    {
                        "interface": result.interface_ip,
                        "asn": result.asn,
                        "classification": result.classification.value,
                        "step": result.step.value if result.step else None,
                    }
                )
            snapshot.ixps[ixp_id] = {
                "interfaces": len(results),
                "inferred": len(inferred),
                "remote_share": outcome.report.remote_share(ixp_id),
                "members": members,
            }
        return snapshot

    def write(self, outcome: PipelineOutcome, path: str | Path, *,
              label: str = "snapshot") -> Path:
        """Write a snapshot to disk and return its path."""
        snapshot = self.build(outcome, label=label)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(snapshot.to_json(), encoding="utf-8")
        return target
