"""GeoJSON export of IXP footprints and member inferences (portal map view)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pipeline import PipelineOutcome
from repro.datasources.merge import ObservedDataset
from repro.exceptions import ReproError


class GeoJSONExporter:
    """Renders the geographic footprint of IXPs and their inferred members."""

    def __init__(self, dataset: ObservedDataset) -> None:
        self.dataset = dataset

    # ------------------------------------------------------------------ #
    def facility_features(self, ixp_id: str) -> list[dict]:
        """Point features for every located facility of one IXP."""
        features = []
        for facility_id in sorted(self.dataset.facilities_of_ixp(ixp_id)):
            location = self.dataset.facility_location(facility_id)
            if location is None:
                continue
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "Point",
                        "coordinates": [location.longitude, location.latitude],
                    },
                    "properties": {"kind": "ixp-facility", "ixp": ixp_id,
                                   "facility": facility_id},
                }
            )
        return features

    def member_features(self, outcome: PipelineOutcome, ixp_id: str) -> list[dict]:
        """Point features for inferred members, located at their observed facilities."""
        features = []
        for result in outcome.report.results_for_ixp(ixp_id):
            if not result.is_inferred:
                continue
            for facility_id in sorted(self.dataset.facilities_of_as(result.asn)):
                location = self.dataset.facility_location(facility_id)
                if location is None:
                    continue
                features.append(
                    {
                        "type": "Feature",
                        "geometry": {
                            "type": "Point",
                            "coordinates": [location.longitude, location.latitude],
                        },
                        "properties": {
                            "kind": "member",
                            "ixp": ixp_id,
                            "asn": result.asn,
                            "classification": result.classification.value,
                            "facility": facility_id,
                        },
                    }
                )
                break  # one representative location per member
        return features

    def feature_collection(self, outcome: PipelineOutcome, ixp_id: str) -> dict:
        """A GeoJSON FeatureCollection for one IXP."""
        if ixp_id not in outcome.ixp_ids:
            raise ReproError(f"the outcome does not cover IXP {ixp_id!r}")
        return {
            "type": "FeatureCollection",
            "features": self.facility_features(ixp_id) + self.member_features(outcome, ixp_id),
        }

    def write(self, outcome: PipelineOutcome, ixp_id: str, path: str | Path) -> Path:
        """Write the FeatureCollection of one IXP to disk."""
        collection = self.feature_collection(outcome, ixp_id)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(collection, indent=2, sort_keys=True), encoding="utf-8")
        return target
