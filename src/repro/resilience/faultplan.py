"""Deterministic fault injection for the engine's executor seam.

A :class:`FaultPlan` maps task digests (:func:`~repro.resilience.policy.
task_digest`) to the faults that should fire at specific attempt numbers:
worker crashes, task exceptions, pickling failures and hangs.  The plan is
immutable and stateless — whether a fault fires is a pure function of
``(digest, attempt)`` — so a chaos run is *replayable*: the same plan over
the same tasks injects the same faults, and the engine's recovery from them
can be pinned bit-for-bit against the fault-free schedule.

The plan rides into worker processes through the pool initializer (it is
plain picklable data) and is consulted by the worker entry point before the
chain computes; in-process executors (thread, serial) consult it through
the same :func:`perform_fault` with ``in_worker=False``, where a "crash"
becomes a raised :class:`~repro.exceptions.WorkerCrashError` and a pickling
fault is a no-op (nothing crosses a pickle).

This module is exempt from contracts rule 5 (determinism), like
``contracts.dynconc`` is exempt from rule 2: its *job* is to call
``os._exit`` and ``time.sleep`` — it IS the injected fault.  The exemption
is sound because every call site is gated on a fault the plan scheduled
deterministically; no step result ever depends on these calls.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, NoReturn, Sequence

from repro.config import InferenceConfig
from repro.exceptions import InferenceError, InjectedFaultError, WorkerCrashError
from repro.resilience.policy import task_digest

#: Exit status an injected crash kills the worker process with.
CRASH_EXIT_CODE = 87


class FaultKind(enum.Enum):
    """The failure modes the harness can inject."""

    #: Kill the worker process outright (``os._exit``); in-process
    #: executors raise :class:`WorkerCrashError` instead.
    CRASH = "crash"
    #: Raise :class:`InjectedFaultError` from the task body.
    EXCEPTION = "exception"
    #: Return a payload whose pickling fails (worker-side only; a no-op
    #: for in-process executors, which never pickle results).
    PICKLE = "pickle"
    #: Sleep ``hang_s`` before computing, long enough to trip the
    #: engine's per-task timeout.
    HANG = "hang"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what fires, and at which attempt numbers.

    ``attempts`` lists the 1-based attempt numbers the fault fires at, so
    a retried task converges once its listed attempts are spent.
    """

    kind: FaultKind
    attempts: tuple[int, ...] = (1,)
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if not self.attempts:
            raise InferenceError("a fault must name at least one attempt")
        for attempt in self.attempts:
            if attempt < 1:
                raise InferenceError(
                    f"attempt numbers start at 1, got {attempt}"
                )
        if self.hang_s <= 0.0:
            raise InferenceError(f"hang_s must be positive, got {self.hang_s!r}")


class _UnpicklablePayload:
    """A worker return value whose pickling deterministically fails."""

    def __init__(self, digest: str, attempt: int) -> None:
        self.digest = digest
        self.attempt = attempt

    def __reduce__(self) -> NoReturn:
        raise InjectedFaultError(
            f"injected pickling failure for task {self.digest[:12]} "
            f"(attempt {self.attempt})"
        )


class FaultPlan:
    """Immutable schedule of injected faults, keyed by task digest.

    Stateless by construction: :meth:`fault_at` is a pure function, so the
    plan can be shared, pickled into workers and replayed without drift.
    """

    def __init__(self, faults: Mapping[str, Sequence[FaultSpec]]) -> None:
        self._faults: dict[str, tuple[FaultSpec, ...]] = {
            digest: tuple(specs) for digest, specs in faults.items()
        }

    @classmethod
    def for_tasks(
        cls, entries: Iterable[tuple[InferenceConfig, str, FaultSpec]]
    ) -> FaultPlan:
        """A plan from ``(config, ixp_id, fault)`` entries (digests derived)."""
        faults: dict[str, list[FaultSpec]] = {}
        for config, ixp_id, spec in entries:
            faults.setdefault(task_digest(config, ixp_id), []).append(spec)
        return cls(faults)

    def fault_at(self, digest: str, attempt: int) -> FaultSpec | None:
        """The fault planned for ``(digest, attempt)``, if any."""
        for spec in self._faults.get(digest, ()):
            if attempt in spec.attempts:
                return spec
        return None

    def __len__(self) -> int:
        return len(self._faults)


def perform_fault(
    plan: FaultPlan,
    digest: str,
    attempt: int,
    *,
    in_worker: bool,
    sleep: Callable[[float], None] = time.sleep,
) -> object | None:
    """Execute the fault planned for ``(digest, attempt)``, if any.

    Returns ``None`` in every surviving path except an in-worker PICKLE
    fault, which returns the poisoned payload for the task to ship (the
    failure then fires in the worker's result pickling, exactly where a
    real unpicklable result would).
    """
    fault = plan.fault_at(digest, attempt)
    if fault is None:
        return None
    if fault.kind is FaultKind.CRASH:
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected worker crash for task {digest[:12]} (attempt {attempt})"
        )
    if fault.kind is FaultKind.EXCEPTION:
        raise InjectedFaultError(
            f"injected task exception for task {digest[:12]} (attempt {attempt})"
        )
    if fault.kind is FaultKind.PICKLE:
        return _UnpicklablePayload(digest, attempt) if in_worker else None
    sleep(fault.hang_s)
    return None
