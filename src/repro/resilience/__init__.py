"""Fault tolerance for the pipeline engine's executor seam.

PR 8 made ``PipelineEngine`` parallel (thread and process executors); this
package gives that seam *failure semantics*, in three deterministic pieces:

* :class:`RetryPolicy` (:mod:`~repro.resilience.policy`) — bounded retries
  per ``(config, ixp_id)`` task with capped exponential backoff whose
  jitter derives from the task digest, not from ``random`` or the clock;
* :class:`ResilienceEvent` / :class:`ResilienceLog`
  (:mod:`~repro.resilience.events`) — the typed journal every recovery
  decision is recorded in, surfaced via ``executor_stats()``;
* :class:`FaultPlan` (:mod:`~repro.resilience.faultplan`) — a replayable
  fault-injection harness keyed by task digest, wrapping the worker entry
  point with crashes, exceptions, pickling failures and hangs.

The headline property, pinned by ``tests/test_resilience.py`` and the
chaos benchmark: a run with injected worker crashes and timeouts completes
and its ``PipelineOutcome`` is bit-identical to the fault-free serial
schedule.
"""

from repro.resilience.events import (
    ResilienceEvent,
    ResilienceEventKind,
    ResilienceLog,
)
from repro.resilience.faultplan import (
    CRASH_EXIT_CODE,
    FaultKind,
    FaultPlan,
    FaultSpec,
    perform_fault,
)
from repro.resilience.policy import RetryPolicy, task_digest

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ResilienceEvent",
    "ResilienceEventKind",
    "ResilienceLog",
    "RetryPolicy",
    "perform_fault",
    "task_digest",
]
