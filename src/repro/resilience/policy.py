"""Deterministic retry scheduling for the engine's per-IXP tasks.

The engine retries a failed ``(config, ixp_id)`` task under a
:class:`RetryPolicy`: bounded attempts, capped exponential backoff, and a
jitter term derived **deterministically** from the task's digest — no
``random``, no wall-clock reads — so a rerun of the same faulting schedule
sleeps the same delays and contracts rule 5 (determinism) holds.  The sleep
itself is performed by the engine through an injectable callable, exactly
like the PR 8 phase clocks, so tests can record the schedule instead of
waiting it out.

:func:`task_digest` is the shared task identity: built like the engine's
cache keys (a sha256 over the config fingerprint plus the IXP id), it is
stable across runs, processes and interpreter restarts — the property that
makes both the backoff jitter and the fault-injection plans of
:mod:`repro.resilience.faultplan` replayable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.config import InferenceConfig, config_fingerprint
from repro.exceptions import InferenceError


def task_digest(config: InferenceConfig, ixp_id: str) -> str:
    """Stable identity of one ``(config, ixp_id)`` per-IXP task.

    Digests the fingerprint of *every* config field plus the IXP id, the
    same construction the engine's cache keys use, so the digest is a pure
    function of the task — identical in the parent and in every worker
    process.
    """
    names = tuple(sorted(spec.name for spec in fields(config)))
    payload = repr((config_fingerprint(config, names), ixp_id))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _unit_fraction(digest: str, attempt: int) -> float:
    """A deterministic value in ``[0, 1)`` derived from (digest, attempt)."""
    payload = f"{digest}:{attempt}".encode("utf-8")
    value = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
    return value / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped, digest-jittered exponential backoff.

    ``max_attempts`` bounds the total tries per task, the first one
    included.  The backoff slept after failed attempt ``n`` is
    ``base_delay_s * 2 ** (n - 1)`` capped at ``max_delay_s``, stretched by
    up to ``jitter_fraction`` of itself.  The jitter is a pure function of
    ``(task digest, attempt)`` — see :func:`_unit_fraction` — so the whole
    schedule is replayable.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    max_delay_s: float = 0.25
    jitter_fraction: float = 0.5

    def __post_init__(self) -> None:
        if isinstance(self.max_attempts, bool) or not isinstance(
            self.max_attempts, int
        ):
            raise InferenceError(
                f"max_attempts must be an int, got {self.max_attempts!r}"
            )
        if self.max_attempts < 1:
            raise InferenceError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0.0:
            raise InferenceError(
                f"base_delay_s must be non-negative, got {self.base_delay_s!r}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise InferenceError(
                "max_delay_s must be at least base_delay_s, got "
                f"{self.max_delay_s!r} < {self.base_delay_s!r}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise InferenceError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction!r}"
            )

    def should_retry(self, completed_attempts: int) -> bool:
        """Whether a task that has consumed ``completed_attempts`` may rerun."""
        return completed_attempts < self.max_attempts

    def delay_s(self, digest: str, attempt: int) -> float:
        """The backoff slept after failed attempt ``attempt`` of one task."""
        if attempt < 1:
            raise InferenceError(f"attempt numbers start at 1, got {attempt}")
        capped = min(self.max_delay_s, self.base_delay_s * 2.0 ** (attempt - 1))
        return capped * (1.0 + self.jitter_fraction * _unit_fraction(digest, attempt))

    def schedule(self, digest: str) -> tuple[float, ...]:
        """Every backoff the policy would sleep for one task, in order.

        ``max_attempts - 1`` entries: no backoff follows the last attempt
        (exhaustion re-raises instead of sleeping).
        """
        return tuple(
            self.delay_s(digest, attempt) for attempt in range(1, self.max_attempts)
        )
