"""Typed journal of the engine's fault-handling decisions.

Every decision the resilient scheduler makes — a retry, a task timeout, a
worker crash, a pool rebuild, an executor demotion — is recorded as a
:class:`ResilienceEvent` in the engine's :class:`ResilienceLog` and surfaced
through ``PipelineEngine.executor_stats()``.  Nothing is silent: a run that
survived faults *says so*, in a form tests can pin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from threading import Lock


class ResilienceEventKind(enum.Enum):
    """What kind of fault-handling decision an event records."""

    RETRY = "retry"
    TASK_TIMEOUT = "task-timeout"
    WORKER_CRASH = "worker-crash"
    POOL_REBUILD = "pool-rebuild"
    EXECUTOR_DEMOTION = "executor-demotion"


@dataclass(frozen=True)
class ResilienceEvent:
    """One fault-handling decision the engine made.

    ``context`` names what the event is about — an IXP id for per-task
    events (retries, timeouts), ``"pool"`` for pool lifecycle events,
    ``"scheduler"`` for demotions.  ``attempt`` is the 1-based attempt
    number the decision concerned, where one applies.
    """

    kind: ResilienceEventKind
    context: str
    detail: str = ""
    attempt: int | None = None


class ResilienceLog:
    """Thread-safe, append-only journal of :class:`ResilienceEvent`.

    One log lives on each engine for the engine's lifetime (events
    accumulate across runs, like the executor counters).  Appends are
    serialised by the log's own lock so pool threads may record
    concurrently; reads hand out immutable snapshots.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self._events: list[ResilienceEvent] = []

    def record(self, event: ResilienceEvent) -> None:
        """Append one event (safe from any thread)."""
        with self._lock:
            self._events.append(event)

    def snapshot(self) -> tuple[ResilienceEvent, ...]:
        """Every recorded event, oldest first."""
        with self._lock:
            return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """Event tallies keyed by the kind's string value."""
        counts: dict[str, int] = {}
        for event in self.snapshot():
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
