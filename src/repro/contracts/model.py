"""Findings, waivers and report assembly for the contract checker.

A :class:`Violation` is one finding of one rule, carrying a repo-relative
file, a line and a **stable waiver key**.  Keys deliberately avoid line
numbers: a justified exception must survive unrelated edits to the file it
lives in, so keys are built from the rule, the enclosing scope (a step-graph
node or a function qualname) and the offending name — never from positions.

Waiver files are plain text: one key per line, each entry *immediately*
preceded by at least one ``#`` comment line carrying the justification.  A
bare key with no justification is a parse error — the whole point of a
waiver is the recorded reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError


class ContractCheckError(ReproError):
    """The checker itself could not run (bad tree, bad waiver file...)."""


@dataclass(frozen=True)
class Violation:
    """One contract finding.

    Attributes
    ----------
    rule:
        The rule family: ``"step-decl"``, ``"mutation"`` or ``"readonly"``.
    kind:
        The precise finding within the family (e.g.
        ``"undeclared-config-read"`` or ``"direct-mutation"``).
    path:
        File the finding anchors to, relative to the analyzed source root's
        repository (``src/repro/...`` when run from a checkout).
    line:
        1-indexed line of the offending access / declaration.
    context:
        The scope the finding lives in — a step-graph node name for rule 1,
        a ``module:qualname`` for rules 2 and 3.
    detail:
        The offending name (config field, domain, input, mutated field or
        attribute), used in the waiver key.
    message:
        Human-readable, self-contained description.
    """

    rule: str
    kind: str
    path: str
    line: int
    context: str
    detail: str
    message: str

    @property
    def key(self) -> str:
        """The stable waiver key (no line numbers — see module docstring)."""
        return f"{self.rule}:{self.kind}:{self.context}:{self.detail}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready rendering (the CLI's machine-readable report rows)."""
        return {
            "rule": self.rule,
            "kind": self.kind,
            "path": self.path,
            "line": self.line,
            "context": self.context,
            "detail": self.detail,
            "message": self.message,
            "key": self.key,
        }


@dataclass(frozen=True)
class Waiver:
    """One justified exception loaded from a waiver file."""

    key: str
    justification: str
    line: int


def parse_waivers(path: Path) -> dict[str, Waiver]:
    """Load a waiver file, enforcing the justification-comment contract.

    Every non-comment, non-blank line is a waiver key and must be
    immediately preceded (blank lines allowed between entries, not inside
    one) by at least one ``#`` comment explaining *why* the exception is
    justified.
    """
    waivers: dict[str, Waiver] = {}
    pending_comment: list[str] = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line:
            pending_comment = []
            continue
        if line.startswith("#"):
            pending_comment.append(line.lstrip("#").strip())
            continue
        if not pending_comment:
            raise ContractCheckError(
                f"{path}:{lineno}: waiver {line!r} has no justification comment "
                "(every waiver must be preceded by a '#' comment explaining it)"
            )
        if line in waivers:
            raise ContractCheckError(f"{path}:{lineno}: duplicate waiver {line!r}")
        waivers[line] = Waiver(
            key=line, justification=" ".join(pending_comment), line=lineno
        )
        pending_comment = []
    return waivers


@dataclass
class ContractReport:
    """The outcome of one checker run: findings split by waiver status."""

    violations: list[Violation] = field(default_factory=list)
    waived: list[Violation] = field(default_factory=list)
    unused_waivers: list[Waiver] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (unused waivers warn, they do not fail)."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """The machine-readable report emitted by ``--format=json``."""
        return {
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "waived": [v.as_dict() for v in self.waived],
            "unused_waivers": [
                {"key": w.key, "justification": w.justification, "line": w.line}
                for w in self.unused_waivers
            ],
            "summary": {
                "violations": len(self.violations),
                "waived": len(self.waived),
                "unused_waivers": len(self.unused_waivers),
            },
        }


def apply_waivers(
    violations: list[Violation], waivers: dict[str, Waiver]
) -> ContractReport:
    """Split raw findings into live violations and waived ones."""
    report = ContractReport()
    used: set[str] = set()
    for violation in violations:
        if violation.key in waivers:
            used.add(violation.key)
            report.waived.append(violation)
        else:
            report.violations.append(violation)
    report.unused_waivers = [
        waiver for key, waiver in waivers.items() if key not in used
    ]
    return report
