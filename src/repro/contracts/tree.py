"""Parsed-source model shared by the contract-checker rules.

One :class:`SourceTree` parses every module under a ``repro`` package root
exactly once and exposes the class-level facts the rules need:

* every class definition with its base names, annotated fields and
  ``self.<name> = ...`` constructor fields;
* the transitive descendants of :class:`repro.versioning.Versioned`;
* per-module import aliasing (``from x import Y as Z``), so receivers can be
  resolved back to the classes they were constructed from.

Everything here is purely syntactic — no module under analysis is imported,
so the checker can run over patched copies of the tree (the self-test
fixtures) exactly as it runs over the live checkout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.contracts.model import ContractCheckError

#: Builtin container constructors whose values make a field "mutable" for the
#: mutation-discipline rule.
_MUTABLE_BUILTINS = ("dict", "list", "set", "deque", "defaultdict", "Counter")


def walk_scope(func: ast.AST) -> "list[ast.AST]":
    """Every node of one function scope, pruning nested def/class bodies.

    Unlike :func:`ast.walk`, statements inside nested functions and classes
    are *not* yielded — they are separate scopes and are scanned separately,
    so yielding them here would double-report their findings.
    """
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)
    return nodes


def annotation_text(node: ast.AST | None) -> str:
    """The source text of an annotation, or ``""`` when absent."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - defensive; unparse rarely fails
        return ""


def is_mutable_annotation(text: str) -> bool:
    """Whether an annotation denotes a plain mutable container field."""
    cleaned = text.strip().strip('"').strip("'")
    return cleaned.startswith(_MUTABLE_BUILTINS) or cleaned.startswith(
        ("Dict[", "List[", "Set[")
    )


def _is_mutable_default(node: ast.expr | None) -> bool:
    """Whether a field default/value builds a mutable builtin container."""
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_BUILTINS:
            return True
        # dataclasses.field(default_factory=dict) and friends.
        if isinstance(func, ast.Name) and func.id == "field":
            for keyword in node.keywords:
                if keyword.arg == "default_factory":
                    factory = keyword.value
                    if (
                        isinstance(factory, ast.Name)
                        and factory.id in _MUTABLE_BUILTINS
                    ):
                        return True
    return False


@dataclass
class ClassInfo:
    """Syntactic facts about one class definition."""

    name: str
    module: str
    path: Path
    node: ast.ClassDef
    base_names: tuple[str, ...]
    #: field name -> annotation text ("" when the field has no annotation).
    fields: dict[str, str] = field(default_factory=dict)
    #: fields whose annotation or default marks them as mutable containers.
    mutable_fields: set[str] = field(default_factory=set)

    def method(self, name: str) -> ast.FunctionDef | None:
        """The named method's AST, if defined directly on this class."""
        for statement in self.node.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == name:
                return statement
        return None


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed tree."""

    module: str
    path: Path
    node: ast.Module
    #: local name -> fully qualified imported name ("repro.core.engine.Foo").
    imports: dict[str, str] = field(default_factory=dict)


def _collect_class(info: ClassInfo) -> None:
    """Fill a class's field tables from its body and constructors."""
    for statement in info.node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            text = annotation_text(statement.annotation)
            info.fields[statement.target.id] = text
            if is_mutable_annotation(text) or _is_mutable_default(statement.value):
                info.mutable_fields.add(statement.target.id)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    info.fields.setdefault(target.id, "")
                    if _is_mutable_default(statement.value):
                        info.mutable_fields.add(target.id)
    for method_name in ("__init__", "__post_init__"):
        method = info.method(method_name)
        if method is None:
            continue
        for node in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation = ""
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = annotation_text(node.annotation)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                info.fields.setdefault(target.attr, annotation)
                if is_mutable_annotation(annotation) or _is_mutable_default(value):
                    info.mutable_fields.add(target.attr)


class SourceTree:
    """Every module under one ``repro`` package root, parsed once."""

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        if not (self.root / "__init__.py").is_file():
            raise ContractCheckError(
                f"{root} is not a package root (no __init__.py); expected the "
                "directory of the 'repro' package, e.g. src/repro"
            )
        self.package = self.root.name
        self.modules: dict[str, ModuleInfo] = {}
        #: class name -> every definition of that name in the tree.
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self._parse_all()
        self.versioned_classes = self._resolve_versioned()

    # ------------------------------------------------------------------ #
    def _parse_all(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            relative = path.relative_to(self.root)
            parts = (self.package, *relative.parts[:-1])
            stem = relative.stem
            module = ".".join(parts if stem == "__init__" else (*parts, stem))
            try:
                node = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError as error:
                raise ContractCheckError(f"cannot parse {path}: {error}") from error
            info = ModuleInfo(module=module, path=path, node=node)
            for statement in node.body:
                if isinstance(statement, ast.ImportFrom) and statement.module:
                    for alias in statement.names:
                        local = alias.asname or alias.name
                        info.imports[local] = f"{statement.module}.{alias.name}"
            self.modules[module] = info
            for statement in node.body:
                if isinstance(statement, ast.ClassDef):
                    self._register_class(info, statement)

    def _register_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        bases: list[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        info = ClassInfo(
            name=node.name,
            module=module.module,
            path=module.path,
            node=node,
            base_names=tuple(bases),
        )
        _collect_class(info)
        self.classes_by_name.setdefault(node.name, []).append(info)

    def _resolve_versioned(self) -> list[ClassInfo]:
        """Transitive subclasses of ``Versioned``, resolved by base name."""
        versioned_names = {"Versioned"}
        changed = True
        while changed:
            changed = False
            for name, definitions in self.classes_by_name.items():
                if name in versioned_names:
                    continue
                for info in definitions:
                    if any(base in versioned_names for base in info.base_names):
                        versioned_names.add(name)
                        changed = True
                        break
        return [
            info
            for name in versioned_names
            if name != "Versioned"
            for info in self.classes_by_name.get(name, [])
        ]

    # ------------------------------------------------------------------ #
    def class_named(self, name: str) -> ClassInfo | None:
        """The unique class of that name, or ``None`` if absent/ambiguous."""
        definitions = self.classes_by_name.get(name, [])
        return definitions[0] if len(definitions) == 1 else None

    def module_for(self, path: Path) -> ModuleInfo | None:
        """The parsed module at an absolute path, if part of the tree."""
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def display_path(self, path: Path) -> str:
        """A stable, repo-relative rendering of a tree path.

        The analyzed root is conventionally ``<repo>/src/repro``; findings
        are reported relative to ``<repo>`` so CI annotations anchor on the
        diff.  Falls back to the path relative to the root's parent.
        """
        resolved = path.resolve()
        for base in (self.root.parent.parent, self.root.parent):
            try:
                return resolved.relative_to(base).as_posix()
            except ValueError:
                continue
        return resolved.as_posix()
