"""Dynamic cross-check: record what a real pipeline run actually reads.

The static rule (:mod:`repro.contracts.stepdecl`) proves properties of the
*source*; this module checks the same contract against an *execution*.  It
runs a genuine :class:`~repro.core.engine.PipelineEngine` whose inputs
bundle, dataset, geo index and config are wrapped in observation-only
recording proxies, and asserts that the set of config fields, dataset
domains and versioned inputs each step node touched is a **subset** of the
node's ``STEP_GRAPH`` declaration.  (The reverse direction — declarations
never exercised — is the static rule's job: a single run over a small world
legitimately skips branches that other datasets take.)

The proxies observe and forward; they never copy, coerce or reorder, and
both engines run serially, so the proxied run's outcome must be
bit-identical to an unproxied run over the same inputs — the harness
returns both outcomes so callers can assert equality.  Accesses are mapped
to domains through the same tables (:mod:`repro.contracts.accessors`) the
static rule uses, so the two halves cannot disagree about what an access
means.

Identity is preserved across the proxy layer where the pipeline checks it:
``inputs.dataset``, ``inputs.geo_index`` and ``geo_index.dataset`` all
return the *same* proxy objects, so the engine's and the steps'
``geo_index.dataset is not inputs.dataset`` guards behave exactly as on the
real objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Sequence

from repro.config import InferenceConfig
from repro.contracts.accessors import (
    DATASET_ACCESSOR_DOMAINS,
    DATASET_FIELD_DOMAINS,
    DATASET_NEUTRAL_MEMBERS,
    GEO_ACCESSOR_DOMAINS,
    GEO_NEUTRAL_MEMBERS,
    NEUTRAL_INPUT_MEMBERS,
    STEP_IMPLEMENTATIONS,
    VERSIONED_INPUT_MEMBERS,
)
from repro.contracts.model import ContractCheckError, Violation
from repro.core.engine import STEP_GRAPH, PipelineEngine, PipelineOutcome
from repro.core.inputs import InferenceInputs

_CONFIG_FIELD_NAMES = frozenset(f.name for f in fields(InferenceConfig))


@dataclass
class ObservedAccesses:
    """What one step node actually read during the recorded run."""

    config: set[str] = field(default_factory=set)
    domains: set[str] = field(default_factory=set)
    inputs: set[str] = field(default_factory=set)


class _Recorder:
    """Per-node access log, active only inside wrapped compute calls."""

    def __init__(self) -> None:
        self.node: str | None = None
        self.observed: dict[str, ObservedAccesses] = {}

    def start(self, node: str) -> None:
        if self.node is not None:  # pragma: no cover - engine never nests
            raise ContractCheckError(
                f"nested compute recording: {node} inside {self.node}"
            )
        self.node = node
        self.observed.setdefault(node, ObservedAccesses())

    def stop(self) -> None:
        self.node = None

    def config_read(self, name: str) -> None:
        if self.node is not None:
            self.observed[self.node].config.add(name)

    def domains_read(self, domains: tuple[str, ...]) -> None:
        if self.node is not None:
            self.observed[self.node].domains.update(domains)

    def input_read(self, name: str) -> None:
        if self.node is not None:
            self.observed[self.node].inputs.add(name)


class _RecordingMethod:
    """A bound accessor that records its table domains, then forwards."""

    def __init__(
        self,
        recorder: _Recorder,
        domains: tuple[str, ...],
        bound: Callable[..., Any],
    ) -> None:
        self._recorder = recorder
        self._domains = domains
        self._bound = bound

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self._recorder.domains_read(self._domains)
        return self._bound(*args, **kwargs)


class _DatasetProxy:
    """ObservedDataset stand-in mapping member reads to domains."""

    def __init__(self, real: Any, recorder: _Recorder) -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_recorder", recorder)

    def __getattr__(self, name: str) -> Any:
        real = object.__getattribute__(self, "_real")
        recorder = object.__getattribute__(self, "_recorder")
        accessor = DATASET_ACCESSOR_DOMAINS.get(name)
        if accessor is not None:
            return _RecordingMethod(recorder, accessor, getattr(real, name))
        domains = DATASET_FIELD_DOMAINS.get(name)
        if domains is not None:
            recorder.domains_read(domains)
            return getattr(real, name)
        if name in DATASET_NEUTRAL_MEMBERS:
            return getattr(real, name)
        raise ContractCheckError(
            f"dynamic cross-check: unmapped ObservedDataset member {name!r} — "
            "extend the tables in repro.contracts.accessors"
        )


class _GeoIndexProxy:
    """GeoDistanceIndex stand-in recording per-accessor domain reads."""

    def __init__(
        self, real: Any, dataset_proxy: _DatasetProxy, recorder: _Recorder
    ) -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_dataset_proxy", dataset_proxy)
        object.__setattr__(self, "_recorder", recorder)

    def __getattr__(self, name: str) -> Any:
        real = object.__getattribute__(self, "_real")
        recorder = object.__getattribute__(self, "_recorder")
        accessor = GEO_ACCESSOR_DOMAINS.get(name)
        if accessor is not None:
            return _RecordingMethod(recorder, accessor, getattr(real, name))
        if name == "dataset":
            # Identity-preserving: the steps' `geo_index.dataset is not
            # inputs.dataset` guards must see the same proxy object.
            return object.__getattribute__(self, "_dataset_proxy")
        if name in GEO_NEUTRAL_MEMBERS:
            return getattr(real, name)
        raise ContractCheckError(
            f"dynamic cross-check: unmapped GeoDistanceIndex member {name!r} — "
            "extend the tables in repro.contracts.accessors"
        )


class _InputsProxy:
    """InferenceInputs stand-in routing members through the proxies."""

    def __init__(
        self,
        real: InferenceInputs,
        dataset_proxy: _DatasetProxy,
        geo_proxy: _GeoIndexProxy,
        recorder: _Recorder,
    ) -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_dataset_proxy", dataset_proxy)
        object.__setattr__(self, "_geo_proxy", geo_proxy)
        object.__setattr__(self, "_recorder", recorder)

    def __getattr__(self, name: str) -> Any:
        real = object.__getattribute__(self, "_real")
        recorder = object.__getattribute__(self, "_recorder")
        if name in VERSIONED_INPUT_MEMBERS:
            recorder.input_read(name)
            return getattr(real, name)
        if name == "dataset":
            return object.__getattribute__(self, "_dataset_proxy")
        if name == "geo_index":
            return object.__getattribute__(self, "_geo_proxy")
        if name in NEUTRAL_INPUT_MEMBERS:
            return getattr(real, name)
        # Helper methods (e.g. interfaces_for) re-bound to the proxy, so
        # their internal dataset/input reads are recorded too.
        member = getattr(type(real), name, None)
        if callable(member):
            return member.__get__(self, type(real))
        raise ContractCheckError(
            f"dynamic cross-check: unmapped InferenceInputs member {name!r} — "
            "extend the tables in repro.contracts.accessors"
        )


class _ConfigProxy:
    """InferenceConfig stand-in recording per-field reads."""

    def __init__(self, real: InferenceConfig, recorder: _Recorder) -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_recorder", recorder)

    def __getattr__(self, name: str) -> Any:
        real = object.__getattribute__(self, "_real")
        if name in _CONFIG_FIELD_NAMES:
            object.__getattribute__(self, "_recorder").config_read(name)
        return getattr(real, name)


@dataclass
class DynamicCrossCheck:
    """The outcome of one recorded run against the declarations."""

    observed: dict[str, ObservedAccesses]
    violations: list[Violation]
    outcome: PipelineOutcome
    reference_outcome: PipelineOutcome

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def bit_identical(self) -> bool:
        """Whether the proxied run reproduced the unproxied outcome exactly."""
        return self.outcome == self.reference_outcome


def _compare(observed: dict[str, ObservedAccesses]) -> list[Violation]:
    violations: list[Violation] = []

    def emit(node: str, kind: str, detail: str, message: str) -> None:
        violations.append(
            Violation(
                rule="dynamic",
                kind=kind,
                path="src/repro/core/engine.py",
                line=0,
                context=node,
                detail=detail,
                message=message,
            )
        )

    for spec in STEP_GRAPH:
        accesses = observed.get(spec.name)
        if accesses is None:
            continue  # node disabled / not reached in this run
        for name in sorted(accesses.config - set(spec.config_fields)):
            emit(
                spec.name,
                "undeclared-config-read",
                name,
                f"step {spec.name!r} read config field {name!r} at runtime but "
                "does not declare it in STEP_GRAPH config_fields",
            )
        for domain in sorted(accesses.domains - set(spec.data_domains)):
            emit(
                spec.name,
                "undeclared-domain-read",
                domain,
                f"step {spec.name!r} read dataset domain {domain!r} at runtime "
                "but does not declare it in STEP_GRAPH data_domains",
            )
        for name in sorted(accesses.inputs - set(spec.data_inputs)):
            emit(
                spec.name,
                "undeclared-input-read",
                name,
                f"step {spec.name!r} read versioned input {name!r} at runtime "
                "but does not declare it in STEP_GRAPH data_inputs",
            )
    return violations


def run_dynamic_cross_check(
    inputs: InferenceInputs,
    config: InferenceConfig,
    ixp_ids: Sequence[str],
) -> DynamicCrossCheck:
    """Run the pipeline twice — recorded and plain — and diff the contract.

    Both runs are serial over the same (unmutated) inputs, so the recorded
    outcome must equal the reference outcome exactly; callers should assert
    :attr:`DynamicCrossCheck.bit_identical` alongside
    :attr:`DynamicCrossCheck.ok`.
    """
    recorder = _Recorder()
    dataset_proxy = _DatasetProxy(inputs.dataset, recorder)
    geo_proxy = _GeoIndexProxy(inputs.geo_index, dataset_proxy, recorder)
    inputs_proxy = _InputsProxy(inputs, dataset_proxy, geo_proxy, recorder)
    config_proxy = _ConfigProxy(config, recorder)

    engine = PipelineEngine(inputs_proxy, geo_index=geo_proxy, max_workers=None)
    for node, method_name in STEP_IMPLEMENTATIONS.items():
        original = getattr(engine, method_name)
        setattr(
            engine,
            method_name,
            _wrap_compute(node, original, recorder, config_proxy),
        )
    outcome = engine.run(config, list(ixp_ids))

    reference = PipelineEngine(inputs, max_workers=None).run(config, list(ixp_ids))
    return DynamicCrossCheck(
        observed=recorder.observed,
        violations=_compare(recorder.observed),
        outcome=outcome,
        reference_outcome=reference,
    )


def _wrap_compute(
    node: str,
    original: Callable[..., Any],
    recorder: _Recorder,
    config_proxy: _ConfigProxy,
) -> Callable[..., Any]:
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        recorder.start(node)
        try:
            if args and isinstance(args[0], InferenceConfig):
                # Every compute but the traceroute node takes the config as
                # its first argument; substitute the recording proxy.
                return original(config_proxy, *args[1:], **kwargs)
            return original(*args, **kwargs)
        finally:
            recorder.stop()

    return wrapper
