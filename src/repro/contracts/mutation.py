"""Rule family 2: journal mutation discipline for Versioned containers.

Every mutable backing collection of a :class:`repro.versioning.Versioned`
container (the observed dataset's dicts, the campaign results' lists, the
report's results map...) must only be mutated from the container's **own
module** — where the journal-emitting mutators live — or from one of the
exempt mechanism layers (``_EXEMPT_MODULES``: :mod:`repro.versioning` and
the observation-only instrumentation in :mod:`repro.contracts.dynconc`).
A direct mutation anywhere else
(``dataset.interface_asn[ip] = ...``, ``result.vantage_points.update(...)``,
``del report.results[key]``) silently bypasses both the change journal and
the generation stamp: derived indexes and the step-result cache keep serving
stale state until an unrelated size change happens to re-key them.

The rule discovers Versioned subclasses and their mutable fields
syntactically (so it follows the tree under analysis, fixtures included) and
resolves mutation receivers conservatively:

* a receiver constructed from a known class (``x = PingCampaignResult()``),
  annotated with one (``def f(dataset: ObservedDataset)``) or being ``self``
  inside a class body is resolved to that class — violations are certain;
* an unresolvable receiver is flagged only when the mutated attribute name
  is *unique* to Versioned containers across the tree; names shared with
  ordinary classes (e.g. ``SourceSnapshot``'s mirror fields) are skipped
  rather than guessed at.

Aliases of a backing collection (``facs = dataset.as_facilities`` followed
by ``facs[asn] = ...``, or the value returned by ``.setdefault``/``.get``)
are tracked one level deep within a function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.contracts.model import Violation
from repro.contracts.tree import ClassInfo, ModuleInfo, SourceTree, walk_scope

#: Modules exempt from the rule, relative to the analyzed package: the
#: versioning machinery itself, and the dynamic concurrency harness
#: (:mod:`repro.contracts.dynconc`), which installs observation-only
#: lock-checking wrappers in place of the backing dicts — a representation
#: swap that preserves content exactly, never a journal-bypassing edit.
_EXEMPT_MODULES: tuple[str, ...] = ("versioning", "contracts.dynconc")

#: Method calls that mutate a dict / list / set receiver in place.
MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "remove",
        "sort",
        "reverse",
    }
)


@dataclass(frozen=True)
class _FieldOwners:
    """Where one versioned mutable field name is defined."""

    classes: tuple[str, ...]
    modules: tuple[str, ...]
    ambiguous: bool  # also declared by a non-versioned class somewhere


def _collect_field_owners(tree: SourceTree) -> dict[str, _FieldOwners]:
    versioned_by_name = {info.name for info in tree.versioned_classes}
    owners: dict[str, _FieldOwners] = {}
    fields: dict[str, tuple[set[str], set[str]]] = {}
    for info in tree.versioned_classes:
        for field_name in info.mutable_fields:
            classes, modules = fields.setdefault(field_name, (set(), set()))
            classes.add(info.name)
            modules.add(info.module)
    for field_name, (classes, modules) in fields.items():
        ambiguous = any(
            field_name in info.fields
            for definitions in tree.classes_by_name.values()
            for info in definitions
            if info.name not in versioned_by_name
        )
        owners[field_name] = _FieldOwners(
            classes=tuple(sorted(classes)),
            modules=tuple(sorted(modules)),
            ambiguous=ambiguous,
        )
    return owners


class _FunctionScan:
    """Receiver typing and mutation-site detection within one function."""

    def __init__(
        self,
        checker: "MutationChecker",
        module: ModuleInfo,
        owner: ClassInfo | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ) -> None:
        self.checker = checker
        self.module = module
        self.owner = owner
        self.func = func
        self.qualname = qualname
        #: var name -> class name it was constructed from / annotated with.
        self.types: dict[str, str] = {}
        #: var name -> versioned field it aliases the backing collection of.
        self.aliases: dict[str, str] = {}

    # -------------------------------------------------------------- #
    def _class_for_name(self, name: str) -> str | None:
        """A constructor/annotation name resolved to a known class name."""
        if name in self.checker.tree.classes_by_name:
            return name
        imported = self.module.imports.get(name, "")
        tail = imported.rsplit(".", 1)[-1]
        if tail in self.checker.tree.classes_by_name:
            return tail
        return None

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        text = ast.unparse(annotation)
        for token in text.replace("[", " ").replace("]", " ").replace("|", " ").split():
            token = token.strip('"\',').rsplit(".", 1)[-1]
            resolved = self._class_for_name(token)
            if resolved is not None:
                return resolved
        return None

    def _bind(self) -> None:
        args = self.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            resolved = self._annotation_class(arg.annotation)
            if resolved is not None:
                self.types[arg.arg] = resolved
        if self.owner is not None:
            self.types["self"] = self.owner.name
        for node in walk_scope(self.func):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if isinstance(target, ast.Name):
                    resolved = self._annotation_class(node.annotation)
                    if resolved is not None:
                        self.types[target.id] = resolved
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                resolved = self._class_for_name(value.func.id)
                if resolved is not None:
                    self.types[target.id] = resolved
            backing = self._backing_field(value)
            if backing is not None:
                self.aliases[target.id] = backing

    def _backing_field(self, value: ast.expr) -> str | None:
        """The versioned field whose backing collection ``value`` aliases."""
        expr = value
        # x = recv.field.setdefault(...) / recv.field.get(...) share backing.
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("setdefault", "get")
        ):
            expr = expr.func.value
        if isinstance(expr, ast.Attribute):
            field_name = self._tracked_field(expr)
            if field_name is not None:
                return field_name
        return None

    # -------------------------------------------------------------- #
    def _receiver_class(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return self._class_for_name(node.func.id)
        return None

    def _exempt_module(self) -> bool:
        package = self.checker.tree.package
        return any(
            self.module.module == f"{package}.{suffix}"
            for suffix in _EXEMPT_MODULES
        )

    def _tracked_field(self, attribute: ast.Attribute) -> str | None:
        """The versioned field this attribute access denotes, if flagged.

        Applies the whole receiver-resolution policy; returns ``None`` when
        the access is allowed here (own module, non-versioned receiver or
        ambiguous unresolved name).
        """
        field_name = attribute.attr
        owners = self.checker.field_owners.get(field_name)
        if owners is None:
            return None
        receiver = self._receiver_class(attribute.value)
        if receiver is not None:
            if receiver not in owners.classes:
                return None  # a known non-versioned class's own attribute
            if self.module.module in owners.modules:
                return None  # the container's own module
            if self._exempt_module():
                return None
            return field_name
        if self.module.module in owners.modules:
            return None
        if self._exempt_module():
            return None
        if owners.ambiguous:
            return None
        return field_name

    # -------------------------------------------------------------- #
    def scan(self) -> None:
        self._bind()
        for node in walk_scope(self.func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self._check_target(target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_target(target, node, op="del")
            elif isinstance(node, ast.Call):
                self._check_call(node)

    def _check_target(
        self, target: ast.expr, node: ast.stmt, *, op: str | None = None
    ) -> None:
        if isinstance(target, ast.Subscript):
            base = target.value
            operation = op or "subscript-assignment"
            if isinstance(base, ast.Attribute):
                field_name = self._tracked_field(base)
                if field_name is not None:
                    self._emit(node, field_name, operation)
            elif isinstance(base, ast.Name) and base.id in self.aliases:
                self._emit(node, self.aliases[base.id], f"{operation}-via-alias")
        elif isinstance(target, ast.Attribute) and op != "del":
            field_name = self._tracked_field(target)
            if field_name is not None:
                self._emit(node, field_name, "rebind")
        elif isinstance(target, ast.Attribute) and op == "del":
            field_name = self._tracked_field(target)
            if field_name is not None:
                self._emit(node, field_name, "del")

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
            return
        base = func.value
        if isinstance(base, ast.Attribute):
            field_name = self._tracked_field(base)
            if field_name is not None:
                self._emit(node, field_name, f".{func.attr}()")
        elif isinstance(base, ast.Name) and base.id in self.aliases:
            self._emit(node, self.aliases[base.id], f".{func.attr}()-via-alias")

    def _emit(self, node: ast.AST, field_name: str, operation: str) -> None:
        owners = self.checker.field_owners[field_name]
        self.checker.emit(
            path=self.module.path,
            line=getattr(node, "lineno", 0),
            context=f"{self.module.module}:{self.qualname}",
            detail=f"{field_name}:{operation}",
            message=(
                f"direct mutation ({operation}) of Versioned field "
                f"{field_name!r} (container {', '.join(owners.classes)}) outside "
                f"its defining module — use the container's journal-emitting "
                f"mutator, or invalidate_caches() via a mutator added to "
                f"{', '.join(owners.modules)}"
            ),
        )


class MutationChecker:
    """Runs rule family 2 over every module of a source tree."""

    def __init__(self, tree: SourceTree) -> None:
        self.tree = tree
        self.field_owners = _collect_field_owners(tree)
        self.violations: list[Violation] = []

    def emit(
        self, *, path: Path, line: int, context: str, detail: str, message: str
    ) -> None:
        self.violations.append(
            Violation(
                rule="mutation",
                kind="direct-mutation",
                path=self.tree.display_path(path),
                line=line,
                context=context,
                detail=detail,
                message=message,
            )
        )

    def run(self) -> list[Violation]:
        for module in self.tree.modules.values():
            self._scan_scope(module, module.node.body, owner=None, prefix="")
        self.violations.sort(key=lambda v: (v.path, v.line))
        return self.violations

    def _scan_scope(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        owner: ClassInfo | None,
        prefix: str,
    ) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{statement.name}"
                _FunctionScan(self, module, owner, statement, qualname).scan()
                self._scan_scope(module, statement.body, owner, f"{qualname}.")
            elif isinstance(statement, ast.ClassDef):
                class_info = None
                for candidate in self.tree.classes_by_name.get(statement.name, []):
                    if candidate.node is statement:
                        class_info = candidate
                self._scan_scope(
                    module, statement.body, class_info, f"{statement.name}."
                )


def check_mutation_discipline(tree: SourceTree) -> list[Violation]:
    """Run rule family 2 over a source tree."""
    return MutationChecker(tree).run()
