"""Static contract checker for the reproduction pipeline.

Five rule families police the contracts the runtime machinery relies on
but cannot itself see:

1. **Step-declaration completeness** (:mod:`repro.contracts.stepdecl`) —
   every ``STEP_GRAPH`` node's implementation must read exactly the config
   fields, dataset domains and versioned inputs it declares; the
   declarations feed the step-result cache keys, so an undeclared read is a
   stale-cache bug and an unused declaration is a spurious invalidation.
2. **Mutation discipline** (:mod:`repro.contracts.mutation`) — the backing
   collections of :class:`~repro.versioning.Versioned` containers may only
   be mutated from their own modules, where the journal-emitting mutators
   live.
3. **Read-only outcomes** (:mod:`repro.contracts.readonly`) — replayed
   :class:`~repro.core.engine.PipelineOutcome` values are shared by the
   cache and must not be mutated by experiment/analysis/validation code.
4. **Lock discipline** (:mod:`repro.contracts.concurrency`) — every write
   reaching shared state from a ``PER_IXP`` node's call graph (the nodes
   run on a thread pool) must be lock-guarded or declared thread-confined.

   The lock-discipline *pattern* the tree follows, and the rule enforces:
   hot read paths are lock-free (a memo hit is one GIL-atomic dict read);
   fills **compute outside the lock, store under it** (duplicated work is
   idempotent, the lock only keeps the store race-free); lazy one-shot
   builds use **double-checked locking** (check, lock, re-check, build);
   and incremental eviction helpers are **declared lock-guarded**
   (:data:`~repro.contracts.concurrency.GUARDED_METHODS`) — their callers
   take the lock once, and the rule checks every call site honours that.
5. **Determinism** (:mod:`repro.contracts.determinism`) — the modules the
   engine executes must not depend on wall-clock time, hidden RNG state,
   set iteration order, ``id()`` keys or thread completion order; a cache
   hit is only a proof of reusability if recomputation would be
   bit-identical.

Run it three ways: ``python -m repro.contracts`` (the CLI, wired into CI),
``tests/test_contracts.py`` (tier-1, over the live tree and over seeded-bug
fixtures) and the dynamic cross-checks (:mod:`repro.contracts.dynamic`
records the accesses an actual pipeline run performs and asserts they are a
subset of the declarations; :mod:`repro.contracts.dynconc` runs the real
engine on a real thread pool with lock-asserting wrappers around the shared
memos and asserts zero unguarded concurrent writes and a bit-identical
outcome against the serial schedule).
"""

from __future__ import annotations

from pathlib import Path

from repro.contracts.model import (
    ContractCheckError,
    ContractReport,
    Violation,
    Waiver,
    apply_waivers,
    parse_waivers,
)
from repro.contracts.concurrency import check_concurrency_discipline
from repro.contracts.determinism import check_determinism
from repro.contracts.mutation import check_mutation_discipline
from repro.contracts.readonly import check_readonly_outcomes
from repro.contracts.stepdecl import check_step_declarations
from repro.contracts.tree import SourceTree

__all__ = [
    "ContractCheckError",
    "ContractReport",
    "SourceTree",
    "Violation",
    "Waiver",
    "apply_waivers",
    "check_concurrency_discipline",
    "check_determinism",
    "check_mutation_discipline",
    "check_readonly_outcomes",
    "check_step_declarations",
    "collect_violations",
    "parse_waivers",
    "run_all",
]


def collect_violations(tree: SourceTree) -> list[Violation]:
    """All five rule families over one tree, in a stable order."""
    violations: list[Violation] = []
    violations.extend(check_step_declarations(tree))
    violations.extend(check_mutation_discipline(tree))
    violations.extend(check_readonly_outcomes(tree))
    violations.extend(check_concurrency_discipline(tree))
    violations.extend(check_determinism(tree))
    return violations


def run_all(root: Path, waivers_path: Path | None = None) -> ContractReport:
    """Check the package rooted at ``root``, applying an optional waiver file.

    ``root`` is the package directory itself (``<repo>/src/repro``).  A
    missing waiver file is an error when explicitly given, and means "no
    waivers" when ``None``.
    """
    tree = SourceTree(root)
    violations = collect_violations(tree)
    waivers: dict[str, Waiver] = {}
    if waivers_path is not None:
        if not waivers_path.is_file():
            raise ContractCheckError(f"waiver file not found: {waivers_path}")
        waivers = parse_waivers(waivers_path)
    return apply_waivers(violations, waivers)
