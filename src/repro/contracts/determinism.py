"""Rule family 5: determinism lint over the engine-adjacent modules.

The step-graph engine's whole value proposition is that a cache hit is a
proof of reusability and a parallel schedule is bit-identical to the serial
one.  Both proofs assume the computations themselves are deterministic:
results must not depend on wall-clock time, process-lifetime randomness,
hash-order of sets, object identity, or thread completion order.  This rule
flags the syntactic shapes that break that assumption inside the modules the
engine executes (``repro.core``, ``repro.geo``, ``repro.netindex``, and the
resilience layer ``repro.resilience`` minus its deliberately-exempt fault
injection harness — see ``_EXEMPT_MODULES``):

* ``nondeterministic-call`` — calls into ``time``/``random``/``os.urandom``/
  ``uuid``/``secrets``, and any call reached through ``numpy.random`` (under
  whichever alias the module imports numpy — ``numpy``, ``np`` or the geo
  kernel's optional ``_np``).  Seeded :class:`random.Random` *construction*
  is allowed (the simulation layer threads explicit RNGs through parameters,
  which is the deterministic idiom); calling module-level functions that
  share hidden global state is not.  Plain numpy array arithmetic is fine —
  the vectorised geometry kernel deliberately restricts itself to elementwise
  ufuncs that are bit-identical to their scalar counterparts (and routes
  ``atan2`` through ``frompyfunc(math.atan2)`` where they are not); only the
  ``numpy.random`` namespace is stateful.
* ``unordered-iteration`` — a ``for`` loop directly over a set literal, set
  comprehension or ``set()``/``frozenset()`` call.  Iteration order of sets
  is insertion-and-hash dependent, so any ordered output fed from such a
  loop is unstable across processes; iterate ``sorted(...)`` instead.
  Loops over set-typed *variables* are deliberately not flagged: the
  order-insensitive reductions the tree legitimately performs (``min``/
  ``max`` spans, majority votes) would be false positives, and the literal
  form is the shape new code reaches for first.
* ``id-keyed-dict`` — a dict stored into (or comprehended) with an
  ``id(...)`` key.  Identity keys vary per process and per allocation, so
  such a dict can never participate in a reproducible result (identity
  *sets* used for cycle detection are fine and not flagged).
* ``completion-ordered-merge`` — any use of
  :func:`concurrent.futures.as_completed`: merging parallel results in
  completion order is scheduling-dependent by construction.  The engine's
  scheduler uses order-preserving ``pool.map`` instead.
"""

from __future__ import annotations

import ast

from repro.contracts.model import Violation
from repro.contracts.tree import ModuleInfo, SourceTree, walk_scope

#: The module prefixes (under the analyzed package) the rule covers.
DETERMINISM_SCOPES: tuple[str, ...] = ("core", "geo", "netindex", "resilience")

#: Modules inside the scopes that the rule deliberately skips, the same
#: escape hatch the mutation rule grants ``contracts.dynconc``: the fault
#: injection harness *is* the fault — its job is to call ``os._exit`` and
#: ``time.sleep`` on a deterministically planned schedule — so flagging
#: those calls would force a waiver for behaviour that is the module's
#: whole contract.  Everything else under ``repro.resilience`` (the retry
#: policy, the event journal) stays fully covered.
_EXEMPT_MODULES: tuple[str, ...] = ("resilience.faultplan",)

#: module alias -> the attribute names that are nondeterministic to call.
#: ``None`` means every attribute of the module (``time.time``,
#: ``time.monotonic``, ``random.random``, ``secrets.token_hex``...).
_NONDETERMINISTIC_MODULES: dict[str, frozenset[str] | None] = {
    "time": None,
    "random": None,
    "secrets": None,
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

#: ``random`` attributes that are deterministic to *construct*: an explicit
#: RNG object seeded by the caller is the idiom the simulation layer uses.
_ALLOWED_RANDOM_ATTRS: frozenset[str] = frozenset({"Random"})

#: Names numpy is imported under in the covered modules.  The geo kernel
#: binds its optional import to ``_np`` so the fallback stays importable.
_NUMPY_ALIASES: frozenset[str] = frozenset({"numpy", "np", "_np"})


def _numpy_random_chain(func: ast.expr) -> bool:
    """Whether a call's func reaches through ``numpy.random`` (any alias).

    Walks an attribute chain like ``_np.random.default_rng`` down to its
    root :class:`ast.Name`; flags it when the root is a numpy alias and
    ``random`` appears anywhere along the chain.  Plain ufunc calls
    (``np.sqrt``, ``np.where``...) never traverse ``random`` and pass.
    """
    chain: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    return (
        isinstance(node, ast.Name)
        and node.id in _NUMPY_ALIASES
        and "random" in chain
    )


def _set_valued(node: ast.expr) -> bool:
    """Whether an expression is literally a set/frozenset construction."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class _ModuleScan:
    """Scans one module for the four nondeterminism shapes."""

    def __init__(self, tree: SourceTree, module: ModuleInfo) -> None:
        self.tree = tree
        self.module = module
        self.violations: list[Violation] = []

    # -------------------------------------------------------------- #
    def _emit(
        self, node: ast.AST, kind: str, detail: str, message: str, qual: str
    ) -> None:
        self.violations.append(
            Violation(
                rule="determinism",
                kind=kind,
                path=self.tree.display_path(self.module.path),
                line=getattr(node, "lineno", 0),
                context=f"{self.module.module}:{qual}" if qual else self.module.module,
                detail=detail,
                message=message,
            )
        )

    def _nondeterministic_name(self, func: ast.expr) -> str | None:
        """The dotted name of a nondeterministic callable, if this is one."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module_name, attr = func.value.id, func.attr
            allowed = _NONDETERMINISTIC_MODULES.get(module_name)
            if module_name not in _NONDETERMINISTIC_MODULES:
                return None
            if module_name == "random" and attr in _ALLOWED_RANDOM_ATTRS:
                return None
            if allowed is None or attr in allowed:
                return f"{module_name}.{attr}"
            return None
        if isinstance(func, ast.Name):
            qualified = self.module.imports.get(func.id, "")
            if "." not in qualified:
                return None
            module_name, attr = qualified.rsplit(".", 1)
            allowed = _NONDETERMINISTIC_MODULES.get(module_name)
            if module_name not in _NONDETERMINISTIC_MODULES:
                return None
            if module_name == "random" and attr in _ALLOWED_RANDOM_ATTRS:
                return None
            if allowed is None or attr in allowed:
                return qualified
        return None

    # -------------------------------------------------------------- #
    def scan(self) -> list[Violation]:
        self._scan_scope(self.module.node, self.module.node.body, "")
        return self.violations

    def _scan_scope(self, scope: ast.AST, body: list[ast.stmt], qual: str) -> None:
        for node in walk_scope(scope):
            self._check_node(node, qual)
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{qual}.{statement.name}" if qual else statement.name
                self._scan_scope(statement, statement.body, name)
            elif isinstance(statement, ast.ClassDef):
                name = f"{qual}.{statement.name}" if qual else statement.name
                self._scan_scope(statement, statement.body, name)

    def _check_node(self, node: ast.AST, qual: str) -> None:
        if isinstance(node, ast.Call):
            if _numpy_random_chain(node.func):
                self._emit(
                    node,
                    "nondeterministic-call",
                    "numpy.random",
                    "call through numpy.random: the legacy namespace shares "
                    "hidden global state and even seeded Generators are not "
                    "part of the engine's bit-identical contract — thread an "
                    "explicitly seeded random.Random through parameters "
                    "instead",
                    qual,
                )
            dotted = self._nondeterministic_name(node.func)
            if dotted is not None:
                self._emit(
                    node,
                    "nondeterministic-call",
                    dotted,
                    f"call to {dotted} makes the result depend on process "
                    "state (wall clock / hidden RNG state); thread an "
                    "explicitly seeded random.Random (or a timestamp "
                    "argument) through parameters instead",
                    qual,
                )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "as_completed"
            ) or (
                isinstance(node.func, ast.Name)
                and node.func.id == "as_completed"
            ):
                self._emit(
                    node,
                    "completion-ordered-merge",
                    "as_completed",
                    "as_completed() yields results in thread completion "
                    "order, which is scheduling-dependent; merge with the "
                    "order-preserving executor.map instead",
                    qual,
                )
        elif isinstance(node, ast.For) and _set_valued(node.iter):
            self._emit(
                node,
                "unordered-iteration",
                "for-over-set",
                "iterating a set literal/constructor directly: iteration "
                "order is hash-and-insertion dependent, so any ordered "
                "output fed from this loop is unstable — iterate "
                "sorted(...) instead",
                qual,
            )
        elif isinstance(node, ast.Assign) or isinstance(node, ast.AnnAssign):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_id_call(target.slice):
                    self._emit(
                        node,
                        "id-keyed-dict",
                        "id()-key-store",
                        "storing under an id(...) key: object identity varies "
                        "per process and allocation, so the mapping can never "
                        "be part of a reproducible result — key by value "
                        "instead",
                        qual,
                    )
        elif isinstance(node, ast.DictComp) and _is_id_call(node.key):
            self._emit(
                node,
                "id-keyed-dict",
                "id()-key-comprehension",
                "dict comprehension keyed by id(...): object identity varies "
                "per process and allocation, so the mapping can never be "
                "part of a reproducible result — key by value instead",
                qual,
            )


def check_determinism(tree: SourceTree) -> list[Violation]:
    """Run rule family 5 over a source tree."""
    violations: list[Violation] = []
    prefixes = tuple(f"{tree.package}.{scope}" for scope in DETERMINISM_SCOPES)
    exempt = tuple(f"{tree.package}.{suffix}" for suffix in _EXEMPT_MODULES)
    for name in sorted(tree.modules):
        if not (
            name in prefixes
            or any(name.startswith(prefix + ".") for prefix in prefixes)
        ):
            continue
        if name in exempt:
            continue
        violations.extend(_ModuleScan(tree, tree.modules[name]).scan())
    violations.sort(key=lambda v: (v.path, v.line, v.kind, v.detail))
    return violations
