"""The accessor → domain tables the declaration checker is built on.

These tables are the single place where "reading *this* attribute or calling
*this* method touches *that* dataset domain" is written down.  Both halves
of the checker consume them: the static rule
(:mod:`repro.contracts.stepdecl`) maps syntactic accesses through them, and
the dynamic cross-check (:mod:`repro.contracts.dynamic`) wraps the same
names in recording proxies — so the two can never disagree about what an
access *means*, only about which accesses happen.

The tables are **closed-world**: the static rule reports a violation for
any dataset/geo-index member it cannot map, so adding an accessor to
:class:`~repro.datasources.merge.ObservedDataset` without extending the
table fails CI instead of silently under-declaring.
"""

from __future__ import annotations

from repro.datasources.merge import (
    DOMAIN_AS_FACILITIES,
    DOMAIN_ATTRIBUTES,
    DOMAIN_CAPACITIES,
    DOMAIN_FACILITY_LOCATIONS,
    DOMAIN_INTERFACES,
    DOMAIN_IXP_FACILITIES,
    DOMAIN_IXP_PREFIXES,
)

#: ObservedDataset *method* -> the domains one call reads.
DATASET_ACCESSOR_DOMAINS: dict[str, tuple[str, ...]] = {
    "ixp_for_ip": (DOMAIN_IXP_PREFIXES,),
    "ixp_ids": (DOMAIN_IXP_PREFIXES, DOMAIN_IXP_FACILITIES),
    "interfaces_of_ixp": (DOMAIN_INTERFACES,),
    "members_of_ixp": (DOMAIN_INTERFACES,),
    "asn_of_interface": (DOMAIN_INTERFACES,),
    "ixp_of_interface": (DOMAIN_INTERFACES,),
    "facilities_of_ixp": (DOMAIN_IXP_FACILITIES,),
    "facilities_of_as": (DOMAIN_AS_FACILITIES,),
    "has_facility_data_for_as": (DOMAIN_AS_FACILITIES,),
    "facility_location": (DOMAIN_FACILITY_LOCATIONS,),
    "common_facilities": (DOMAIN_IXP_FACILITIES, DOMAIN_AS_FACILITIES),
    "port_capacity": (DOMAIN_CAPACITIES,),
    "min_capacity": (DOMAIN_CAPACITIES,),
}

#: ObservedDataset *field* -> the domain a direct read belongs to.
DATASET_FIELD_DOMAINS: dict[str, tuple[str, ...]] = {
    "ixp_prefixes": (DOMAIN_IXP_PREFIXES,),
    "interface_ixp": (DOMAIN_INTERFACES,),
    "interface_asn": (DOMAIN_INTERFACES,),
    "ixp_facilities": (DOMAIN_IXP_FACILITIES,),
    "as_facilities": (DOMAIN_AS_FACILITIES,),
    "facility_locations": (DOMAIN_FACILITY_LOCATIONS,),
    "port_capacities": (DOMAIN_CAPACITIES,),
    "min_physical_capacity": (DOMAIN_CAPACITIES,),
    "traffic_levels": (DOMAIN_ATTRIBUTES,),
    "user_populations": (DOMAIN_ATTRIBUTES,),
    "customer_cone_sizes": (DOMAIN_ATTRIBUTES,),
    "countries": (DOMAIN_ATTRIBUTES,),
}

#: Dataset members that are versioning machinery, not data reads.  Mutators
#: are listed too: *calling* one is not a read (and the mutation-discipline
#: rule, not this table, polices where mutation may happen).
DATASET_NEUTRAL_MEMBERS: frozenset[str] = frozenset(
    {
        "generation",
        "journal",
        "version_token",
        "domain_token",
        "domain_generation",
        "record_change",
        "bump_generation",
        "invalidate_caches",
        "set_ixp_prefix",
        "remove_ixp_prefix",
        "set_interface",
        "remove_interface",
        "set_facility_location",
        "add_ixp_facility",
        "remove_ixp_facility",
        "add_as_facility",
        "remove_as_facility",
        "set_port_capacity",
        "set_min_capacity",
        "set_attribute",
    }
)

#: GeoDistanceIndex method -> the dataset domains one call depends on.  The
#: index syncs itself against every geo domain, but each *answer* only
#: depends on the domains listed here — the precise data contract a step
#: inherits by calling the method.
GEO_ACCESSOR_DOMAINS: dict[str, tuple[str, ...]] = {
    "facility_distance_km": (DOMAIN_FACILITY_LOCATIONS,),
    "pair_distance_km": (DOMAIN_FACILITY_LOCATIONS,),
    "ixp_profile": (DOMAIN_IXP_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
    "as_profile": (DOMAIN_AS_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
    "feasible_ixp_facilities": (DOMAIN_IXP_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
    "feasible_as_facilities": (DOMAIN_AS_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
    "ixp_pair_span_km": (DOMAIN_IXP_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
    "as_ixp_span_km": (
        DOMAIN_AS_FACILITIES,
        DOMAIN_IXP_FACILITIES,
        DOMAIN_FACILITY_LOCATIONS,
    ),
    "common_facility_span_km": (
        DOMAIN_AS_FACILITIES,
        DOMAIN_IXP_FACILITIES,
        DOMAIN_FACILITY_LOCATIONS,
    ),
    "majority_facility_vote": (DOMAIN_AS_FACILITIES, DOMAIN_FACILITY_LOCATIONS),
}

#: GeoDistanceIndex members that are plumbing, not data reads.
GEO_NEUTRAL_MEMBERS: frozenset[str] = frozenset({"dataset", "invalidate"})

#: InferenceInputs members that are versioned data inputs (their version
#: tokens enter step cache keys, so reading one must be declared).
VERSIONED_INPUT_MEMBERS: frozenset[str] = frozenset(
    {"ping_result", "corpus", "prefix2as"}
)

#: InferenceInputs members exempt from declaration: the dataset (covered by
#: domain declarations), the shared geo index (covered per accessor call)
#: and the world-backed, immutable alias resolver.
NEUTRAL_INPUT_MEMBERS: frozenset[str] = frozenset(
    {"dataset", "geo_index", "alias_resolver"}
)

#: Constructing a CorpusDetectionIndex (repro.traixroute.detector) walks the
#: corpus against the dataset's LANs, interfaces and facilities; the engine's
#: traceroute node inherits these reads wholesale.
CORPUS_DETECTION_DOMAINS: tuple[str, ...] = (
    DOMAIN_IXP_PREFIXES,
    DOMAIN_INTERFACES,
    DOMAIN_IXP_FACILITIES,
)
CORPUS_DETECTION_INPUTS: tuple[str, ...] = ("corpus", "prefix2as")

#: STEP_GRAPH node name -> the PipelineEngine method implementing it.
STEP_IMPLEMENTATIONS: dict[str, str] = {
    "step1": "_compute_step1",
    "step2": "_compute_step2",
    "step3": "_compute_step3",
    "traceroute": "_compute_traceroute",
    "step4": "_compute_step4",
    "step5": "_compute_step5",
    "baseline": "_compute_baseline",
}
