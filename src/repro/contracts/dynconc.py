"""Dynamic concurrency cross-check: run the real thread pool, assert the locks.

The static rule (:mod:`repro.contracts.concurrency`) proves lock discipline
over the *source*; this module checks the same contract against an
*execution*.  It runs a genuine :class:`~repro.core.engine.PipelineEngine`
on a real thread pool (``max_workers=4`` by default) after swapping the
shared memo dicts — the geo-index caches, the delay-model distance memo,
the dataset's lazy member index and LAN-LPM lookup memo — for
:class:`LockCheckedDict` wrappers that record, for every mutating
operation, whether the dict's guarding lock was held at that instant.

Callers assert three things (see ``tests/test_contracts.py``):

* **zero unguarded writes** — every recorded mutation happened with its
  lock held (:attr:`DynamicConcurrencyCheck.unguarded` is empty);
* **the probe had teeth** — at least one write was recorded at all, so a
  refactor that silently stops exercising the memos cannot rot the check
  into a vacuous pass;
* **bit-identical outcome** — the instrumented parallel run equals a plain
  serial run over the same inputs
  (:attr:`DynamicConcurrencyCheck.bit_identical`), closing the loop on the
  engine's ``max_workers`` equivalence claim.

Lock-held detection uses ``RLock._is_owned()`` where available (exact for
the calling thread) and falls back to ``Lock.locked()`` for plain locks —
the fallback can miss an unguarded write that races a guarded one, so it
under-reports but never false-positives; the static rule is the exhaustive
half of the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock
from typing import Any, Sequence

from repro.config import InferenceConfig
from repro.core.engine import PipelineEngine, PipelineOutcome
from repro.core.inputs import InferenceInputs

#: The GeoDistanceIndex memo fields, all guarded by its ``_sync_lock``.
_GEO_MEMO_FIELDS: tuple[str, ...] = (
    "_point_km",
    "_pair_km",
    "_ixp_profiles",
    "_as_profiles",
    "_ixp_spans",
    "_as_ixp_spans",
    "_common_spans",
    "_majority_votes",
)


def _held(lock: Any) -> bool:
    """Whether ``lock`` is held — exactly for RLocks, best-effort for Locks."""
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:
        return bool(is_owned())
    return bool(lock.locked())


@dataclass(frozen=True)
class WriteEvent:
    """One recorded mutation of an instrumented shared dict."""

    label: str
    operation: str
    guarded: bool


class _WriteLog:
    """Thread-safe append-only event sink shared by every wrapper."""

    def __init__(self) -> None:
        self._lock = Lock()
        self.events: list[WriteEvent] = []

    def record(self, label: str, operation: str, guarded: bool) -> None:
        with self._lock:
            self.events.append(WriteEvent(label, operation, guarded))


class LockCheckedDict(dict):  # type: ignore[type-arg]
    """A dict that notes whether its guarding lock is held at each mutation.

    Reads are untouched (the tree's discipline keeps hit paths lock-free on
    purpose); every mutating entry point records a :class:`WriteEvent`
    before forwarding, so the wrapper never changes behaviour — only
    observes it.
    """

    def __init__(
        self,
        label: str,
        guard: Any,
        log: _WriteLog,
        initial: dict[Any, Any] | None = None,
    ) -> None:
        super().__init__(initial or {})
        self._label = label
        self._guard = guard
        self._log = log

    def _note(self, operation: str) -> None:
        self._log.record(self._label, operation, _held(self._guard))

    def __setitem__(self, key: Any, value: Any) -> None:
        self._note("setitem")
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._note("delitem")
        super().__delitem__(key)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._note("setdefault")
        return super().setdefault(key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._note("update")
        super().update(*args, **kwargs)

    def clear(self) -> None:
        self._note("clear")
        super().clear()

    def pop(self, key: Any, *default: Any) -> Any:
        self._note("pop")
        return super().pop(key, *default)

    def popitem(self) -> tuple[Any, Any]:
        self._note("popitem")
        return super().popitem()


@dataclass
class DynamicConcurrencyCheck:
    """The outcome of one instrumented parallel run against a serial one."""

    events: list[WriteEvent]
    outcome: PipelineOutcome
    reference_outcome: PipelineOutcome

    @property
    def unguarded(self) -> list[WriteEvent]:
        """Mutations recorded without the guarding lock held."""
        return [event for event in self.events if not event.guarded]

    @property
    def ok(self) -> bool:
        return not self.unguarded

    @property
    def bit_identical(self) -> bool:
        """Whether the parallel run reproduced the serial outcome exactly."""
        return self.outcome == self.reference_outcome


def _instrument(
    engine: PipelineEngine, inputs: InferenceInputs, log: _WriteLog
) -> None:
    """Swap the engine-shared memo dicts for lock-checking wrappers."""
    geo = engine.geo_index
    for name in _GEO_MEMO_FIELDS:
        setattr(
            geo,
            name,
            LockCheckedDict(f"geo.{name}", geo._sync_lock, log, getattr(geo, name)),
        )
    model = engine.delay_model
    model._min_distance_memo = LockCheckedDict(
        "delay_model._min_distance_memo",
        model._lock,
        log,
        model._min_distance_memo,
    )
    dataset = inputs.dataset
    dataset._ixp_members = LockCheckedDict(
        "dataset._ixp_members", dataset._view_lock, log, dataset._ixp_members
    )
    # The LAN LPM view is built lazily; force the build so its lookup memo
    # (filled from every per-IXP thread that resolves an address) is wrapped
    # for the whole run rather than only after a chance rebuild.
    dataset.ixp_for_ip("192.0.2.1")
    state = dataset._lan_state
    if state is not None:
        view = state[1]
        view._memo = LockCheckedDict("lan_lpm._memo", view._lock, log, view._memo)


def run_dynamic_concurrency_check(
    inputs: InferenceInputs,
    config: InferenceConfig,
    ixp_ids: Sequence[str],
    *,
    max_workers: int = 4,
    executor: str = "thread",
) -> DynamicConcurrencyCheck:
    """Run the pipeline twice — instrumented-parallel and plain-serial.

    The instrumented engine schedules the per-IXP nodes on the requested
    executor and records every mutation of the shared memos; the reference
    engine runs serially over the same inputs with its own result cache.
    The wrappers stay installed for the reference run (they only observe),
    so its writes are recorded too — all of them from the single main
    thread, where the guarded store paths hold the locks just the same.

    Under ``executor="process"`` the per-IXP chains run in worker
    processes, so the recorded events cover the *parent's* share of the
    work — the global nodes (traceroute, Steps 4-5), the lazy dataset
    views they fill, and the scheduler's absorb path.  The worker pool is
    warmed **before** instrumentation: the initializer pickles the inputs,
    and the lock-checking wrappers (which hold real locks) must not be in
    the picture at that point.
    """
    log = _WriteLog()
    engine = PipelineEngine(inputs, max_workers=max_workers, executor=executor)
    try:
        if executor == "process":
            engine._ensure_process_pool()
        _instrument(engine, inputs, log)
        outcome = engine.run(config, list(ixp_ids))
    finally:
        engine.shutdown()
    reference = PipelineEngine(inputs, max_workers=None).run(config, list(ixp_ids))
    return DynamicConcurrencyCheck(
        events=list(log.events),
        outcome=outcome,
        reference_outcome=reference,
    )


def write_counts(check: DynamicConcurrencyCheck) -> dict[str, int]:
    """Recorded mutations per instrumented structure, for test diagnostics."""
    counts: dict[str, int] = {}
    for event in check.events:
        counts[event.label] = counts.get(event.label, 0) + 1
    return dict(sorted(counts.items()))
