"""Rule family 1: step-declaration completeness.

For every node of ``repro.core.engine.STEP_GRAPH`` the rule resolves the
node's implementation (``PipelineEngine._compute_<node>``) and walks its
transitive callees *inside* ``repro.core``, tracking which local names hold
the :class:`~repro.config.InferenceConfig`, the
:class:`~repro.core.inputs.InferenceInputs` bundle, the
:class:`~repro.datasources.merge.ObservedDataset` or the shared
:class:`~repro.geo.distindex.GeoDistanceIndex`.  Every ``config.<field>``
read, every versioned inputs-member read and every dataset/geo accessor use
(mapped to domains through :mod:`repro.contracts.accessors`) is collected
and compared against the node's declared ``config_fields`` /
``data_inputs`` / ``data_domains`` — in both directions: an undeclared read
desynchronises the fingerprint cache, an unexercised declaration
over-invalidates it and hides the real contract.

The walk is purely syntactic and deliberately conservative: values whose
type the tracker cannot prove are untracked (reads through them are
invisible to *this* rule — the dynamic cross-check exists precisely to
bound that blind spot), while any member of a *tracked* dataset or geo
index that the accessor tables cannot map is itself reported, keeping the
tables closed-world.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.contracts.accessors import (
    CORPUS_DETECTION_DOMAINS,
    CORPUS_DETECTION_INPUTS,
    DATASET_ACCESSOR_DOMAINS,
    DATASET_FIELD_DOMAINS,
    DATASET_NEUTRAL_MEMBERS,
    GEO_ACCESSOR_DOMAINS,
    GEO_NEUTRAL_MEMBERS,
    NEUTRAL_INPUT_MEMBERS,
    STEP_IMPLEMENTATIONS,
    VERSIONED_INPUT_MEMBERS,
)
from repro.contracts.model import ContractCheckError, Violation
from repro.contracts.tree import ClassInfo, ModuleInfo, SourceTree

#: Annotation substrings that type a name for the tracker.
_ANNOTATION_TAGS: tuple[tuple[str, str], ...] = (
    ("InferenceConfig", "config"),
    ("InferenceInputs", "inputs"),
    ("ObservedDataset", "dataset"),
    ("GeoDistanceIndex", "geo"),
    ("DelayModel", "delay"),
    ("AliasResolver", "alias"),
)

#: Conventional parameter names, used when a parameter has no annotation
#: (the engine's ``_compute_*`` methods pass ``config`` positionally).
_PARAM_NAME_TAGS: dict[str, str] = {
    "config": "config",
    "inputs": "inputs",
    "dataset": "dataset",
    "geo_index": "geo",
}

#: Tags for the versioned inputs-bundle members once read off ``inputs``.
_INPUT_MEMBER_TAGS: dict[str, str] = {
    "dataset": "dataset",
    "geo_index": "geo",
    "ping_result": "ping",
    "corpus": "corpus",
    "prefix2as": "prefix2as",
    "alias_resolver": "alias",
}

_Loc = tuple[Path, int]


@dataclass
class AccessRecord:
    """Everything one function (plus merged callees) was seen to read."""

    config: dict[str, _Loc] = field(default_factory=dict)
    domains: dict[str, _Loc] = field(default_factory=dict)
    inputs: dict[str, _Loc] = field(default_factory=dict)
    #: (path, line, kind, member) — closed-world table gaps.
    problems: list[tuple[Path, int, str, str]] = field(default_factory=list)

    def merge(self, other: "AccessRecord") -> None:
        for name, loc in other.config.items():
            self.config.setdefault(name, loc)
        for name, loc in other.domains.items():
            self.domains.setdefault(name, loc)
        for name, loc in other.inputs.items():
            self.inputs.setdefault(name, loc)
        self.problems.extend(other.problems)


@dataclass(frozen=True)
class StepDecl:
    """One STEP_GRAPH node's declarations, parsed from the engine source."""

    name: str
    config_fields: tuple[str, ...]
    data_domains: tuple[str, ...]
    data_inputs: tuple[str, ...]
    line: int
    #: ``"per-ixp"`` or ``"global"`` — the StepScope member name, lowered.
    scope: str = "global"
    #: Class names the node declares thread-confined (concurrency rule 4).
    thread_confined: tuple[str, ...] = ()


def _literal_tuple(node: ast.expr, constants: dict[str, str]) -> tuple[str, ...]:
    """A tuple of strings from a ``("a", DOMAIN_B, ...)`` declaration."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        raise ContractCheckError(
            f"STEP_GRAPH declaration at line {node.lineno} is not a literal tuple"
        )
    values: list[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            values.append(element.value)
        elif isinstance(element, ast.Name) and element.id in constants:
            values.append(constants[element.id])
        else:
            raise ContractCheckError(
                f"cannot resolve STEP_GRAPH declaration element at line "
                f"{element.lineno} (expected a string literal or DOMAIN_* name)"
            )
    return tuple(values)


def parse_step_graph(tree: SourceTree) -> dict[str, StepDecl]:
    """The declared step graph, read from the engine module's source."""
    engine = tree.modules.get(f"{tree.package}.core.engine")
    if engine is None:
        raise ContractCheckError("repro.core.engine not found in the source tree")
    merge = tree.modules.get(f"{tree.package}.datasources.merge")
    constants: dict[str, str] = {}
    if merge is not None:
        for statement in merge.node.body:
            if isinstance(statement, ast.Assign) and isinstance(
                statement.value, ast.Constant
            ):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and isinstance(
                        statement.value.value, str
                    ):
                        constants[target.id] = statement.value.value

    graph_value: ast.expr | None = None
    for statement in engine.node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "STEP_GRAPH"
        ):
            graph_value = statement.value
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "STEP_GRAPH":
                    graph_value = statement.value
    if not isinstance(graph_value, (ast.Tuple, ast.List)):
        raise ContractCheckError("STEP_GRAPH is not a literal tuple of StepSpec(...)")

    declarations: dict[str, StepDecl] = {}
    for call in graph_value.elts:
        if not isinstance(call, ast.Call):
            raise ContractCheckError(
                f"STEP_GRAPH element at line {call.lineno} is not a StepSpec(...) call"
            )
        keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}
        name_node = keywords.get("name")
        if not (
            isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
        ):
            raise ContractCheckError(
                f"StepSpec at line {call.lineno} has no literal name"
            )
        scope_node = keywords.get("scope")
        scope = "global"
        if isinstance(scope_node, ast.Attribute):
            scope = scope_node.attr.lower().replace("_", "-")
        elif isinstance(scope_node, ast.Constant) and isinstance(
            scope_node.value, str
        ):
            scope = scope_node.value
        declarations[name_node.value] = StepDecl(
            name=name_node.value,
            scope=scope,
            thread_confined=(
                _literal_tuple(keywords["thread_confined"], constants)
                if "thread_confined" in keywords
                else ()
            ),
            config_fields=(
                _literal_tuple(keywords["config_fields"], constants)
                if "config_fields" in keywords
                else ()
            ),
            data_domains=(
                _literal_tuple(keywords["data_domains"], constants)
                if "data_domains" in keywords
                else ()
            ),
            data_inputs=(
                _literal_tuple(keywords["data_inputs"], constants)
                if "data_inputs" in keywords
                else ()
            ),
            line=call.lineno,
        )
    return declarations


def _annotation_tag(text: str) -> str | None:
    for needle, tag in _ANNOTATION_TAGS:
        if needle in text:
            return tag
    return None


class StepDeclAnalyzer:
    """Call-graph access summariser over the ``repro.core`` modules."""

    def __init__(self, tree: SourceTree) -> None:
        self.tree = tree
        prefix = f"{tree.package}.core"
        self.core_modules: dict[str, ModuleInfo] = {
            name: info
            for name, info in tree.modules.items()
            if name == prefix or name.startswith(prefix + ".")
        }
        self.core_classes: dict[str, tuple[ClassInfo, ModuleInfo]] = {}
        for info in self.core_modules.values():
            for statement in info.node.body:
                if isinstance(statement, ast.ClassDef):
                    matches = self.tree.classes_by_name[statement.name]
                    for class_info in matches:
                        if class_info.node is statement:
                            self.core_classes[statement.name] = (class_info, info)
        self._field_tags: dict[str, dict[str, str]] = {}
        self._summaries: dict[tuple[str, str], AccessRecord] = {}
        self._in_progress: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------ #
    # Class-level facts
    # ------------------------------------------------------------------ #
    def field_tags(self, class_name: str) -> dict[str, str]:
        """``field -> tag`` for one core class (annotations + constructors)."""
        cached = self._field_tags.get(class_name)
        if cached is not None:
            return cached
        tags: dict[str, str] = {}
        self._field_tags[class_name] = tags
        entry = self.core_classes.get(class_name)
        if entry is None:
            return tags
        class_info, module = entry
        for field_name, annotation in class_info.fields.items():
            tag = _annotation_tag(annotation)
            if tag is not None:
                tags[field_name] = tag
        # Constructor-assigned fields (``self.inputs = inputs`` in the
        # engine's __init__) get the tag of the assigned expression.
        for method_name in ("__init__", "__post_init__"):
            method = class_info.method(method_name)
            if method is None:
                continue
            walker = _FunctionWalker(self, module, class_info, method, AccessRecord())
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        tag = walker.resolve(node.value)
                        if tag in (
                            "config",
                            "inputs",
                            "dataset",
                            "geo",
                            "delay",
                            "alias",
                        ):
                            tags.setdefault(target.attr, tag)
        return tags

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def summary(
        self, class_name: str | None, func_name: str, module: str
    ) -> AccessRecord:
        """The merged access record of one function and its core callees."""
        key = (f"{module}:{class_name or ''}", func_name)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:  # recursion: already being accumulated
            return AccessRecord()
        self._in_progress.add(key)
        try:
            record = AccessRecord()
            func, owner, module_info = self._lookup(class_name, func_name, module)
            if func is not None and module_info is not None:
                walker = _FunctionWalker(self, module_info, owner, func, record)
                walker.run()
                for callee_class, callee_func, callee_module in walker.callees:
                    record.merge(
                        self.summary(callee_class, callee_func, callee_module)
                    )
            self._summaries[key] = record
            return record
        finally:
            self._in_progress.discard(key)

    def _lookup(
        self, class_name: str | None, func_name: str, module: str
    ) -> tuple[ast.FunctionDef | None, ClassInfo | None, ModuleInfo | None]:
        if class_name is not None:
            entry = self.core_classes.get(class_name)
            if entry is None:
                return None, None, None
            class_info, module_info = entry
            method = class_info.method(func_name)
            if method is not None:
                return method, class_info, module_info
            # Inherited method (e.g. _RecordingReport -> InferenceReport).
            for base in class_info.base_names:
                if base in self.core_classes:
                    found = self._lookup(base, func_name, module)
                    if found[0] is not None:
                        return found
            return None, None, None
        module_info = self.core_modules.get(module)
        if module_info is None:
            return None, None, None
        for statement in module_info.node.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == func_name:
                return statement, None, module_info
        return None, None, None


class _FunctionWalker:
    """Flow-insensitive walk of one function body, recording tracked reads."""

    def __init__(
        self,
        analyzer: StepDeclAnalyzer,
        module: ModuleInfo,
        owner: ClassInfo | None,
        func: ast.FunctionDef,
        record: AccessRecord,
    ) -> None:
        self.analyzer = analyzer
        self.module = module
        self.owner = owner
        self.func = func
        self.record = record
        self.callees: set[tuple[str | None, str, str]] = set()
        self.env: dict[str, str | None] = {}
        if owner is not None:
            self.env["self"] = f"self:{owner.name}"
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            tag = None
            if arg.annotation is not None:
                tag = _annotation_tag(ast.unparse(arg.annotation))
            if tag is None:
                tag = _PARAM_NAME_TAGS.get(arg.arg)
            if arg.arg != "self":
                self.env[arg.arg] = tag

    def run(self) -> None:
        for statement in self.func.body:
            self._stmt(statement)

    # ------------------------------------------------------------------ #
    def _loc(self, node: ast.AST) -> _Loc:
        return (self.module.path, getattr(node, "lineno", 0))

    def _problem(self, node: ast.AST, kind: str, member: str) -> None:
        path, line = self._loc(node)
        self.record.problems.append((path, line, kind, member))

    def _add_callee(self, class_name: str | None, func_name: str) -> None:
        self.callees.add((class_name, func_name, self.module.module))

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def resolve(self, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.analyzer.core_classes:
                return f"cls:{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            return self._attr(self.resolve(node.value), node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self.resolve(node.test)
            body = self.resolve(node.body)
            orelse = self.resolve(node.orelse)
            return body if body is not None else orelse
        if isinstance(node, ast.BoolOp):
            tags = [self.resolve(value) for value in node.values]
            return next((tag for tag in tags if tag is not None), None)
        if isinstance(node, ast.NamedExpr):
            tag = self.resolve(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = tag
            return tag
        if isinstance(node, ast.Lambda):
            self.resolve(node.body)
            return None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in node.generators:
                self.resolve(comp.iter)
                self._clear_target(comp.target)
                for condition in comp.ifs:
                    self.resolve(condition)
            self.resolve(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            for comp in node.generators:
                self.resolve(comp.iter)
                self._clear_target(comp.target)
                for condition in comp.ifs:
                    self.resolve(condition)
            self.resolve(node.key)
            self.resolve(node.value)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.resolve(child)
        return None

    def _attr(self, base: str | None, node: ast.Attribute) -> str | None:
        attr = node.attr
        if base is None:
            return None
        if base == "config":
            self.record.config.setdefault(attr, self._loc(node))
            return None
        if base == "inputs":
            if attr in VERSIONED_INPUT_MEMBERS:
                self.record.inputs.setdefault(attr, self._loc(node))
            if attr in _INPUT_MEMBER_TAGS:
                return _INPUT_MEMBER_TAGS[attr]
            if attr in NEUTRAL_INPUT_MEMBERS:
                return None
            if "InferenceInputs" in self.analyzer.core_classes:
                entry = self.analyzer.core_classes["InferenceInputs"][0]
                if entry.method(attr) is not None:
                    return f"mth:InferenceInputs.{attr}"
            self._problem(node, "unknown-inputs-member", attr)
            return None
        if base == "dataset":
            if attr in DATASET_ACCESSOR_DOMAINS:
                for domain in DATASET_ACCESSOR_DOMAINS[attr]:
                    self.record.domains.setdefault(domain, self._loc(node))
                return None
            if attr in DATASET_FIELD_DOMAINS:
                for domain in DATASET_FIELD_DOMAINS[attr]:
                    self.record.domains.setdefault(domain, self._loc(node))
                return None
            if attr in DATASET_NEUTRAL_MEMBERS:
                return None
            self._problem(node, "unmapped-dataset-member", attr)
            return None
        if base == "geo":
            if attr in GEO_ACCESSOR_DOMAINS:
                for domain in GEO_ACCESSOR_DOMAINS[attr]:
                    self.record.domains.setdefault(domain, self._loc(node))
                return None
            if attr == "dataset":
                return "dataset"
            if attr in GEO_NEUTRAL_MEMBERS:
                return None
            self._problem(node, "unmapped-geo-member", attr)
            return None
        if base.startswith(("self:", "obj:")):
            class_name = base.split(":", 1)[1]
            tags = self.analyzer.field_tags(class_name)
            if attr in tags:
                return tags[attr]
            entry = self.analyzer.core_classes.get(class_name)
            if entry is not None:
                method, _owner, _module = self.analyzer._lookup(
                    class_name, attr, self.module.module
                )
                if method is not None:
                    return f"mth:{class_name}.{attr}"
            return None
        return None

    def _call(self, node: ast.Call) -> str | None:
        for argument in node.args:
            unstarred = (
                argument.value if isinstance(argument, ast.Starred) else argument
            )
            self.resolve(unstarred)
        for keyword in node.keywords:
            self.resolve(keyword.value)
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            qualified = self.module.imports.get(name, "")
            if name == "CorpusDetectionIndex" or qualified.endswith(
                ".CorpusDetectionIndex"
            ):
                for domain in CORPUS_DETECTION_DOMAINS:
                    self.record.domains.setdefault(domain, self._loc(node))
                for member in CORPUS_DETECTION_INPUTS:
                    self.record.inputs.setdefault(member, self._loc(node))
                return None
            if name in self.analyzer.core_classes:
                for hook in ("__init__", "__post_init__"):
                    self._add_callee(name, hook)
                return f"obj:{name}"
            if name in self.env:
                return None
            for statement in self.module.node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == name
                ):
                    self._add_callee(None, name)
                    return None
            return None
        if isinstance(func, ast.Attribute):
            tag = self.resolve(func)
            if tag is not None and tag.startswith("mth:"):
                class_name, method_name = tag[4:].split(".", 1)
                self._add_callee(class_name, method_name)
            return None
        self.resolve(func)
        return None

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _clear_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = None
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.resolve(target.value)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            tag = self.resolve(node.value)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self.env[node.targets[0].id] = tag
            else:
                for target in node.targets:
                    self._clear_target(target)
        elif isinstance(node, ast.AnnAssign):
            tag = self.resolve(node.value)
            if isinstance(node.target, ast.Name):
                if tag is None and node.annotation is not None:
                    tag = _annotation_tag(ast.unparse(node.annotation))
                self.env[node.target.id] = tag
            else:
                self._clear_target(node.target)
        elif isinstance(node, ast.AugAssign):
            self.resolve(node.value)
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                self.resolve(node.target.value)
        elif isinstance(node, ast.Expr):
            self.resolve(node.value)
        elif isinstance(node, ast.Return):
            self.resolve(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.resolve(node.test)
            for statement in (*node.body, *node.orelse):
                self._stmt(statement)
        elif isinstance(node, ast.For):
            self.resolve(node.iter)
            self._clear_target(node.target)
            for statement in (*node.body, *node.orelse):
                self._stmt(statement)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.resolve(item.context_expr)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars)
            for statement in node.body:
                self._stmt(statement)
        elif isinstance(node, ast.Try):
            for statement in (
                *node.body,
                *node.orelse,
                *node.finalbody,
            ):
                self._stmt(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._stmt(statement)
        elif isinstance(node, ast.Raise):
            self.resolve(node.exc)
            self.resolve(node.cause)
        elif isinstance(node, ast.Assert):
            self.resolve(node.test)
            self.resolve(node.msg)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._clear_target(target)
        # Nested defs, imports, pass/break/continue: nothing tracked inside.


def check_step_declarations(tree: SourceTree) -> list[Violation]:
    """Run rule family 1 over a source tree."""
    declarations = parse_step_graph(tree)
    analyzer = StepDeclAnalyzer(tree)
    engine = tree.modules[f"{tree.package}.core.engine"]
    engine_path = tree.display_path(engine.path)
    violations: list[Violation] = []
    seen_problems: set[str] = set()

    for node_name, decl in sorted(declarations.items()):
        method_name = STEP_IMPLEMENTATIONS.get(node_name)
        if method_name is None:
            violations.append(
                Violation(
                    rule="step-decl",
                    kind="missing-implementation",
                    path=engine_path,
                    line=decl.line,
                    context=node_name,
                    detail=node_name,
                    message=(
                        f"STEP_GRAPH node {node_name!r} has no implementation "
                        "mapping in repro.contracts.accessors.STEP_IMPLEMENTATIONS"
                    ),
                )
            )
            continue
        record = analyzer.summary(
            "PipelineEngine", method_name, f"{tree.package}.core.engine"
        )

        def _report(
            kind: str, name: str, loc: _Loc | None, message: str
        ) -> None:
            path = tree.display_path(loc[0]) if loc else engine_path
            line = loc[1] if loc else decl.line
            violations.append(
                Violation(
                    rule="step-decl",
                    kind=kind,
                    path=path,
                    line=line,
                    context=node_name,
                    detail=name,
                    message=message,
                )
            )

        for name in sorted(set(record.config) - set(decl.config_fields)):
            _report(
                "undeclared-config-read",
                name,
                record.config[name],
                f"step {node_name!r} reads InferenceConfig.{name} but does not "
                "declare it in config_fields (the fingerprint cache would miss "
                "changes to it)",
            )
        for name in sorted(set(decl.config_fields) - set(record.config)):
            _report(
                "unused-config-field",
                name,
                None,
                f"step {node_name!r} declares config field {name!r} but never "
                "reads it (over-declaring invalidates its cache needlessly)",
            )
        for name in sorted(set(record.domains) - set(decl.data_domains)):
            _report(
                "undeclared-domain-read",
                name,
                record.domains[name],
                f"step {node_name!r} reads dataset domain {name!r} but does not "
                "declare it in data_domains (journalled changes to it would not "
                "re-key the step's cache)",
            )
        for name in sorted(set(decl.data_domains) - set(record.domains)):
            _report(
                "unused-domain",
                name,
                None,
                f"step {node_name!r} declares dataset domain {name!r} but never "
                "reads it",
            )
        for name in sorted(set(record.inputs) - set(decl.data_inputs)):
            _report(
                "undeclared-input-read",
                name,
                record.inputs[name],
                f"step {node_name!r} reads inputs.{name} but does not declare it "
                "in data_inputs (its version token would not enter the cache key)",
            )
        for name in sorted(set(decl.data_inputs) - set(record.inputs)):
            _report(
                "unused-input",
                name,
                None,
                f"step {node_name!r} declares data input {name!r} but never "
                "reads it",
            )
        for path, line, kind, member in record.problems:
            display = tree.display_path(path)
            dedupe = f"{kind}:{display}:{line}:{member}"
            if dedupe in seen_problems:
                continue
            seen_problems.add(dedupe)
            violations.append(
                Violation(
                    rule="step-decl",
                    kind=kind,
                    path=display,
                    line=line,
                    context=node_name,
                    detail=member,
                    message=(
                        f"{kind.replace('-', ' ')}: {member!r} is not in the "
                        "contract checker's accessor tables "
                        "(repro.contracts.accessors); map it so reads through "
                        "it stay declared"
                    ),
                )
            )
    return violations
