"""Rule family 3: pipeline outcomes are read-only downstream.

A :class:`repro.core.engine.PipelineOutcome` (and everything reachable from
one — the inference report, the RTT summary, the feasibility/crossing maps)
is produced once per cache key and then **shared**: the step-result cache
replays the same objects into every later run with an unchanged key, and
``RemotePeeringStudy.sweep`` memoizes whole outcome dictionaries.  A
consumer that mutates one — an experiment annotating ``outcome.feasible``,
an analysis popping entries out of a replayed report — corrupts every other
consumer of the same key, in an order-dependent way that no single test
sees.

This rule therefore treats outcome values as tainted inside the consumer
packages (``experiments``, ``analysis``, ``validation``) and flags any
attribute assignment, element assignment/deletion or mutating method call
through them.  Taint starts at

* names annotated with an outcome type (:data:`READONLY_CLASSES`),
* reads of an ``.outcome`` attribute or ``.sweep(...)`` call (the study's
  memoized entry points),

and propagates through attribute access, subscripts, ``.values()`` /
``.items()`` / ``.get()`` and loop targets iterating a tainted expression.
Fresh objects a consumer builds for itself (metrics dataclasses, local
accumulators) are untouched — taint only flows out of outcome reads.
"""

from __future__ import annotations

import ast

from repro.contracts.model import Violation
from repro.contracts.mutation import MUTATING_METHODS
from repro.contracts.tree import (
    ModuleInfo,
    SourceTree,
    annotation_text,
    walk_scope,
)

#: Annotations that mark a parameter/variable as replayed pipeline output.
READONLY_CLASSES: tuple[str, ...] = (
    "PipelineOutcome",
    "InferenceReport",
    "RTTCampaignSummary",
)

#: Packages (relative to the analyzed package) the rule applies to.
CONSUMER_PACKAGES: tuple[str, ...] = ("experiments", "analysis", "validation")

#: Accessor calls through which taint flows from receiver to result.
_TRANSPARENT_CALLS: frozenset[str] = frozenset({"values", "items", "keys", "get"})


def _is_readonly_annotation(text: str) -> bool:
    return any(name in text for name in READONLY_CLASSES)


class _FunctionScan:
    """Taint tracking and mutation detection within one consumer function."""

    def __init__(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        violations: list[Violation],
        display_path: str,
    ) -> None:
        self.module = module
        self.func = func
        self.qualname = qualname
        self.violations = violations
        self.display_path = display_path
        self.tainted: set[str] = set()

    # -------------------------------------------------------------- #
    def _tainted_expr(self, node: ast.expr) -> bool:
        """Whether an expression denotes (part of) a replayed outcome."""
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr == "outcome":
                return True  # any `<study>.outcome` read is a source
            return self._tainted_expr(node.value)
        if isinstance(node, ast.Subscript):
            return self._tainted_expr(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "sweep":
                    return True  # memoized sweep outcomes are shared
                if func.attr in _TRANSPARENT_CALLS:
                    return self._tainted_expr(func.value)
        if isinstance(node, ast.IfExp):
            return self._tainted_expr(node.body) or self._tainted_expr(node.orelse)
        return False

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value)

    def _bind(self) -> None:
        args = self.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _is_readonly_annotation(annotation_text(arg.annotation)):
                self.tainted.add(arg.arg)
        # Flow-insensitive fixpoint: propagate taint through assignments and
        # loop targets until no new names are tainted.
        changed = True
        while changed:
            changed = False
            before = len(self.tainted)
            for node in walk_scope(self.func):
                if isinstance(node, ast.Assign):
                    if self._tainted_expr(node.value):
                        for target in node.targets:
                            self._taint_target(target)
                elif isinstance(node, ast.AnnAssign):
                    if _is_readonly_annotation(annotation_text(node.annotation)) or (
                        node.value is not None and self._tainted_expr(node.value)
                    ):
                        self._taint_target(node.target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if self._tainted_expr(node.iter):
                        self._taint_target(node.target)
                elif isinstance(node, ast.NamedExpr):
                    if self._tainted_expr(node.value):
                        self._taint_target(node.target)
                elif isinstance(node, ast.comprehension):
                    if self._tainted_expr(node.iter):
                        self._taint_target(node.target)
            changed = len(self.tainted) != before

    # -------------------------------------------------------------- #
    def scan(self) -> None:
        self._bind()
        for node in walk_scope(self.func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self._check_target(target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_target(target, node, deleting=True)
            elif isinstance(node, ast.Call):
                self._check_call(node)

    def _check_target(
        self, target: ast.expr, node: ast.stmt, *, deleting: bool = False
    ) -> None:
        if isinstance(target, ast.Attribute) and self._tainted_expr(target.value):
            op = "del" if deleting else "attribute-assignment"
            self._emit(node, target.attr, op)
        elif isinstance(target, ast.Subscript) and self._tainted_expr(target.value):
            op = "del" if deleting else "element-assignment"
            self._emit(node, self._describe(target.value), op)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and self._tainted_expr(func.value)
        ):
            self._emit(node, self._describe(func.value), f".{func.attr}()")

    @staticmethod
    def _describe(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Subscript):
            return _FunctionScan._describe(node.value)
        return "<expr>"

    def _emit(self, node: ast.AST, name: str, operation: str) -> None:
        self.violations.append(
            Violation(
                rule="readonly",
                kind="outcome-mutation",
                path=self.display_path,
                line=getattr(node, "lineno", 0),
                context=f"{self.module.module}:{self.qualname}",
                detail=f"{name}:{operation}",
                message=(
                    f"mutation ({operation}) of {name!r}, which is reached from a "
                    "replayed PipelineOutcome — outcomes are shared by the step "
                    "cache and sweep memoization; copy the data before editing it"
                ),
            )
        )


def check_readonly_outcomes(tree: SourceTree) -> list[Violation]:
    """Run rule family 3 over the consumer packages of a source tree."""
    violations: list[Violation] = []
    prefixes = tuple(f"{tree.package}.{name}" for name in CONSUMER_PACKAGES)
    for module in tree.modules.values():
        if not module.module.startswith(prefixes):
            continue
        display = tree.display_path(module.path)
        _scan_scope(module, module.node.body, "", violations, display)
    violations.sort(key=lambda v: (v.path, v.line))
    return violations


def _scan_scope(
    module: ModuleInfo,
    body: list[ast.stmt],
    prefix: str,
    violations: list[Violation],
    display: str,
) -> None:
    for statement in body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{statement.name}"
            _FunctionScan(module, statement, qualname, violations, display).scan()
            _scan_scope(
                module, statement.body, f"{qualname}.", violations, display
            )
        elif isinstance(statement, ast.ClassDef):
            _scan_scope(
                module, statement.body, f"{statement.name}.", violations, display
            )
