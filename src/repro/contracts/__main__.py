"""Command-line entry point: ``python -m repro.contracts``.

Checks a source tree against the five contract rule families and reports
the findings.  Exit status: 0 when clean (waived findings and unused
waivers do not fail the run), 1 when non-waived violations remain, 2 when
the checker itself cannot run (unparseable tree, malformed waiver file).

Formats: ``text`` (human-readable, default), ``json`` (the machine-readable
report, one document) and ``github`` (GitHub Actions ``::error`` workflow
annotations, one per finding — used by the CI ``contracts`` job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.contracts import ContractCheckError, ContractReport, run_all


def _default_root() -> Path:
    """The package directory this checker itself was imported from."""
    return Path(__file__).resolve().parent.parent


def _default_waivers(root: Path) -> Path | None:
    """``contracts-waivers.txt`` at the repo root, when present.

    ``root`` is ``<repo>/src/repro`` in a checkout, so the repo root is two
    levels up.  Returning ``None`` (no file) means "no waivers" rather than
    an error, so the CLI works on bare trees such as the test fixtures.
    """
    candidate = root.parent.parent / "contracts-waivers.txt"
    return candidate if candidate.is_file() else None


def _emit_text(report: ContractReport) -> None:
    for violation in report.violations:
        print(
            f"{violation.path}:{violation.line}: [{violation.rule}/"
            f"{violation.kind}] {violation.message}"
        )
        print(f"    waiver key: {violation.key}")
    for violation in report.waived:
        print(f"waived: {violation.key} ({violation.path}:{violation.line})")
    for waiver in report.unused_waivers:
        print(f"warning: unused waiver {waiver.key!r} (waiver file line {waiver.line})")
    print(
        f"contracts: {len(report.violations)} violation(s), "
        f"{len(report.waived)} waived, "
        f"{len(report.unused_waivers)} unused waiver(s)"
    )


def _emit_github(report: ContractReport) -> None:
    for violation in report.violations:
        message = f"[{violation.rule}/{violation.kind}] {violation.message}"
        print(
            f"::error file={violation.path},line={violation.line},"
            f"title=contract violation::{message} (waiver key: {violation.key})"
        )
    for waiver in report.unused_waivers:
        print(
            f"::warning file=contracts-waivers.txt,line={waiver.line},"
            f"title=unused waiver::waiver {waiver.key!r} matched no finding"
        )
    print(
        f"contracts: {len(report.violations)} violation(s), "
        f"{len(report.waived)} waived"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.contracts",
        description="Static contract checker: step declarations, mutation "
        "discipline, read-only outcomes, lock discipline, determinism.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed repro "
        "package, i.e. src/repro in a checkout)",
    )
    parser.add_argument(
        "--waivers",
        type=Path,
        default=None,
        help="waiver file (default: contracts-waivers.txt at the repo root "
        "when analyzing a checkout; no waivers otherwise)",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore any waiver file, report every finding",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    arguments = parser.parse_args(argv)

    root = (arguments.root or _default_root()).resolve()
    if arguments.no_waivers:
        waivers_path = None
    elif arguments.waivers is not None:
        waivers_path = arguments.waivers
    else:
        waivers_path = _default_waivers(root)

    try:
        report = run_all(root, waivers_path)
    except ContractCheckError as error:
        print(f"contract checker error: {error}", file=sys.stderr)
        return 2

    if arguments.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif arguments.format == "github":
        _emit_github(report)
    else:
        _emit_text(report)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
