"""Rule family 4: lock discipline for shared state under the per-IXP pool.

``PipelineEngine`` schedules the ``PER_IXP`` nodes of ``STEP_GRAPH`` on a
thread pool, so everything those nodes can reach — the dataset's derived
views, the geo/delay memos, the LPM caches, the step-result cache, the
version journals — is touched concurrently.  The runtime convention is
**compute-then-store-under-lock**: read paths stay lock-free (a hit is a
GIL-atomic dict read), and every fill, eviction or rebind of shared state
happens inside a ``with <...lock...>:`` region or inside a method whose
*callers* are contractually required to hold the lock.

This rule makes that convention checkable.  For every ``PER_IXP`` node it
walks the transitive callee graph of the node's implementation
(``PipelineEngine._compute_<node>``), plus the scheduler itself
(:meth:`~repro.core.engine.PipelineEngine._map_per_ixp`, cut at the node
implementations), resolving mutation receivers exactly like the mutation
rule (:mod:`repro.contracts.mutation`) resolves them.  The scheduler walk
is additionally cut at the **process boundary**
(:data:`PROCESS_LOCAL_FUNCTIONS`): the ``executor="process"`` seam ships
work to ``_process_chain_task`` inside worker processes, where a private
serial engine (built by ``_process_worker_init``) owns every structure it
touches — nothing there is shared with the parent's threads, so the
thread-discipline obligations stop at the pickle.  What the parent *does*
with the shipped results (``_absorb_per_ixp`` storing them through the
step cache) stays inside the walked graph.  A write reaching an
instance of a **shared class** (:data:`SHARED_STATE_CLASSES`) must be

(a) lexically inside a ``with``-statement whose context expression names a
    lock (``with self._sync_lock:``, ``with _JOURNAL_CREATION_LOCK:``), or
(b) inside a method declared lock-guarded (:data:`GUARDED_METHODS` — the
    per-class table of methods whose callers hold the lock), or
(c) covered by the node's explicit ``thread_confined`` declaration on its
    :class:`~repro.core.engine.StepSpec` — fresh-per-compute containers
    (the recording report, the per-IXP campaign summary and their change
    journals) that the node mutates freely without locks.

Anything else is an ``unguarded-shared-write`` finding.  The declarations
themselves are kept honest: a ``thread_confined`` class that never absorbs
a write is an ``unused-confinement`` finding, a :data:`GUARDED_METHODS`
entry that names no existing method is ``unknown-guarded-method``, and a
call to a guarded method from outside a lock region (or a fellow guarded
method) is ``unguarded-guarded-call`` — checked over the *whole* tree, not
just the reachable graph, because the caller-holds-the-lock contract has no
scope.

Like the other static rules the walk is syntactic and conservative: writes
through receivers the tracker cannot type are invisible here (the dynamic
cross-check, :mod:`repro.contracts.dynconc`, bounds that blind spot by
counting real unguarded writes under a real thread pool), while everything
a *typed* receiver reaches is checked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.contracts.accessors import STEP_IMPLEMENTATIONS
from repro.contracts.model import ContractCheckError, Violation
from repro.contracts.mutation import MUTATING_METHODS
from repro.contracts.stepdecl import parse_step_graph
from repro.contracts.tree import ClassInfo, ModuleInfo, SourceTree, walk_scope

#: Classes whose instances are (or may be) shared across the per-IXP pool's
#: threads.  Writes reaching an instance of one of these must be guarded or
#: declared thread-confined; classes not listed here own thread-local or
#: immutable state and are never findings.
SHARED_STATE_CLASSES: frozenset[str] = frozenset(
    {
        # The engine layer: one engine, cache and key resolver per run.
        "PipelineEngine",
        "StepResultCache",
        "_KeyResolver",
        # The inputs bundle and everything it holds.
        "InferenceInputs",
        "ObservedDataset",
        "GeoDistanceIndex",
        "DelayModel",
        "Prefix2ASMap",
        "PingCampaignResult",
        "TracerouteCorpus",
        # Versioning machinery embedded in the containers above.
        "GenerationGuardedIndex",
        "ChangeJournal",
        # Derived indexes maintained incrementally across revisions.
        "LPMIndex",
        "LPMDeltaView",
        "CrossingDetector",
        "CorpusDetectionIndex",
        # Result containers: shared in general (the assembled report, the
        # merged campaign summary); per-IXP nodes that build fresh ones
        # declare them thread_confined instead.
        "InferenceReport",
        "RTTCampaignSummary",
        # The engine's resilience-event journal: recorded to by the
        # scheduler around pool-thread collection, snapshotted by
        # executor_stats() from any thread; appends must hold its lock.
        "ResilienceLog",
    }
)

#: class name -> methods whose *callers* must hold the class's lock.  These
#: are the locked-region helpers of the incremental-maintenance pattern: the
#: public accessor takes the lock once and delegates, so the helper's own
#: body is lock-free by design.  The existence of every entry is verified
#: (``unknown-guarded-method``) and every call site must be inside a lock
#: region or a fellow guarded method (``unguarded-guarded-call``).
GUARDED_METHODS: dict[str, frozenset[str]] = {
    "GeoDistanceIndex": frozenset(
        {"_evict_for", "_evict_facility", "_evict_ixp", "_evict_as"}
    ),
    "CorpusDetectionIndex": frozenset(
        {"_sync_locked", "_rebuild", "_refresh_members", "_evict_under", "_redetect"}
    ),
    "StepResultCache": frozenset({"_evict_over_budget"}),
}

#: The pseudo-node under which scheduler-layer findings are reported: the
#: thread-pool plumbing (``_map_per_ixp`` / ``_per_ixp_chain`` / the cache
#: and key-resolver calls) runs on every pool thread but belongs to no
#: single STEP_GRAPH node, and may confine nothing.
SCHEDULER_CONTEXT = "per-ixp-scheduler"

#: Module-level functions of ``repro.core.engine`` that execute inside
#: worker *processes*, never on the parent's pool threads.  The scheduler
#: walk is cut here: a worker's engine is process-private (rebuilt from the
#: pickled inputs by the pool initializer), so its writes answer to the
#: worker's own serial discipline, not to the parent's lock discipline.
#: Every entry's existence is verified (``unknown-process-local``) so the
#: table cannot silently outlive a rename.
PROCESS_LOCAL_FUNCTIONS: frozenset[str] = frozenset(
    {"_process_worker_init", "_process_chain_task"}
)

#: (class name | None, function name, module name).  The module part is only
#: meaningful for module-level functions (class methods resolve their module
#: from the defining class); it is kept "" for methods so keys stay stable.
_FuncKey = tuple[str | None, str, str]


@dataclass(frozen=True)
class _WriteEvent:
    """One mutation of (possibly) shared state observed in a function."""

    owner: str  # canonical shared class name
    operation: str
    path: Path
    line: int
    guarded: bool  # lexically locked, or inside a guarded method


@dataclass(frozen=True)
class _GuardedCall:
    """One call site of a GUARDED_METHODS entry."""

    owner: str
    method: str
    path: Path
    line: int
    guarded: bool


@dataclass
class _FunctionSummary:
    """What one function does, independent of who reaches it."""

    events: list[_WriteEvent] = field(default_factory=list)
    callees: set[_FuncKey] = field(default_factory=set)
    guarded_calls: list[_GuardedCall] = field(default_factory=list)


def _lock_named(node: ast.expr) -> bool:
    """Whether a ``with`` context expression names a lock."""
    try:
        return "lock" in ast.unparse(node).lower()
    except ValueError:  # pragma: no cover - defensive
        return False


class ConcurrencyAnalyzer:
    """Shared-state write analysis over one source tree."""

    def __init__(self, tree: SourceTree) -> None:
        self.tree = tree
        self._summaries: dict[_FuncKey, _FunctionSummary] = {}
        self._field_classes: dict[str, dict[str, str]] = {}
        self._chains: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------ #
    # Class-level facts
    # ------------------------------------------------------------------ #
    def class_chain(self, class_name: str) -> tuple[str, ...]:
        """The class and its in-tree ancestors, nearest first."""
        cached = self._chains.get(class_name)
        if cached is not None:
            return cached
        chain: list[str] = []
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in chain:
                continue
            info = self.tree.class_named(name)
            if info is None:
                continue
            chain.append(name)
            queue.extend(info.base_names)
        result = tuple(chain)
        self._chains[class_name] = result
        return result

    def shared_name(self, class_name: str) -> str | None:
        """The canonical SHARED_STATE_CLASSES name covering a class, if any."""
        for name in self.class_chain(class_name) or (class_name,):
            if name in SHARED_STATE_CLASSES:
                return name
        return class_name if class_name in SHARED_STATE_CLASSES else None

    def lookup_method(
        self, class_name: str, method_name: str
    ) -> tuple[ClassInfo, ast.FunctionDef] | None:
        """A method resolved through the base chain (defining class first)."""
        for name in self.class_chain(class_name):
            info = self.tree.class_named(name)
            if info is None:
                continue
            method = info.method(method_name)
            if method is not None:
                return info, method
        return None

    def _class_for_token(self, module: ModuleInfo, name: str) -> str | None:
        if self.tree.class_named(name) is not None:
            return name
        imported = module.imports.get(name, "")
        tail = imported.rsplit(".", 1)[-1]
        if self.tree.class_named(tail) is not None:
            return tail
        return None

    def _annotation_class(
        self, module: ModuleInfo, annotation: str
    ) -> str | None:
        """The *outer* class an annotation denotes, if it is a tree class.

        Only the top of each union alternative counts: ``GeoDistanceIndex |
        None`` resolves, but ``dict[str, InferenceResult]`` does not — a
        container field is untyped holder state (``fieldof``), and typing it
        by its *value* class would misattribute writes to the values.
        """
        for alternative in annotation.strip().strip("\"'").split("|"):
            token = alternative.strip().split("[", 1)[0].strip("\"', ")
            token = token.rsplit(".", 1)[-1]
            if not token or token == "None":
                continue
            resolved = self._class_for_token(module, token)
            if resolved is not None:
                return resolved
        return None

    def field_classes(self, class_name: str) -> dict[str, str]:
        """``field -> class name`` for one class's class-typed fields."""
        cached = self._field_classes.get(class_name)
        if cached is not None:
            return cached
        classes: dict[str, str] = {}
        self._field_classes[class_name] = classes
        info = self.tree.class_named(class_name)
        if info is None:
            return classes
        module = self.tree.modules.get(info.module)
        if module is None:
            return classes
        for field_name, annotation in info.fields.items():
            resolved = self._annotation_class(module, annotation)
            if resolved is not None:
                classes[field_name] = resolved
        # Constructor-assigned fields take the class of the assigned value
        # (an annotated parameter, a constructor call, or a boolean/ternary
        # fallback chain of those: ``self.cache = cache or StepResultCache()``).
        for method_name in ("__init__", "__post_init__"):
            method = info.method(method_name)
            if method is None:
                continue
            params: dict[str, str] = {}
            args = method.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.annotation is not None:
                    resolved = self._annotation_class(
                        module, ast.unparse(arg.annotation)
                    )
                    if resolved is not None:
                        params[arg.arg] = resolved
            for node in walk_scope(method):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                resolved = self._value_class(module, params, value)
                if resolved is not None:
                    classes.setdefault(target.attr, resolved)
        # Inherit the ancestors' typed fields (nearest definition wins).
        for base in self.class_chain(class_name)[1:]:
            for field_name, resolved in self.field_classes(base).items():
                classes.setdefault(field_name, resolved)
        return classes

    def _value_class(
        self, module: ModuleInfo, params: dict[str, str], value: ast.expr
    ) -> str | None:
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return self._class_for_token(module, value.func.id)
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                resolved = self._value_class(module, params, operand)
                if resolved is not None:
                    return resolved
        if isinstance(value, ast.IfExp):
            return self._value_class(
                module, params, value.body
            ) or self._value_class(module, params, value.orelse)
        return None

    # ------------------------------------------------------------------ #
    # Function summaries
    # ------------------------------------------------------------------ #
    def summary(
        self, class_name: str | None, func_name: str, module_name: str = ""
    ) -> _FunctionSummary:
        key = (class_name, func_name, module_name if class_name is None else "")
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        result = _FunctionSummary()
        self._summaries[key] = result
        func: ast.FunctionDef | None = None
        module: ModuleInfo | None = None
        if class_name is not None:
            lookup = self.lookup_method(class_name, func_name)
            if lookup is not None:
                owner_info, func = lookup
                module = self.tree.modules.get(owner_info.module)
        else:
            module = self.tree.modules.get(module_name)
            if module is not None:
                for statement in module.node.body:
                    if (
                        isinstance(statement, ast.FunctionDef)
                        and statement.name == func_name
                    ):
                        func = statement
                        break
        if func is None or module is None:
            return result
        # The receiver class stays the *dispatch* class (class_name), not the
        # defining class, so subclass receivers resolve their own overrides
        # and canonicalise through their own base chain.
        walker = _ConcurrencyWalker(self, module, class_name, func, result)
        walker.run()
        return result

    def method_is_guarded(self, class_name: str | None, func_name: str) -> bool:
        """Whether (class, method) is declared lock-guarded."""
        if class_name is None:
            return False
        for name in self.class_chain(class_name) or (class_name,):
            if func_name in GUARDED_METHODS.get(name, frozenset()):
                return True
        return False


#: Resolved-value descriptors used by the walker:
#:   ("inst", class, fresh)        a typed object reference
#:   ("fieldof", class, fresh)     an untyped field of a typed object
#:   ("cls", class)                a class object (constructor on call)
#:   ("mth", class, name)          a bound method reference
_Value = tuple


class _ConcurrencyWalker:
    """Walks one function, recording shared writes, callees and lock state."""

    def __init__(
        self,
        analyzer: ConcurrencyAnalyzer,
        module: ModuleInfo,
        class_name: str | None,
        func: ast.FunctionDef,
        summary: _FunctionSummary,
    ) -> None:
        self.analyzer = analyzer
        self.module = module
        self.class_name = class_name
        self.func = func
        self.summary = summary
        self.lock_depth = 0
        self.in_guarded = analyzer.method_is_guarded(class_name, func.name)
        self.env: dict[str, _Value | None] = {}
        if class_name is not None:
            fresh = func.name in ("__init__", "__post_init__")
            self.env["self"] = ("inst", class_name, fresh)
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == "self":
                continue
            if arg.annotation is None:
                continue
            resolved = self.analyzer._annotation_class(
                self.module, ast.unparse(arg.annotation)
            )
            if resolved is not None:
                self.env[arg.arg] = ("inst", resolved, False)

    def run(self) -> None:
        for statement in self.func.body:
            self._stmt(statement)

    # -------------------------------------------------------------- #
    def _guarded_here(self) -> bool:
        return self.lock_depth > 0 or self.in_guarded

    def _event(self, node: ast.AST, owner: str, operation: str) -> None:
        self.summary.events.append(
            _WriteEvent(
                owner=owner,
                operation=operation,
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                guarded=self._guarded_here(),
            )
        )

    def _write(self, node: ast.AST, value: _Value | None, operation: str) -> None:
        """Record a write whose receiver resolved to ``value``, if shared."""
        if value is None:
            return
        if value[0] in ("inst", "fieldof"):
            _tag, class_name, fresh = value
            if fresh:
                return
            owner = self.analyzer.shared_name(class_name)
            if owner is not None:
                self._event(node, owner, operation)

    # -------------------------------------------------------------- #
    # Expressions
    # -------------------------------------------------------------- #
    def resolve(self, node: ast.expr | None) -> _Value | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if self.analyzer.tree.class_named(node.id) is not None:
                return ("cls", node.id)
            for statement in self.module.node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == node.id
                ):
                    return ("fn", self.module.module, node.id)
            imported = self.module.imports.get(node.id, "")
            if imported:
                tail = imported.rsplit(".", 1)[-1]
                if self.analyzer.tree.class_named(tail) is not None:
                    return ("cls", tail)
                source = imported.rsplit(".", 1)[0]
                source_module = self.analyzer.tree.modules.get(source)
                if source_module is not None:
                    for statement in source_module.node.body:
                        if (
                            isinstance(statement, ast.FunctionDef)
                            and statement.name == tail
                        ):
                            return ("fn", source, tail)
            return None
        if isinstance(node, ast.Attribute):
            return self._attr(self.resolve(node.value), node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self.resolve(node.test)
            body = self.resolve(node.body)
            orelse = self.resolve(node.orelse)
            return body if body is not None else orelse
        if isinstance(node, ast.BoolOp):
            values = [self.resolve(value) for value in node.values]
            return next((value for value in values if value is not None), None)
        if isinstance(node, ast.NamedExpr):
            value = self.resolve(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        if isinstance(node, ast.Lambda):
            self.resolve(node.body)
            return None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in node.generators:
                self.resolve(comp.iter)
                self._clear_target(comp.target)
                for condition in comp.ifs:
                    self.resolve(condition)
            self.resolve(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            for comp in node.generators:
                self.resolve(comp.iter)
                self._clear_target(comp.target)
                for condition in comp.ifs:
                    self.resolve(condition)
            self.resolve(node.key)
            self.resolve(node.value)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.resolve(child)
        return None

    def _attr(self, base: _Value | None, node: ast.Attribute) -> _Value | None:
        if base is None:
            return None
        if base[0] == "inst":
            _tag, class_name, fresh = base
            field_class = self.analyzer.field_classes(class_name).get(node.attr)
            if field_class is not None:
                # A class-typed field is an independently shared object —
                # freshness of the holder does not make *it* fresh.
                return ("inst", field_class, False)
            found = self.analyzer.lookup_method(class_name, node.attr)
            if found is not None:
                owner_info, method = found
                if any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    for dec in method.decorator_list
                ):
                    annotation = (
                        ast.unparse(method.returns) if method.returns else ""
                    )
                    returned = self.analyzer._annotation_class(
                        self.module, annotation
                    )
                    if returned is not None:
                        # A property exposes a sub-object the holder owns;
                        # it inherits the holder's freshness (a fresh
                        # report's journal is fresh, a shared dataset's is
                        # shared).
                        return ("inst", returned, fresh)
                    return ("fieldof", class_name, fresh)
                return ("mth", class_name, node.attr)
            return ("fieldof", class_name, fresh)
        if base[0] == "cls":
            return None
        return None

    def _method_callee(self, node: ast.Call, class_name: str, method_name: str) -> None:
        self.summary.callees.add((class_name, method_name, ""))
        if self.analyzer.method_is_guarded(class_name, method_name):
            owner = self.analyzer.shared_name(class_name) or class_name
            self.summary.guarded_calls.append(
                _GuardedCall(
                    owner=owner,
                    method=method_name,
                    path=self.module.path,
                    line=node.lineno,
                    guarded=self.lock_depth > 0 or self.in_guarded,
                )
            )

    def _call(self, node: ast.Call) -> _Value | None:
        for argument in node.args:
            unstarred = (
                argument.value if isinstance(argument, ast.Starred) else argument
            )
            self.resolve(unstarred)
        for keyword in node.keywords:
            self.resolve(keyword.value)
        func = node.func
        if isinstance(func, ast.Name) and func.id == "super":
            if self.class_name is not None:
                chain = self.analyzer.class_chain(self.class_name)
                if len(chain) > 1:
                    self_value = self.env.get("self")
                    fresh = bool(
                        self_value and self_value[0] == "inst" and self_value[2]
                    )
                    return ("inst", chain[1], fresh)
            return None
        if isinstance(func, ast.Attribute):
            base = self.resolve(func.value)
            if base is None:
                return None
            if base[0] == "inst":
                _tag, class_name, _fresh = base
                if self.analyzer.lookup_method(class_name, func.attr) is not None:
                    self._method_callee(node, class_name, func.attr)
                    return None
                if func.attr in MUTATING_METHODS:
                    # A mutating builtin name with no in-tree definition:
                    # treat the shared object itself as the written state.
                    self._write(node, base, f".{func.attr}()")
                return None
            if base[0] == "fieldof":
                # A call on an untyped field of a typed object: mutating
                # names are writes to the holder (``self._memo.clear()``).
                if func.attr in MUTATING_METHODS:
                    self._write(node, base, f".{func.attr}()")
                return None
            return None
        target = self.resolve(func)
        if target is None:
            return None
        if target[0] == "cls":
            _tag, class_name = target
            for hook in ("__init__", "__post_init__"):
                if self.analyzer.lookup_method(class_name, hook) is not None:
                    self.summary.callees.add((class_name, hook, ""))
            return ("inst", class_name, True)
        if target[0] == "fn":
            _tag, module_name, func_name = target
            self.summary.callees.add((None, func_name, module_name))
            return None
        return None

    # -------------------------------------------------------------- #
    # Statements
    # -------------------------------------------------------------- #
    def _clear_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = None
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.resolve(target.value)

    def _check_write_target(
        self, target: ast.expr, node: ast.stmt, operation: str
    ) -> None:
        if isinstance(target, ast.Attribute):
            self._write(node, self.resolve(target.value), operation)
        elif isinstance(target, ast.Subscript):
            base = self.resolve(target.value)
            if base is not None and base[0] == "mth":
                base = None
            self._write(node, base, f"{operation}-item")
            self.resolve(target.slice)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.resolve(node.value)
            for target in node.targets:
                self._check_write_target(target, node, "rebind")
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self.env[node.targets[0].id] = value
            else:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.env[target.id] = value
                    else:
                        self._clear_target(target)
        elif isinstance(node, ast.AnnAssign):
            value = self.resolve(node.value)
            self._check_write_target(node.target, node, "rebind")
            if isinstance(node.target, ast.Name):
                if value is None and node.annotation is not None:
                    resolved = self.analyzer._annotation_class(
                        self.module, ast.unparse(node.annotation)
                    )
                    if resolved is not None:
                        value = ("inst", resolved, False)
                self.env[node.target.id] = value
        elif isinstance(node, ast.AugAssign):
            self.resolve(node.value)
            self._check_write_target(node.target, node, "augmented-rebind")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_write_target(target, node, "del")
                if isinstance(target, ast.Name):
                    self.env[target.id] = None
        elif isinstance(node, ast.Expr):
            self.resolve(node.value)
        elif isinstance(node, ast.Return):
            self.resolve(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.resolve(node.test)
            for statement in (*node.body, *node.orelse):
                self._stmt(statement)
        elif isinstance(node, ast.For):
            self.resolve(node.iter)
            self._clear_target(node.target)
            for statement in (*node.body, *node.orelse):
                self._stmt(statement)
        elif isinstance(node, ast.With):
            locked = any(_lock_named(item.context_expr) for item in node.items)
            for item in node.items:
                self.resolve(item.context_expr)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars)
            if locked:
                self.lock_depth += 1
            for statement in node.body:
                self._stmt(statement)
            if locked:
                self.lock_depth -= 1
        elif isinstance(node, ast.Try):
            for statement in (*node.body, *node.orelse, *node.finalbody):
                self._stmt(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._stmt(statement)
        elif isinstance(node, ast.Raise):
            self.resolve(node.exc)
            self.resolve(node.cause)
        elif isinstance(node, ast.Assert):
            self.resolve(node.test)
            self.resolve(node.msg)
        # Nested defs, imports, pass/break/continue: separate scopes or inert.


# --------------------------------------------------------------------- #
# The rule
# --------------------------------------------------------------------- #
def _reachable(
    analyzer: ConcurrencyAnalyzer,
    roots: list[_FuncKey],
    cut: frozenset[_FuncKey],
) -> list[_FuncKey]:
    """BFS over the callee graph from ``roots``, never expanding ``cut``."""
    seen: list[_FuncKey] = []
    visited: set[_FuncKey] = set()
    queue = list(roots)
    while queue:
        key = queue.pop(0)
        if key in visited:
            continue
        visited.add(key)
        seen.append(key)
        for callee in sorted(
            analyzer.summary(*key).callees,
            key=lambda item: (item[0] or "", item[1], item[2]),
        ):
            if callee not in visited and callee not in cut:
                queue.append(callee)
    return seen


def check_concurrency_discipline(tree: SourceTree) -> list[Violation]:
    """Run rule family 4 over a source tree."""
    analyzer = ConcurrencyAnalyzer(tree)
    declarations = parse_step_graph(tree)
    engine = tree.modules.get(f"{tree.package}.core.engine")
    if engine is None:
        raise ContractCheckError("repro.core.engine not found in the source tree")
    engine_path = tree.display_path(engine.path)
    violations: list[Violation] = []
    seen_writes: set[str] = set()

    # ----- table validation: every GUARDED_METHODS entry must exist ----- #
    for class_name in sorted(GUARDED_METHODS):
        for method_name in sorted(GUARDED_METHODS[class_name]):
            found = analyzer.lookup_method(class_name, method_name)
            if found is None:
                info = tree.class_named(class_name)
                path = tree.display_path(info.path) if info else engine_path
                line = info.node.lineno if info else 0
                violations.append(
                    Violation(
                        rule="concurrency",
                        kind="unknown-guarded-method",
                        path=path,
                        line=line,
                        context=class_name,
                        detail=method_name,
                        message=(
                            f"GUARDED_METHODS declares {class_name}.{method_name} "
                            "lock-guarded but no such method exists in the tree; "
                            "the table has drifted from the code"
                        ),
                    )
                )

    # ----- table validation: process-local functions must exist ----- #
    engine_functions = {
        statement.name
        for statement in engine.node.body
        if isinstance(statement, ast.FunctionDef)
    }
    for name in sorted(PROCESS_LOCAL_FUNCTIONS):
        if name not in engine_functions:
            violations.append(
                Violation(
                    rule="concurrency",
                    kind="unknown-process-local",
                    path=engine_path,
                    line=0,
                    context=SCHEDULER_CONTEXT,
                    detail=name,
                    message=(
                        f"PROCESS_LOCAL_FUNCTIONS declares {name!r} a "
                        "worker-process entry point but repro.core.engine "
                        "defines no such function; the process-boundary cut "
                        "has drifted from the code"
                    ),
                )
            )

    # ----- per-node reachability: writes must be guarded or confined ----- #
    implementations = frozenset(
        ("PipelineEngine", method, "") for method in STEP_IMPLEMENTATIONS.values()
    )
    process_boundary: frozenset[_FuncKey] = frozenset(
        (None, name, engine.module) for name in PROCESS_LOCAL_FUNCTIONS
    )
    per_ixp = [
        decl for decl in declarations.values() if decl.scope == "per-ixp"
    ]
    _Context = tuple[str, list[_FuncKey], frozenset[_FuncKey], tuple[str, ...], int]
    contexts: list[_Context] = [
        (
            SCHEDULER_CONTEXT,
            [("PipelineEngine", "_map_per_ixp", "")],
            implementations | process_boundary,
            (),
            0,
        )
    ]
    for decl in sorted(per_ixp, key=lambda d: d.name):
        method = STEP_IMPLEMENTATIONS.get(decl.name)
        if method is None:
            continue  # stepdecl's missing-implementation finding covers this
        contexts.append(
            (
                decl.name,
                [("PipelineEngine", method, "")],
                frozenset(),
                decl.thread_confined,
                decl.line,
            )
        )

    for context, roots, cut, confined, decl_line in contexts:
        confined_set = frozenset(confined)
        used: set[str] = set()
        for key in _reachable(analyzer, roots, cut):
            for event in analyzer.summary(*key).events:
                if event.guarded:
                    continue
                if event.owner in confined_set:
                    used.add(event.owner)
                    continue
                display = tree.display_path(event.path)
                dedupe = f"{display}:{event.line}:{event.owner}:{event.operation}"
                if dedupe in seen_writes:
                    continue
                seen_writes.add(dedupe)
                violations.append(
                    Violation(
                        rule="concurrency",
                        kind="unguarded-shared-write",
                        path=display,
                        line=event.line,
                        context=context,
                        detail=f"{event.owner}:{event.operation}",
                        message=(
                            f"write ({event.operation}) to shared "
                            f"{event.owner} state reached from the parallel "
                            f"{context!r} call graph outside any lock region, "
                            "lock-guarded method or thread_confined "
                            "declaration — guard it with the owner's lock "
                            "(compute-then-store-under-lock) or declare the "
                            "class thread-confined on the StepSpec"
                        ),
                    )
                )
        for name in sorted(confined_set - used):
            violations.append(
                Violation(
                    rule="concurrency",
                    kind="unused-confinement",
                    path=engine_path,
                    line=decl_line,
                    context=context,
                    detail=name,
                    message=(
                        f"step {context!r} declares {name!r} thread-confined "
                        "but its call graph never mutates an instance of it; "
                        "drop the declaration so it cannot mask a future "
                        "unguarded write"
                    ),
                )
            )

    # ----- whole-tree: guarded methods must be called under the lock ----- #
    all_keys: set[_FuncKey] = set()
    for name, definitions in tree.classes_by_name.items():
        for info in definitions:
            for statement in info.node.body:
                if isinstance(statement, ast.FunctionDef):
                    all_keys.add((name, statement.name, ""))
    for key in sorted(all_keys, key=lambda item: (item[0] or "", item[1])):
        for call in analyzer.summary(*key).guarded_calls:
            if call.guarded:
                continue
            display = tree.display_path(call.path)
            violations.append(
                Violation(
                    rule="concurrency",
                    kind="unguarded-guarded-call",
                    path=display,
                    line=call.line,
                    context=f"{key[0]}.{key[1]}",
                    detail=f"{call.owner}.{call.method}",
                    message=(
                        f"{call.owner}.{call.method} is declared lock-guarded "
                        "(GUARDED_METHODS: its callers must hold the lock) but "
                        "this call site is neither inside a lock region nor "
                        "inside a fellow guarded method"
                    ),
                )
            )

    violations.sort(key=lambda v: (v.path, v.line, v.kind, v.detail))
    return violations
