"""Wide-area IXP classification (Section 4.2, Fig. 2b).

An IXP is *wide-area* when its switching fabric spans facilities located in
different metropolitan areas — operationally, when at least two of its
facilities are more than 50 km apart.  The classification runs on the
*observed* colocation dataset (the same view the inference uses), so missing
facilities or bad coordinates affect it exactly as they would in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import WIDE_AREA_FACILITY_DISTANCE_KM
from repro.datasources.merge import ObservedDataset
from repro.geo.coordinates import geodesic_distance_km


@dataclass(frozen=True)
class WideAreaRecord:
    """Wide-area classification of one IXP."""

    ixp_id: str
    facility_count: int
    located_facility_count: int
    max_facility_distance_km: float
    member_count: int
    is_wide_area: bool


def classify_wide_area_ixps(
    dataset: ObservedDataset,
    *,
    threshold_km: float = WIDE_AREA_FACILITY_DISTANCE_KM,
    min_members: int = 2,
) -> dict[str, WideAreaRecord]:
    """Classify every IXP in the observed dataset.

    Parameters
    ----------
    dataset:
        The merged observed dataset.
    threshold_km:
        Facilities farther apart than this are in different metro areas.
    min_members:
        IXPs with fewer observed members are skipped (the paper restricts the
        statistic to IXPs with at least two members).
    """
    records: dict[str, WideAreaRecord] = {}
    for ixp_id in dataset.ixp_ids():
        members = dataset.members_of_ixp(ixp_id)
        if len(members) < min_members:
            continue
        facilities = sorted(dataset.facilities_of_ixp(ixp_id))
        locations = [
            dataset.facility_location(f) for f in facilities
            if dataset.facility_location(f) is not None
        ]
        max_distance = 0.0
        for i, a in enumerate(locations):
            for b in locations[i + 1:]:
                max_distance = max(max_distance, geodesic_distance_km(a, b))
        records[ixp_id] = WideAreaRecord(
            ixp_id=ixp_id,
            facility_count=len(facilities),
            located_facility_count=len(locations),
            max_facility_distance_km=max_distance,
            member_count=len(members),
            is_wide_area=max_distance > threshold_km,
        )
    return records


def wide_area_fraction(records: dict[str, WideAreaRecord]) -> float:
    """Fraction of classified IXPs that are wide-area."""
    if not records:
        return 0.0
    return sum(1 for r in records.values() if r.is_wide_area) / len(records)


def wide_area_fraction_among_largest(
    records: dict[str, WideAreaRecord], count: int
) -> float:
    """Fraction of the ``count`` largest IXPs (by members) that are wide-area."""
    if not records:
        return 0.0
    largest = sorted(records.values(), key=lambda r: -r.member_count)[:count]
    if not largest:
        return 0.0
    return sum(1 for r in largest if r.is_wide_area) / len(largest)
