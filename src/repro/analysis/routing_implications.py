"""Routing implications of remote peering (Section 6.4).

For the largest studied IXP (the DE-CIX Frankfurt of the paper), take every
member inferred *remote* (``AS_R``) and every other member ``AS_x`` that
shares at least one additional IXP with it.  Traceroute from ``AS_R`` towards
a prefix of ``AS_x`` and look at the IXP actually crossed:

* **hot-potato compliant** — the crossing uses the common IXP closest to
  ``AS_R``;
* **remote detour** — the crossing uses the remote-peering connection at the
  big IXP although another common IXP is closer to ``AS_R``;
* **missed big IXP** — the crossing uses another IXP although the big IXP is
  the closest option.

The paper finds roughly 66% / 18% / 16% for the three buckets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.pipeline import PipelineOutcome
from repro.core.types import PeeringClassification
from repro.datasources.merge import ObservedDataset
from repro.datasources.prefix2as import Prefix2ASMap
from repro.exceptions import ReproError
from repro.geo.coordinates import geodesic_distance_km
from repro.measurement.traceroute import TracerouteCampaign
from repro.traixroute.detector import CrossingDetector


@dataclass
class RoutingImplications:
    """Aggregated Section 6.4 statistics."""

    big_ixp_id: str
    pairs_probed: int = 0
    crossings_analysed: int = 0
    hot_potato_compliant: int = 0
    remote_detour_via_big_ixp: int = 0
    missed_closer_big_ixp: int = 0
    other_non_compliant: int = 0

    def shares(self) -> dict[str, float]:
        """Bucket shares over the analysed crossings."""
        total = self.crossings_analysed
        if total == 0:
            return {"hot_potato": 0.0, "remote_detour": 0.0, "missed_big_ixp": 0.0, "other": 0.0}
        return {
            "hot_potato": self.hot_potato_compliant / total,
            "remote_detour": self.remote_detour_via_big_ixp / total,
            "missed_big_ixp": self.missed_closer_big_ixp / total,
            "other": self.other_non_compliant / total,
        }


@dataclass
class RoutingImplicationsAnalysis:
    """Runs the targeted traceroutes and classifies each observed crossing."""

    outcome: PipelineOutcome
    dataset: ObservedDataset
    prefix2as: Prefix2ASMap
    campaign: TracerouteCampaign
    max_pairs: int = 1500
    seed: int = 64

    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    def run(self, big_ixp_id: str | None = None) -> RoutingImplications:
        """Run the full Section 6.4 analysis."""
        big_ixp = big_ixp_id or self._largest_ixp()
        pairs = self._candidate_pairs(big_ixp)
        if len(pairs) > self.max_pairs:
            pairs = self._rng.sample(pairs, k=self.max_pairs)
        result = RoutingImplications(big_ixp_id=big_ixp, pairs_probed=len(pairs))
        if not pairs:
            return result

        corpus = self.campaign.run_pairs(pairs)
        detector = CrossingDetector(self.dataset, self.prefix2as)
        pair_set = set(pairs)
        for path in corpus.paths:
            for crossing in detector.detect(path):
                key = (crossing.entry_asn, crossing.far_asn)
                if key not in pair_set:
                    continue
                self._classify_crossing(result, big_ixp, crossing)
        return result

    # ------------------------------------------------------------------ #
    def _largest_ixp(self) -> str:
        ixp_ids = self.outcome.ixp_ids
        if not ixp_ids:
            raise ReproError("the pipeline outcome covers no IXPs")
        return max(ixp_ids, key=lambda i: len(self.dataset.members_of_ixp(i)))

    def _candidate_pairs(self, big_ixp: str) -> list[tuple[int, int]]:
        """(remote member, other member) pairs that share one more common IXP."""
        remote_members = {
            r.asn for r in self.outcome.report.results_for_ixp(big_ixp)
            if r.classification is PeeringClassification.REMOTE
        }
        members = self.dataset.members_of_ixp(big_ixp)
        ixps_per_member: dict[int, set[str]] = {}
        for ixp_id in self.outcome.ixp_ids:
            for asn in self.dataset.members_of_ixp(ixp_id):
                ixps_per_member.setdefault(asn, set()).add(ixp_id)

        pairs: list[tuple[int, int]] = []
        for remote_asn in sorted(remote_members):
            for other_asn in sorted(members):
                if other_asn == remote_asn:
                    continue
                common = ixps_per_member.get(remote_asn, set()) & ixps_per_member.get(
                    other_asn, set())
                common.discard(big_ixp)
                if common:
                    pairs.append((remote_asn, other_asn))
        return pairs

    def _common_ixps(self, asn_a: int, asn_b: int) -> set[str]:
        common: set[str] = set()
        for ixp_id in self.outcome.ixp_ids:
            members = self.dataset.members_of_ixp(ixp_id)
            if asn_a in members and asn_b in members:
                common.add(ixp_id)
        return common

    def _distance_to_ixp(self, asn: int, ixp_id: str) -> float | None:
        """Minimum distance between the AS's facilities and the IXP's."""
        as_facilities = self.dataset.facilities_of_as(asn)
        ixp_facilities = self.dataset.facilities_of_ixp(ixp_id)
        best: float | None = None
        for fa in as_facilities:
            loc_a = self.dataset.facility_location(fa)
            if loc_a is None:
                continue
            for fb in ixp_facilities:
                loc_b = self.dataset.facility_location(fb)
                if loc_b is None:
                    continue
                distance = geodesic_distance_km(loc_a, loc_b)
                if best is None or distance < best:
                    best = distance
        return best

    def _classify_crossing(self, result: RoutingImplications, big_ixp: str, crossing) -> None:
        remote_asn = crossing.entry_asn
        other_asn = crossing.far_asn
        used_ixp = crossing.ixp_id
        common = self._common_ixps(remote_asn, other_asn)
        if used_ixp not in common or len(common) < 2:
            return
        distances = {
            ixp_id: self._distance_to_ixp(remote_asn, ixp_id) for ixp_id in sorted(common)
        }
        known = {i: d for i, d in distances.items() if d is not None}
        if len(known) < 2:
            return
        closest = min(known, key=known.get)
        result.crossings_analysed += 1
        if used_ixp == closest:
            result.hot_potato_compliant += 1
        elif used_ixp == big_ixp:
            result.remote_detour_via_big_ixp += 1
        elif closest == big_ixp:
            result.missed_closer_big_ixp += 1
        else:
            result.other_non_compliant += 1
