"""Analyses built on top of the inference results (Section 6 of the paper).

* :mod:`repro.analysis.ecdf` — empirical CDF helpers used by several figures.
* :mod:`repro.analysis.wide_area` — wide-area IXP classification (Fig. 2b).
* :mod:`repro.analysis.features` — features of remote/local/hybrid members:
  colocation footprints (Fig. 1a), customer cones (Fig. 11a), traffic levels
  (Fig. 11b), country distributions.
* :mod:`repro.analysis.evolution` — growth and departure of remote vs local
  members over time (Fig. 12a).
* :mod:`repro.analysis.routing_implications` — the DE-CIX-style hot-potato /
  detour study of Section 6.4.
"""

from repro.analysis.ecdf import ECDF
from repro.analysis.wide_area import WideAreaRecord, classify_wide_area_ixps
from repro.analysis.features import MemberFeatureAnalysis
from repro.analysis.evolution import EvolutionAnalysis, EvolutionSeries
from repro.analysis.routing_implications import RoutingImplicationsAnalysis, RoutingImplications

__all__ = [
    "ECDF",
    "WideAreaRecord",
    "classify_wide_area_ixps",
    "MemberFeatureAnalysis",
    "EvolutionAnalysis",
    "EvolutionSeries",
    "RoutingImplicationsAnalysis",
    "RoutingImplications",
]
