"""Features of remote, local and hybrid IXP members (Section 6.2).

Having classified every member *interface*, the paper aggregates to member
*networks*: an AS is "remote" when all its inferred connections are remote,
"local" when all are local, and "hybrid" when it holds both kinds.  It then
compares the three groups by customer-cone size (CAIDA), self-reported
traffic level (PeeringDB), served user population (APNIC) and headquarters
country, and also reports how many facilities IXPs and ASes are present at
(Fig. 1a).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.ecdf import ECDF
from repro.core.types import InferenceReport
from repro.datasources.merge import ObservedDataset
from repro.topology.entities import TrafficLevel


@dataclass
class MemberFeatureAnalysis:
    """Aggregated member-level feature comparisons."""

    report: InferenceReport
    dataset: ObservedDataset

    # ------------------------------------------------------------------ #
    # Member-level classification
    # ------------------------------------------------------------------ #
    def member_classes(self) -> dict[int, str]:
        """ASN -> "local" / "remote" / "hybrid" for every inferred member."""
        asns = {result.asn for result in self.report.inferred()}
        return {asn: self.report.classification_of_as(asn) for asn in sorted(asns)}

    def class_shares(self) -> dict[str, float]:
        """Fraction of member networks per class."""
        classes = [c for c in self.member_classes().values() if c != "unknown"]
        if not classes:
            return {}
        counts = Counter(classes)
        return {label: counts.get(label, 0) / len(classes)
                for label in ("local", "remote", "hybrid")}

    # ------------------------------------------------------------------ #
    # Colocation footprints (Fig. 1a)
    # ------------------------------------------------------------------ #
    def facility_count_ecdf_for_ixps(self) -> ECDF:
        """ECDF of the number of facilities per IXP."""
        counts = [
            float(len(self.dataset.facilities_of_ixp(ixp_id)))
            for ixp_id in self.dataset.ixp_ids()
            if self.dataset.facilities_of_ixp(ixp_id)
        ]
        return ECDF.from_values(counts)

    def facility_count_ecdf_for_ases(self) -> ECDF:
        """ECDF of the number of facilities per AS (ASes with data only)."""
        counts = [
            float(len(facilities))
            for facilities in self.dataset.as_facilities.values()
            if facilities
        ]
        return ECDF.from_values(counts)

    # ------------------------------------------------------------------ #
    # Customer cones (Fig. 11a), traffic (Fig. 11b), populations, countries
    # ------------------------------------------------------------------ #
    def customer_cones_by_class(self) -> dict[str, list[int]]:
        """Customer-cone sizes grouped by member class."""
        result: dict[str, list[int]] = {"local": [], "remote": [], "hybrid": []}
        for asn, label in self.member_classes().items():
            if label not in result:
                continue
            result[label].append(self.dataset.customer_cone_sizes.get(asn, 1))
        return result

    def median_cone_by_class(self) -> dict[str, float]:
        """Median customer-cone size per member class."""
        medians: dict[str, float] = {}
        for label, cones in self.customer_cones_by_class().items():
            if cones:
                medians[label] = ECDF.from_values([float(c) for c in cones]).median
        return medians

    def mean_cone_by_class(self) -> dict[str, float]:
        """Mean customer-cone size per member class.

        The mean is dominated by the few very large networks, which is exactly
        the "hybrid members are large ISPs" signal of Section 6.2.
        """
        means: dict[str, float] = {}
        for label, cones in self.customer_cones_by_class().items():
            if cones:
                means[label] = sum(cones) / len(cones)
        return means

    def traffic_levels_by_class(self) -> dict[str, Counter]:
        """Distribution of self-reported traffic levels per member class."""
        result: dict[str, Counter] = {"local": Counter(), "remote": Counter(), "hybrid": Counter()}
        for asn, label in self.member_classes().items():
            if label not in result:
                continue
            level = self.dataset.traffic_levels.get(asn)
            if level is not None:
                result[label][level] += 1
        return result

    def median_traffic_rank_by_class(self) -> dict[str, float]:
        """Median traffic-bucket ordinal per member class."""
        medians: dict[str, float] = {}
        for label, counter in self.traffic_levels_by_class().items():
            values: list[float] = []
            for level, count in counter.items():
                values.extend([float(level.ordinal)] * count)
            if values:
                medians[label] = ECDF.from_values(values).median
        return medians

    def user_populations_by_class(self) -> dict[str, list[int]]:
        """Estimated user populations per member class."""
        result: dict[str, list[int]] = {"local": [], "remote": [], "hybrid": []}
        for asn, label in self.member_classes().items():
            if label not in result:
                continue
            population = self.dataset.user_populations.get(asn)
            if population is not None:
                result[label].append(population)
        return result

    def top_countries_by_class(self, top: int = 5) -> dict[str, list[tuple[str, float]]]:
        """Most common headquarters countries per member class (with shares)."""
        result: dict[str, list[tuple[str, float]]] = {}
        per_class: dict[str, Counter] = {"local": Counter(), "remote": Counter(),
                                         "hybrid": Counter()}
        for asn, label in self.member_classes().items():
            if label not in per_class:
                continue
            country = self.dataset.countries.get(asn)
            if country:
                per_class[label][country] += 1
        for label, counter in per_class.items():
            total = sum(counter.values())
            if total == 0:
                result[label] = []
                continue
            result[label] = [(country, count / total)
                             for country, count in counter.most_common(top)]
        return result

    # ------------------------------------------------------------------ #
    # Traffic-level helper for rendering Fig. 11b style tables
    # ------------------------------------------------------------------ #
    @staticmethod
    def traffic_level_labels() -> list[str]:
        """Ordered labels of the traffic buckets."""
        return [level.value for level in TrafficLevel]
