"""Evolution of remote vs local peering over time (Section 6.3, Fig. 12a).

The paper tracks, over roughly a year of daily RTT measurements and PeeringDB
dumps, how many new members join (and leave) each IXP per peering type,
finding that remote membership grows about twice as fast as local membership
and that remote members also leave more often (+25% departure rate).

Here the longitudinal signal comes from the membership join/departure months
recorded in the ground-truth world.  Peering types are taken from the
inference report where the interface was classified; memberships outside the
report's coverage (e.g. members that departed before the measurement
campaign) fall back to the operator-style ground-truth label, mirroring how
the paper combines inference with operator feeds for the longitudinal view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import InferenceReport, PeeringClassification
from repro.exceptions import ReproError
from repro.topology.world import World


@dataclass
class EvolutionSeries:
    """Monthly membership evolution for one peering type."""

    label: str
    months: list[int] = field(default_factory=list)
    active_members: list[int] = field(default_factory=list)
    cumulative_joins: list[int] = field(default_factory=list)
    cumulative_departures: list[int] = field(default_factory=list)

    @property
    def net_growth(self) -> int:
        """Members gained between the first and last month."""
        if not self.active_members:
            return 0
        return self.active_members[-1] - self.active_members[0]

    @property
    def total_joins(self) -> int:
        """Members that joined after the first month."""
        if not self.cumulative_joins:
            return 0
        return self.cumulative_joins[-1]

    @property
    def total_departures(self) -> int:
        """Members that departed during the window."""
        if not self.cumulative_departures:
            return 0
        return self.cumulative_departures[-1]

    def departure_rate(self) -> float:
        """Departures normalised by the initial member count."""
        if not self.active_members or self.active_members[0] == 0:
            return 0.0
        return self.total_departures / self.active_members[0]


@dataclass
class EvolutionAnalysis:
    """Builds the Fig. 12a growth/departure series."""

    world: World
    report: InferenceReport | None = None
    ixp_ids: list[str] | None = None

    def _is_remote(self, membership) -> bool:
        if self.report is not None:
            classification = self.report.classification_of(
                membership.ixp_id, membership.interface_ip)
            if classification is not PeeringClassification.UNKNOWN:
                return classification is PeeringClassification.REMOTE
        return membership.is_remote

    def _memberships(self):
        wanted = set(self.ixp_ids) if self.ixp_ids is not None else None
        for membership in self.world.memberships:
            if wanted is None or membership.ixp_id in wanted:
                yield membership

    def series(self) -> dict[str, EvolutionSeries]:
        """Monthly series for remote and local members."""
        months = self._months()
        series = {
            "local": EvolutionSeries(label="local"),
            "remote": EvolutionSeries(label="remote"),
        }
        memberships = list(self._memberships())
        for month in months:
            counts = {"local": 0, "remote": 0}
            joins = {"local": 0, "remote": 0}
            departures = {"local": 0, "remote": 0}
            for membership in memberships:
                label = "remote" if self._is_remote(membership) else "local"
                if membership.active_in_month(month):
                    counts[label] += 1
                if 0 < membership.joined_month <= month:
                    joins[label] += 1
                if membership.departed_month is not None and membership.departed_month <= month:
                    departures[label] += 1
            for label in ("local", "remote"):
                series[label].months.append(month)
                series[label].active_members.append(counts[label])
                series[label].cumulative_joins.append(joins[label])
                series[label].cumulative_departures.append(departures[label])
        return series

    def _months(self) -> list[int]:
        last = 0
        for membership in self._memberships():
            last = max(last, membership.joined_month)
            if membership.departed_month is not None:
                last = max(last, membership.departed_month)
        if last == 0:
            raise ReproError("the world has no longitudinal membership information")
        return list(range(last + 1))

    # ------------------------------------------------------------------ #
    # Headline numbers
    # ------------------------------------------------------------------ #
    def growth_ratio(self) -> float:
        """How many times faster remote membership grows than local membership.

        Measured, as in the paper's Fig. 12a, by the number of *new members*
        (joins) per peering type over the observation window.
        """
        series = self.series()
        local_joins = series["local"].total_joins
        remote_joins = series["remote"].total_joins
        if local_joins == 0:
            return float("inf") if remote_joins > 0 else 0.0
        return remote_joins / local_joins

    def departure_ratio(self) -> float:
        """Remote departure rate relative to the local departure rate."""
        series = self.series()
        local_rate = series["local"].departure_rate()
        remote_rate = series["remote"].departure_rate()
        if local_rate == 0:
            return float("inf") if remote_rate > 0 else 0.0
        return remote_rate / local_rate
