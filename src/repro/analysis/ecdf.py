"""Empirical cumulative distribution functions.

Several of the paper's figures are ECDFs (minimum RTTs in Fig. 1b and 9b,
customer cones in Fig. 11a).  This tiny helper provides exactly what those
figures need: evaluation at arbitrary points, quantiles, and a fixed-size
sampling of the curve for serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError


@dataclass(frozen=True)
class ECDF:
    """An empirical CDF over a finite sample."""

    sorted_values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: list[float] | tuple[float, ...]) -> "ECDF":
        """Build an ECDF from raw observations."""
        if not values:
            raise ReproError("cannot build an ECDF from an empty sample")
        return cls(sorted_values=tuple(sorted(float(v) for v in values)))

    def __len__(self) -> int:
        return len(self.sorted_values)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        count = 0
        for value in self.sorted_values:
            if value <= threshold:
                count += 1
            else:
                break
        return count / len(self.sorted_values)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) using the nearest-rank method."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self.sorted_values[0]
        rank = max(1, int(round(q * len(self.sorted_values))))
        return self.sorted_values[min(rank, len(self.sorted_values)) - 1]

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def curve(self, points: int = 50) -> list[tuple[float, float]]:
        """A fixed-size (value, cumulative fraction) sampling of the ECDF."""
        if points < 2:
            raise ReproError("points must be at least 2")
        n = len(self.sorted_values)
        curve: list[tuple[float, float]] = []
        for i in range(points):
            index = min(n - 1, int(round(i * (n - 1) / (points - 1))))
            curve.append((self.sorted_values[index], (index + 1) / n))
        return curve
