"""End-to-end study driver.

:class:`RemotePeeringStudy` reproduces the paper's workflow in one object:

1. generate (or accept) a ground-truth world,
2. snapshot and merge the public data sources into the observed dataset,
3. plan vantage points and run the ping and traceroute campaigns,
4. run the five-step inference pipeline on the 30 largest IXPs with usable
   vantage points,
5. export validation labels and evaluate the results.

Every stage is computed lazily and cached, so experiments and examples can
share one study object and only pay for what they use.  All randomness
derives from the configuration seed, making studies fully reproducible.
"""

from __future__ import annotations

from functools import cached_property

from collections.abc import Sequence

from repro.alias.midar import AliasResolver
from repro.config import ExperimentConfig, InferenceConfig
from repro.core.engine import PipelineEngine, SweepRunner
from repro.core.inputs import InferenceInputs
from repro.core.pipeline import PipelineOutcome, RemotePeeringPipeline
from repro.datasources.merge import MergeStatistics, ObservedDataset, build_observed_dataset
from repro.datasources.prefix2as import Prefix2ASMap, Prefix2ASSource
from repro.geo.delay_model import DelayModel
from repro.geo.distindex import GeoDistanceIndex
from repro.geo.worldindex import WorldDistanceIndex
from repro.measurement.ping import PingCampaign
from repro.measurement.results import PingCampaignResult, TracerouteCorpus
from repro.measurement.traceroute import TracerouteCampaign
from repro.measurement.vantage import VantagePoint, VantagePointPlanner
from repro.topology.generator import WorldGenerator
from repro.topology.world import World
from repro.validation.dataset import ValidationDataset, ValidationDatasetBuilder


class RemotePeeringStudy:
    """Lazily assembles the full reproduction workflow."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        world: World | None = None,
        delay_model: DelayModel | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self._world = world
        self.delay_model = delay_model or DelayModel()

    # ------------------------------------------------------------------ #
    # Ground truth and observables
    # ------------------------------------------------------------------ #
    @cached_property
    def world(self) -> World:
        """The ground-truth world (generated unless one was injected)."""
        if self._world is not None:
            return self._world
        return WorldGenerator(self.config.generator).generate()

    @cached_property
    def _merged(self) -> tuple[ObservedDataset, MergeStatistics]:
        return build_observed_dataset(self.world, self.config.noise)

    @property
    def dataset(self) -> ObservedDataset:
        """The merged observed dataset (public-database view)."""
        return self._merged[0]

    @property
    def merge_statistics(self) -> MergeStatistics:
        """Per-source contribution statistics (Table 1)."""
        return self._merged[1]

    @cached_property
    def prefix2as(self) -> Prefix2ASMap:
        """Routeviews-style IP-to-AS mapping."""
        return Prefix2ASSource(self.world).snapshot()

    @cached_property
    def alias_resolver(self) -> AliasResolver:
        """MIDAR-style alias resolution service."""
        return AliasResolver(self.world)

    # ------------------------------------------------------------------ #
    # Measurement campaigns
    # ------------------------------------------------------------------ #
    @cached_property
    def vantage_plan(self) -> dict[str, list[VantagePoint]]:
        """Planned vantage points for every IXP in the world."""
        planner = VantagePointPlanner(self.world, self.config.campaign)
        return planner.plan(sorted(self.world.ixps))

    @cached_property
    def studied_ixp_ids(self) -> list[str]:
        """The N largest IXPs that have at least one vantage point."""
        with_vps = {
            ixp_id for ixp_id, vps in self.vantage_plan.items()
            if any(not vp.is_dead for vp in vps)
        }
        ordered = [ixp.ixp_id for ixp in self.world.ixps_by_member_count()
                   if ixp.ixp_id in with_vps]
        return ordered[: self.config.studied_ixp_count]

    @cached_property
    def ping_result(self) -> PingCampaignResult:
        """The Step 2 ping campaign over the studied IXPs."""
        campaign = PingCampaign(self.world, self.config.campaign, delay_model=self.delay_model)
        plan = {ixp_id: self.vantage_plan.get(ixp_id, []) for ixp_id in self.studied_ixp_ids}
        return campaign.run(self.studied_ixp_ids, vantage_plan=plan)

    @cached_property
    def world_distance_index(self) -> WorldDistanceIndex:
        """The shared ground-truth facility-distance index.

        Serves every per-hop distance of every forwarding simulation run on
        this study (the public corpus, the Section 6.4 pair traceroutes).
        Kept strictly separate from :attr:`geo_index`, which answers for the
        *observed* dataset: ground truth must not leak into inference, nor
        observation noise into synthetic measurements.
        """
        return WorldDistanceIndex(self.world)

    @cached_property
    def traceroute_corpus(self) -> TracerouteCorpus:
        """The public (Atlas-like) traceroute corpus."""
        campaign = TracerouteCampaign(self.world, self.config.campaign,
                                      delay_model=self.delay_model,
                                      world_index=self.world_distance_index)
        return campaign.run_public_corpus(self.studied_ixp_ids)

    # ------------------------------------------------------------------ #
    # Inference and validation
    # ------------------------------------------------------------------ #
    @cached_property
    def geo_index(self) -> GeoDistanceIndex:
        """The shared geodesic-distance index over the observed facilities.

        Built once per study and threaded through the inputs bundle and the
        pipeline, so scenario sweeps that rerun the pipeline under many
        configurations (fig. 9/11 ablations) reuse one set of memoised
        distances.
        """
        return GeoDistanceIndex(self.dataset)

    @cached_property
    def inputs(self) -> InferenceInputs:
        """The observable inputs handed to the inference pipeline."""
        return InferenceInputs(
            dataset=self.dataset,
            ping_result=self.ping_result,
            corpus=self.traceroute_corpus,
            prefix2as=self.prefix2as,
            alias_resolver=self.alias_resolver,
            geo_index=self.geo_index,
        )

    @cached_property
    def engine(self) -> PipelineEngine:
        """The shared step-graph engine (one step-result cache per study).

        Everything that reruns the pipeline on this study — the cached
        :attr:`outcome`, :meth:`sweep`, ad-hoc facades built with
        ``engine=study.engine`` — shares this engine, so any step whose
        declared config fields are unchanged between runs is reused from its
        cache instead of recomputed.
        """
        return PipelineEngine(
            self.inputs, delay_model=self.delay_model, geo_index=self.geo_index)

    @cached_property
    def outcome(self) -> PipelineOutcome:
        """The result of running the full pipeline on the studied IXPs."""
        pipeline = RemotePeeringPipeline(
            self.inputs, self.config.inference, delay_model=self.delay_model,
            geo_index=self.geo_index, engine=self.engine)
        return pipeline.run(self.studied_ixp_ids)

    def sweep(
        self,
        configs: Sequence[InferenceConfig],
        ixp_ids: Sequence[str] | None = None,
    ) -> list[PipelineOutcome]:
        """Run a list of inference-config scenarios over the studied IXPs.

        The shared entry point of the fig. 9 / fig. 11 / table 4 style
        scenario sweeps: every scenario goes through :attr:`engine`, so each
        outcome reuses every step result (and memoised distance) whose
        fingerprint is unchanged since any earlier run on this study.
        """
        ids = list(self.studied_ixp_ids if ixp_ids is None else ixp_ids)
        return SweepRunner(self.engine).run(configs, ids)

    @cached_property
    def validation(self) -> ValidationDataset:
        """Ground-truth validation labels for the largest IXPs."""
        builder = ValidationDatasetBuilder(self.world)
        candidates = [ixp.ixp_id for ixp in self.world.ixps_by_member_count()]
        with_vps = set(self.studied_ixp_ids)
        return builder.build(candidates, with_vps)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        """A compact overview of the study, useful in examples and logs."""
        outcome = self.outcome
        return {
            "world": self.world.summary(),
            "studied_ixps": len(self.studied_ixp_ids),
            "queried_interfaces": len(self.dataset.interface_ixp),
            "inferred_interfaces": len(outcome.report.inferred()),
            "coverage": round(outcome.report.coverage(), 3),
            "remote_share": round(outcome.report.remote_share(), 3),
        }
