"""Alias resolution substrate (MIDAR-like).

Steps 4 and 5 of the paper map IP interfaces to routers using CAIDA's MIDAR
(combined with iffinder), choosing the high-confidence dataset that favours
accuracy over completeness.  :mod:`repro.alias.midar` simulates that tool:
groups of interfaces belonging to the same ground-truth router are returned
with a configurable miss rate (unresolved interfaces end up as singletons) and
essentially no false aliases.
"""

from repro.alias.midar import AliasResolver, AliasResolutionResult

__all__ = ["AliasResolver", "AliasResolutionResult"]
