"""MIDAR-style alias resolution.

Alias resolution answers "which of these interface addresses sit on the same
physical router?".  The real MIDAR infers this from IP-ID time series; the
paper uses the MIDAR+iffinder dataset, which has very few false positives but
misses some aliases.  The simulated resolver reproduces that error profile:

* interfaces of the same ground-truth router are grouped together, except
  that each interface independently fails to be resolved with probability
  ``miss_rate`` (it then appears as a singleton group);
* no false aliases are produced by default, matching the "accuracy over
  completeness" dataset choice of the paper (footnote 8).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field

from repro.topology.world import World


@dataclass
class AliasResolutionResult:
    """Outcome of one alias-resolution run."""

    groups: list[frozenset[str]] = field(default_factory=list)
    _by_ip: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_groups(cls, groups: list[frozenset[str]]) -> "AliasResolutionResult":
        """Build a result (and its reverse index) from interface groups."""
        result = cls(groups=list(groups))
        for index, group in enumerate(result.groups):
            for ip in group:
                result._by_ip[ip] = index
        return result

    def group_of(self, ip: str) -> frozenset[str]:
        """The alias group containing an interface (singleton if unresolved)."""
        index = self._by_ip.get(ip)
        if index is None:
            return frozenset({ip})
        return self.groups[index]

    def same_router(self, ip_a: str, ip_b: str) -> bool:
        """Whether two interfaces were resolved to the same router."""
        if ip_a == ip_b:
            return True
        index_a = self._by_ip.get(ip_a)
        index_b = self._by_ip.get(ip_b)
        return index_a is not None and index_a == index_b

    def __len__(self) -> int:
        return len(self.groups)


class AliasResolver:
    """Groups interface addresses into routers with a MIDAR-like error profile."""

    def __init__(self, world: World, *, miss_rate: float = 0.12, seed: int | None = None) -> None:
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
        self.world = world
        self.miss_rate = miss_rate
        self._rng = random.Random(world.seed * 449 + (seed if seed is not None else 6))
        # The set of interfaces that MIDAR persistently fails to resolve is a
        # property of the routers/probing conditions, so it is drawn once and
        # reused across resolve() calls for consistency between Steps 4 and 5.
        self._unresolvable: set[str] = {
            ip for ip in world.interfaces if self._rng.random() < miss_rate
        }

    def resolve(self, ips: set[str] | list[str]) -> AliasResolutionResult:
        """Resolve a set of interface addresses into alias groups."""
        by_router: dict[str, set[str]] = defaultdict(set)
        singletons: list[frozenset[str]] = []
        for ip in sorted(set(ips)):
            interface = self.world.interfaces.get(ip)
            if interface is None or ip in self._unresolvable:
                singletons.append(frozenset({ip}))
                continue
            by_router[interface.router_id].add(ip)
        groups = [frozenset(group) for _, group in sorted(by_router.items())]
        groups.extend(singletons)
        return AliasResolutionResult.from_groups(groups)
