"""Physical and domain constants used across the library.

The values here encode the few "magic numbers" the paper relies on:

* the speed of light (used by the delay/distance model in
  :mod:`repro.geo.delay_model`),
* the Katz-Bassett bound on end-to-end probe speed (4/9 of the speed of
  light), used to derive the maximum distance compatible with a measured RTT,
* the metro-area diameter (100 km) the paper uses to define "local",
* the 50 km facility-separation threshold used to classify wide-area IXPs,
* the 10 ms remoteness threshold of the Castro et al. baseline,
* the canonical IXP port capacities (in Mbit/s).
"""

from __future__ import annotations

#: Speed of light in vacuum, expressed in kilometres per second.
SPEED_OF_LIGHT_KM_S: float = 299_792.458

#: Speed of light expressed in kilometres per millisecond.
SPEED_OF_LIGHT_KM_MS: float = SPEED_OF_LIGHT_KM_S / 1_000.0

#: Maximum end-to-end probe-packet speed (Katz-Bassett et al.): 4/9 of c.
#: Expressed in kilometres per second.
MAX_PROBE_SPEED_KM_S: float = SPEED_OF_LIGHT_KM_S * 4.0 / 9.0

#: Diameter (in km) of the disk the paper treats as one metropolitan area.
METRO_AREA_DIAMETER_KM: float = 100.0

#: Facilities further apart than this (in km) are considered to be located in
#: different metropolitan areas when classifying wide-area IXPs (Section 4.2).
WIDE_AREA_FACILITY_DISTANCE_KM: float = 50.0

#: The RTT threshold (in milliseconds) used by the Castro et al. baseline to
#: declare an IXP member remote.
CASTRO_RTT_THRESHOLD_MS: float = 10.0

#: RTT threshold (ms) above which a peer is very likely remote for a
#: single-metro IXP (Section 4.1: 99% of local peers are below 1 ms and RTTs
#: above 2 ms are a very strong indication of remoteness).
STRONG_REMOTE_RTT_MS: float = 2.0

#: Default initial TTL values emitted by common network stacks; the TTL-match
#: filter of Section 4.1/5.2 accepts only replies consistent with these.
EXPECTED_INITIAL_TTLS: tuple[int, ...] = (64, 255)

#: Canonical IXP port capacities in Mbit/s.
CAPACITY_FE: int = 100            #: Fast Ethernet (100 Mbit/s)
CAPACITY_GE: int = 1_000          #: Gigabit Ethernet (1 Gbit/s)
CAPACITY_10GE: int = 10_000       #: 10 Gigabit Ethernet
CAPACITY_40GE: int = 40_000       #: 40 Gigabit Ethernet
CAPACITY_100GE: int = 100_000     #: 100 Gigabit Ethernet

#: Port capacities (Mbit/s) that can only be bought through port resellers
#: (fractions of a physical port, rate-limited via VLAN sub-interfaces).
FRACTIONAL_CAPACITIES: tuple[int, ...] = (
    CAPACITY_FE,            # 1 FE
    2 * CAPACITY_FE,        # 2 FE
    3 * CAPACITY_FE,        # 3 FE
    5 * CAPACITY_FE,        # 5 FE
    500,                    # half a GE port
)

#: Physical port capacities (Mbit/s) offered directly by IXPs.
PHYSICAL_CAPACITIES: tuple[int, ...] = (
    CAPACITY_GE,
    CAPACITY_10GE,
    CAPACITY_40GE,
    CAPACITY_100GE,
)

#: Number of ping rounds in the measurement campaign of Step 2 (every two
#: hours for two days).
PING_CAMPAIGN_ROUNDS: int = 24

#: Number of ping rounds used for the control-dataset analysis of Section 4
#: (every 20 minutes for two days).
CONTROL_CAMPAIGN_ROUNDS: int = 144
