"""BGP-like routing and forwarding-plane substrate.

The traceroute measurements of the paper (used by Steps 4-5 and by the
routing-implications study of Section 6.4) observe the forwarding plane of
the real Internet.  This package provides the simulated equivalent:

* :mod:`repro.routing.bgp` — an AS-level graph combining transit
  relationships, private interconnections and IXP co-membership, with
  shortest-AS-path route selection;
* :mod:`repro.routing.forwarding` — expansion of an AS-level path into the
  IP-level hops a traceroute would observe, including the classic IXP
  crossing signature and hot-potato (or policy-driven) selection among
  multiple common IXPs.
"""

from repro.routing.bgp import ASGraph, EdgeRealization, RouteSelector
from repro.routing.forwarding import ForwardingSimulator, ForwardingPath, ForwardingHop

__all__ = [
    "ASGraph",
    "EdgeRealization",
    "RouteSelector",
    "ForwardingSimulator",
    "ForwardingPath",
    "ForwardingHop",
]
