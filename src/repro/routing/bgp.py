"""AS-level graph and route selection.

The graph combines three kinds of AS adjacencies, each remembered with the
way the adjacency is realised in the forwarding plane:

* **transit** — customer/provider relationships from the relationship graph;
* **private** — private interconnections (facility cross-connects);
* **ixp** — co-membership at an IXP (multilateral peering over the route
  server), one realization per common IXP.

Route selection is shortest AS path (breadth-first search with deterministic
neighbour ordering).  Relationship preferences beyond path length are not
modelled — the experiments that need routing only require plausible paths
that cross IXPs and private links, not a full Gao-Rexford simulation; the
policy-versus-hot-potato behaviour the paper studies in Section 6.4 is
modelled at the *realization* level in the forwarding simulator.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass

from repro.exceptions import RoutingError
from repro.topology.world import World


class RealizationKind(enum.Enum):
    """How an AS-level adjacency is realised in the forwarding plane."""

    TRANSIT = "transit"
    PRIVATE = "private"
    IXP = "ixp"


@dataclass(frozen=True)
class EdgeRealization:
    """One concrete way to traverse an AS-level edge.

    Attributes
    ----------
    kind:
        Transit hop, private cross-connect or IXP crossing.
    ixp_id:
        The IXP, for ``IXP`` realizations.
    private_link_index:
        Index into ``World.private_links``, for ``PRIVATE`` realizations.
    """

    kind: RealizationKind
    ixp_id: str | None = None
    private_link_index: int | None = None


class ASGraph:
    """Adjacency structure over ASNs with per-edge realizations."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._neighbours: dict[int, set[int]] = defaultdict(set)
        self._realizations: dict[tuple[int, int], list[EdgeRealization]] = defaultdict(list)
        self._build()

    # ------------------------------------------------------------------ #
    def _add_edge(self, a: int, b: int, realization: EdgeRealization) -> None:
        self._neighbours[a].add(b)
        self._neighbours[b].add(a)
        self._realizations[(a, b)].append(realization)
        self._realizations[(b, a)].append(realization)

    def _build(self) -> None:
        relationships = self.world.relationships
        for asn in self.world.ases:
            self._neighbours.setdefault(asn, set())
            for provider in relationships.providers_of(asn):
                self._add_edge(asn, provider, EdgeRealization(kind=RealizationKind.TRANSIT))
        for index, link in enumerate(self.world.private_links):
            self._add_edge(
                link.asn_a,
                link.asn_b,
                EdgeRealization(kind=RealizationKind.PRIVATE, private_link_index=index),
            )
        for ixp_id in self.world.ixps:
            members = self.world.active_memberships(ixp_id)
            asns = sorted({m.asn for m in members})
            for i, a in enumerate(asns):
                for b in asns[i + 1:]:
                    self._add_edge(
                        a, b, EdgeRealization(kind=RealizationKind.IXP, ixp_id=ixp_id)
                    )

    # ------------------------------------------------------------------ #
    def neighbours(self, asn: int) -> list[int]:
        """Neighbours of an AS in deterministic (sorted) order."""
        return sorted(self._neighbours.get(asn, set()))

    def realizations(self, a: int, b: int) -> list[EdgeRealization]:
        """All realizations of the edge between two adjacent ASes."""
        return list(self._realizations.get((a, b), []))

    def common_ixps(self, a: int, b: int) -> list[str]:
        """IXPs at which both ASes are active members."""
        return sorted(
            r.ixp_id for r in self._realizations.get((a, b), [])
            if r.kind is RealizationKind.IXP and r.ixp_id is not None
        )

    def has_edge(self, a: int, b: int) -> bool:
        """True if the two ASes are adjacent in any way."""
        return b in self._neighbours.get(a, set())

    @property
    def edge_count(self) -> int:
        """Number of undirected AS-level edges."""
        return sum(len(v) for v in self._neighbours.values()) // 2


class RouteSelector:
    """Shortest-AS-path route selection over an :class:`ASGraph`."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph

    def select_path(self, source_asn: int, destination_asn: int) -> list[int]:
        """Return the AS path from source to destination (inclusive).

        Raises
        ------
        RoutingError
            If no path exists or an endpoint is unknown.
        """
        if source_asn not in self.graph.world.ases:
            raise RoutingError(f"unknown source AS{source_asn}")
        if destination_asn not in self.graph.world.ases:
            raise RoutingError(f"unknown destination AS{destination_asn}")
        if source_asn == destination_asn:
            return [source_asn]
        parents = self._bfs_tree(source_asn, stop_at=destination_asn)
        if destination_asn not in parents:
            raise RoutingError(f"no path from AS{source_asn} to AS{destination_asn}")
        return self._walk_back(parents, source_asn, destination_asn)

    def paths_from(self, source_asn: int, destinations: list[int]) -> dict[int, list[int]]:
        """AS paths from one source towards many destinations.

        Runs a single breadth-first search and extracts every reachable
        destination, which is how the traceroute campaign keeps large
        fan-outs affordable.
        """
        if source_asn not in self.graph.world.ases:
            raise RoutingError(f"unknown source AS{source_asn}")
        parents = self._bfs_tree(source_asn, stop_at=None)
        result: dict[int, list[int]] = {}
        for destination in destinations:
            if destination == source_asn:
                result[destination] = [source_asn]
            elif destination in parents:
                result[destination] = self._walk_back(parents, source_asn, destination)
        return result

    # ------------------------------------------------------------------ #
    def _bfs_tree(self, source_asn: int, stop_at: int | None) -> dict[int, int]:
        parents: dict[int, int] = {}
        visited = {source_asn}
        queue: deque[int] = deque([source_asn])
        while queue:
            current = queue.popleft()
            for neighbour in self.graph.neighbours(current):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                parents[neighbour] = current
                if stop_at is not None and neighbour == stop_at:
                    return parents
                queue.append(neighbour)
        return parents

    @staticmethod
    def _walk_back(parents: dict[int, int], source_asn: int, destination_asn: int) -> list[int]:
        path = [destination_asn]
        while path[-1] != source_asn:
            path.append(parents[path[-1]])
        path.reverse()
        return path
