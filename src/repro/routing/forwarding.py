"""Expansion of AS-level paths into traceroute-style IP hop sequences.

A traceroute towards a destination reveals, for every router on the path, the
interface facing the previous hop.  The signature the paper's detection logic
relies on (Section 3.3) is the *IP triplet* around an IXP crossing::

    ... IP_a (border router of AS A)  IP_ixp (IXP LAN address of AS B)  IP_b (AS B) ...

This module produces exactly those sequences from the ground-truth world:
when an AS-level edge is realised over an IXP, the next hop after AS A's
border router is the IXP-LAN interface of AS B, followed by an interface of
AS B; private cross-connects and transit hops are expanded analogously.

Hot-potato behaviour: when two ASes share several IXPs, the exit IXP is the
one closest to the current position of the traffic with probability
``hot_potato_compliance``; otherwise a different (policy-driven) exchange is
picked — this is the knob behind the Section 6.4 experiment.

All per-hop geometry goes through a world-level
:class:`~repro.geo.worldindex.WorldDistanceIndex` (ground truth — kept
deliberately separate from the observed-dataset
:class:`~repro.geo.distindex.GeoDistanceIndex` the inference side uses): the
same inter-facility legs recur across every path of a corpus, so each
distance is computed once per world instead of once per hop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import RoutingError
from repro.geo.delay_model import DelayModel
from repro.geo.worldindex import WorldDistanceIndex
from repro.routing.bgp import ASGraph, EdgeRealization, RealizationKind, RouteSelector
from repro.topology.entities import InterfaceKind, IXPMembership, Router
from repro.topology.world import World


@dataclass(frozen=True)
class ForwardingHop:
    """One hop of a simulated traceroute.

    Attributes
    ----------
    ip:
        Interface address revealed by the hop, or ``None`` when the hop did
        not answer (a ``*`` line in a real traceroute).
    asn:
        Ground-truth owner of the interface (kept for debugging and tests;
        the inference pipeline re-derives ownership from public data).
    rtt_ms:
        Round-trip time to this hop.
    is_ixp_lan:
        Whether the interface belongs to an IXP peering LAN.
    ixp_id:
        The IXP, for IXP-LAN hops.
    """

    ip: str | None
    asn: int | None
    rtt_ms: float
    is_ixp_lan: bool = False
    ixp_id: str | None = None


@dataclass
class ForwardingPath:
    """A full simulated traceroute."""

    source_asn: int
    destination_asn: int
    destination_ip: str
    hops: list[ForwardingHop] = field(default_factory=list)

    def hop_ips(self) -> list[str | None]:
        """The raw IP sequence (with ``None`` for unresponsive hops)."""
        return [hop.ip for hop in self.hops]

    def responded_hops(self) -> list[ForwardingHop]:
        """Hops that answered."""
        return [hop for hop in self.hops if hop.ip is not None]


class ForwardingSimulator:
    """Builds IP-level paths for AS-level routes."""

    def __init__(
        self,
        world: World,
        graph: ASGraph | None = None,
        *,
        delay_model: DelayModel | None = None,
        rng: random.Random | None = None,
        world_index: WorldDistanceIndex | None = None,
        hot_potato_compliance: float = 0.70,
        hop_loss_rate: float = 0.03,
        ixp_preference: float = 0.60,
    ) -> None:
        self.world = world
        self.graph = graph or ASGraph(world)
        self.selector = RouteSelector(self.graph)
        self.delay_model = delay_model or DelayModel()
        self.world_index = world_index or WorldDistanceIndex(world)
        if self.world_index.world is not world:
            raise RoutingError("world_index must be built over the same world")
        self._rng = rng or random.Random(world.seed + 777)
        self.hot_potato_compliance = hot_potato_compliance
        self.hop_loss_rate = hop_loss_rate
        self.ixp_preference = ixp_preference
        self._memberships_by_as_ixp: dict[tuple[int, str], IXPMembership] = {}
        for membership in world.memberships:
            if membership.departed_month is None:
                self._memberships_by_as_ixp[(membership.asn, membership.ixp_id)] = membership

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def traceroute(self, source_asn: int, destination_ip: str) -> ForwardingPath:
        """Simulate one traceroute from an AS towards a destination IP."""
        destination_asn = self._asn_for_destination(destination_ip)
        as_path = self.selector.select_path(source_asn, destination_asn)
        return self._expand(as_path, destination_ip)

    def traceroute_along(self, as_path: list[int], destination_ip: str) -> ForwardingPath:
        """Expand an explicit AS path (used by campaigns that precompute paths)."""
        if not as_path:
            raise RoutingError("AS path must not be empty")
        return self._expand(as_path, destination_ip)

    def destination_ip_for(self, asn: int) -> str:
        """A pingable address inside the first routed prefix of an AS."""
        prefixes = self.world.prefixes_of_as(asn)
        if not prefixes:
            raise RoutingError(f"AS{asn} originates no prefixes")
        network = prefixes[0]
        base = network.split("/")[0]
        octets = base.split(".")
        octets[-1] = "1"
        return ".".join(octets)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _asn_for_destination(self, destination_ip: str) -> int:
        import ipaddress

        address = ipaddress.ip_address(destination_ip)
        for prefix, asn in self.world.routed_prefixes.items():
            if address in ipaddress.ip_network(prefix):
                return asn
        raise RoutingError(f"destination {destination_ip} is not in any routed prefix")

    def _first_router(self, asn: int) -> Router:
        routers = self.world.routers_of_as(asn)
        if not routers:
            raise RoutingError(f"AS{asn} has no routers")
        return routers[0]

    def _backbone_ip(self, router: Router) -> str | None:
        for ip in router.interface_ips:
            interface = self.world.interfaces.get(ip)
            if interface is not None and interface.kind is InterfaceKind.BACKBONE:
                return ip
        return None

    def _choose_realization(self, a: int, b: int) -> EdgeRealization:
        realizations = self.graph.realizations(a, b)
        if not realizations:
            raise RoutingError(f"AS{a} and AS{b} are not adjacent")
        ixp_options = [r for r in realizations if r.kind is RealizationKind.IXP]
        private_options = [r for r in realizations if r.kind is RealizationKind.PRIVATE]
        transit_options = [r for r in realizations if r.kind is RealizationKind.TRANSIT]
        if ixp_options and (not (private_options or transit_options)
                            or self._rng.random() < self.ixp_preference):
            return self._rng.choice(ixp_options)
        if private_options:
            return self._rng.choice(private_options)
        if transit_options:
            return transit_options[0]
        return self._rng.choice(ixp_options)

    def _choose_ixp(self, current_facility_id: str, asn: int, candidates: list[str]) -> str:
        """Hot-potato (closest exit) IXP choice, with policy deviations."""
        if len(candidates) == 1:
            return candidates[0]
        distances: dict[str, float] = {}
        for ixp_id in candidates:
            membership = self._memberships_by_as_ixp[(asn, ixp_id)]
            distances[ixp_id] = self.world_index.facility_pair_km(
                current_facility_id, membership.member_facility_id)
        closest = min(sorted(candidates), key=lambda i: distances[i])
        if self._rng.random() < self.hot_potato_compliance:
            return closest
        others = [c for c in candidates if c != closest]
        return self._rng.choice(others)

    def _expand(self, as_path: list[int], destination_ip: str) -> ForwardingPath:
        source_asn = as_path[0]
        destination_asn = as_path[-1]
        path = ForwardingPath(
            source_asn=source_asn,
            destination_asn=destination_asn,
            destination_ip=destination_ip,
        )
        current_router = self._first_router(source_asn)
        cumulative_km = 0.0

        def emit(ip: str | None, asn: int | None, *, is_ixp: bool = False,
                 ixp_id: str | None = None) -> None:
            nonlocal cumulative_km
            rtt = self.delay_model.sample_rtt_ms(cumulative_km, self._rng, jitter_ms=0.4)
            if ip is not None and self._rng.random() < self.hop_loss_rate:
                ip = None
            path.hops.append(
                ForwardingHop(ip=ip, asn=asn, rtt_ms=rtt, is_ixp_lan=is_ixp, ixp_id=ixp_id)
            )

        def move_to(router: Router) -> None:
            nonlocal current_router, cumulative_km
            # Same-facility moves contribute exactly 0 km, as the per-call
            # geodesic on identical coordinates always did.
            if router.facility_id != current_router.facility_id:
                cumulative_km += self.world_index.facility_pair_km(
                    current_router.facility_id, router.facility_id)
            current_router = router

        # First hop: the source border router answering from a backbone interface.
        emit(self._backbone_ip(current_router), source_asn)

        for position in range(len(as_path) - 1):
            here, there = as_path[position], as_path[position + 1]
            realization = self._choose_realization(here, there)

            if realization.kind is RealizationKind.IXP:
                candidates = self.graph.common_ixps(here, there)
                ixp_id = self._choose_ixp(current_router.facility_id, here, candidates)
                exit_membership = self._memberships_by_as_ixp[(here, ixp_id)]
                exit_router = self.world.router(exit_membership.router_id)
                if exit_router.router_id != current_router.router_id:
                    move_to(exit_router)
                    emit(self._backbone_ip(exit_router), here)
                entry_membership = self._memberships_by_as_ixp[(there, ixp_id)]
                entry_router = self.world.router(entry_membership.router_id)
                move_to(entry_router)
                emit(entry_membership.interface_ip, there, is_ixp=True, ixp_id=ixp_id)
                emit(self._backbone_ip(entry_router), there)
            elif realization.kind is RealizationKind.PRIVATE:
                link = self.world.private_links[realization.private_link_index]
                if link.asn_a == here:
                    exit_router_id, entry_router_id = link.router_a, link.router_b
                    entry_ip = link.interface_b
                else:
                    exit_router_id, entry_router_id = link.router_b, link.router_a
                    entry_ip = link.interface_a
                exit_router = self.world.router(exit_router_id)
                if exit_router.router_id != current_router.router_id:
                    move_to(exit_router)
                    emit(self._backbone_ip(exit_router), here)
                entry_router = self.world.router(entry_router_id)
                move_to(entry_router)
                emit(entry_ip, there)
                emit(self._backbone_ip(entry_router), there)
            else:  # transit
                entry_router = self._first_router(there)
                move_to(entry_router)
                emit(self._backbone_ip(entry_router), there)

        # Final hop: the destination address itself.
        emit(destination_ip, destination_asn)
        return path
