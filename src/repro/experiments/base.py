"""Common result container and text rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError


@dataclass
class ExperimentResult:
    """Structured output of one experiment (one paper table or figure).

    Attributes
    ----------
    experiment_id:
        Short identifier, e.g. ``"table4"`` or ``"fig10b"``.
    title:
        Human-readable title.
    paper_reference:
        Which table/figure/section of the paper this reproduces.
    headline:
        The few scalar numbers the paper's text highlights for this artefact
        (e.g. "28% of interfaces are remote").
    rows:
        Tabular data mirroring the artefact's structure.
    notes:
        Caveats, substitutions, interpretation help.
    """

    experiment_id: str
    title: str
    paper_reference: str
    headline: dict[str, object] = field(default_factory=dict)
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    # ------------------------------------------------------------------ #
    def columns(self) -> list[str]:
        """Union of row keys, in first-seen order."""
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_text(self, *, max_rows: int | None = 40) -> str:
        """Render the result as a fixed-width text report."""
        lines = [f"[{self.experiment_id}] {self.title}",
                 f"  reproduces: {self.paper_reference}"]
        if self.headline:
            lines.append("  headline:")
            for key, value in self.headline.items():
                lines.append(f"    - {key}: {_format_value(value)}")
        if self.rows:
            columns = self.columns()
            widths = {c: len(str(c)) for c in columns}
            shown = self.rows if max_rows is None else self.rows[:max_rows]
            rendered_rows = []
            for row in shown:
                rendered = {c: _format_value(row.get(c, "")) for c in columns}
                rendered_rows.append(rendered)
                for c in columns:
                    widths[c] = max(widths[c], len(rendered[c]))
            header = " | ".join(str(c).ljust(widths[c]) for c in columns)
            lines.append("  " + header)
            lines.append("  " + "-+-".join("-" * widths[c] for c in columns))
            for rendered in rendered_rows:
                lines.append("  " + " | ".join(rendered[c].ljust(widths[c]) for c in columns))
            if max_rows is not None and len(self.rows) > max_rows:
                lines.append(f"  ... ({len(self.rows) - max_rows} more rows)")
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)

    def to_markdown(self, *, max_rows: int | None = 40) -> str:
        """Render the result as a Markdown section."""
        lines = [f"### {self.experiment_id} — {self.title}",
                 "",
                 f"*Reproduces:* {self.paper_reference}",
                 ""]
        if self.headline:
            for key, value in self.headline.items():
                lines.append(f"- **{key}**: {_format_value(value)}")
            lines.append("")
        if self.rows:
            columns = self.columns()
            shown = self.rows if max_rows is None else self.rows[:max_rows]
            lines.append("| " + " | ".join(str(c) for c in columns) + " |")
            lines.append("|" + "|".join("---" for _ in columns) + "|")
            for row in shown:
                lines.append(
                    "| " + " | ".join(_format_value(row.get(c, "")) for c in columns) + " |")
            if max_rows is not None and len(self.rows) > max_rows:
                lines.append(f"| ... {len(self.rows) - max_rows} more rows ... |")
            lines.append("")
        if self.notes:
            lines.append(f"_{self.notes}_")
            lines.append("")
        return "\n".join(lines)

    def headline_value(self, key: str) -> object:
        """Fetch one headline number, raising if missing."""
        if key not in self.headline:
            raise ReproError(f"experiment {self.experiment_id} has no headline {key!r}")
        return self.headline[key]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
