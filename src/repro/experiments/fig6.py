"""Fig. 6 — inter-facility RTT as a function of distance, with speed bounds."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.exceptions import ReproError
from repro.measurement.y1731 import Y1731Monitor
from repro.study import RemotePeeringStudy


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate the Fig. 6 scatter plus bound-compliance statistics."""
    spans = {
        ixp_id: study.world.max_ixp_facility_distance_km(ixp_id)
        for ixp_id in study.world.ixps
        if len(study.world.ixp(ixp_id).facility_ids) >= 2
    }
    widest = sorted(spans, key=lambda i: -spans[i])[:2]
    if not widest:
        raise ReproError("no IXP has at least two facilities")

    monitor = Y1731Monitor(study.world, study.config.campaign, delay_model=study.delay_model)
    samples: list[tuple[float, float]] = []
    for ixp_id in widest:
        samples.extend(monitor.measure(ixp_id).samples())

    model = study.delay_model
    rows = []
    within_bounds = 0
    for distance, rtt in sorted(samples)[:60]:
        lower = model.min_rtt_ms(distance)
        upper = model.max_rtt_ms(distance)
        rows.append(
            {
                "distance_km": distance,
                "median_rtt_ms": rtt,
                "min_bound_ms": lower,
                "max_bound_ms": upper,
                "within_bounds": lower <= rtt <= upper + model.base_overhead_ms + 1.0,
            }
        )
    for distance, rtt in samples:
        if model.min_rtt_ms(distance) <= rtt <= (
            model.max_rtt_ms(distance) + model.base_overhead_ms + 1.0
        ):
            within_bounds += 1

    return ExperimentResult(
        experiment_id="fig6",
        title="Inter-facility RTT vs distance and the propagation-speed bounds",
        paper_reference="Fig. 6",
        headline={
            "samples": len(samples),
            "share_within_bounds": within_bounds / len(samples) if samples else 0.0,
            "v_max_km_s": model.v_max_km_s,
            "v_min_coefficient_km_s": model.v_min_coefficient_km_s,
        },
        rows=rows,
        notes=(
            "Samples come from the simulated Y.1731 monitors of the two widest IXPs; the "
            "paper fits v_max = 4/9 c (Katz-Bassett) and a logarithmic lower speed bound."
        ),
    )
