"""Fig. 1a/1b — facility distributions and control-dataset RTT ECDFs."""

from __future__ import annotations

from repro.analysis.ecdf import ECDF
from repro.analysis.features import MemberFeatureAnalysis
from repro.core.step2_rtt import RTTMeasurementStep
from repro.core.inputs import InferenceInputs
from repro.experiments.base import ExperimentResult
from repro.measurement.ping import PingCampaign
from repro.study import RemotePeeringStudy


def run_fig1a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 1a: distribution of the number of facilities per IXP and per AS."""
    analysis = MemberFeatureAnalysis(report=study.outcome.report, dataset=study.dataset)
    ixp_ecdf = analysis.facility_count_ecdf_for_ixps()
    as_ecdf = analysis.facility_count_ecdf_for_ases()
    rows = []
    for threshold in (1, 2, 5, 10, 20):
        rows.append(
            {
                "facilities_at_most": threshold,
                "share_of_ixps": ixp_ecdf.fraction_below(threshold),
                "share_of_ases": as_ecdf.fraction_below(threshold),
            }
        )
    return ExperimentResult(
        experiment_id="fig1a",
        title="Distribution of facilities per IXP and per AS",
        paper_reference="Fig. 1a",
        headline={
            "ases_in_single_facility": as_ecdf.fraction_below(1),
            "ases_in_more_than_10_facilities": 1.0 - as_ecdf.fraction_below(10),
            "ixps_in_single_facility": ixp_ecdf.fraction_below(1),
        },
        rows=rows,
        notes="The paper reports ~60% of ASes/IXPs in a single facility and ~5% in more than ten.",
    )


def run_fig1b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 1b: ECDF of minimum RTTs for remote and local peers (control set)."""
    validation = study.validation
    control_ixps = validation.control_ixps()
    if not control_ixps:
        # Every validated IXP happens to have a vantage point; use the
        # smallest validated IXPs as a stand-in control set.
        control_ixps = validation.ixp_ids()[-3:]
    campaign = PingCampaign(study.world, study.config.campaign, delay_model=study.delay_model)
    control_result = campaign.run_control(control_ixps)
    inputs = InferenceInputs(
        dataset=study.dataset,
        ping_result=control_result,
        corpus=study.traceroute_corpus,
        prefix2as=study.prefix2as,
        alias_resolver=study.alias_resolver,
    )
    summary = RTTMeasurementStep(inputs, study.config.inference).run(control_ixps)

    remote_rtts: list[float] = []
    local_rtts: list[float] = []
    for (ixp_id, interface_ip), observation in summary.observations.items():
        label = validation.label_for(ixp_id, interface_ip)
        if label is None:
            continue
        (remote_rtts if label else local_rtts).append(observation.rtt_min_ms)

    rows = []
    headline: dict[str, object] = {"control_ixps": len(control_ixps)}
    if remote_rtts and local_rtts:
        remote_ecdf = ECDF.from_values(remote_rtts)
        local_ecdf = ECDF.from_values(local_rtts)
        for threshold in (1.0, 2.0, 5.0, 10.0, 50.0):
            rows.append(
                {
                    "rtt_threshold_ms": threshold,
                    "share_of_remote_below": remote_ecdf.fraction_below(threshold),
                    "share_of_local_below": local_ecdf.fraction_below(threshold),
                }
            )
        headline.update(
            {
                "local_below_1ms": local_ecdf.fraction_below(1.0),
                "remote_below_1ms": remote_ecdf.fraction_below(1.0),
                "remote_below_10ms": remote_ecdf.fraction_below(10.0),
            }
        )
    return ExperimentResult(
        experiment_id="fig1b",
        title="Minimum RTT ECDFs for remote and local peers (control subset)",
        paper_reference="Fig. 1b",
        headline=headline,
        rows=rows,
        notes=(
            "The paper finds ~99% of local peers below 1 ms while ~18% of remote peers are "
            "also below 1 ms and ~40% below 10 ms — the motivation for going beyond RTT."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 1b (the headline figure of the pair)."""
    return run_fig1b(study)
