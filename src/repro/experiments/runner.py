"""Runs every experiment and renders EXPERIMENTS-style reports."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (  # noqa: F401  (re-exported for convenience)
    base,
)
from repro.experiments import (
    fig1,
    fig2,
    fig4_fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    sec64,
    table1,
    table2,
    table4,
    table5,
)
from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy

#: Every experiment, in the order it appears in the paper.
EXPERIMENTS: dict[str, Callable[[RemotePeeringStudy], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig1a": fig1.run_fig1a,
    "fig1b": fig1.run_fig1b,
    "fig2a": fig2.run_fig2a,
    "fig2b": fig2.run_fig2b,
    "fig4": fig4_fig5.run_fig4,
    "fig5": fig4_fig5.run_fig5,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table4": table4.run,
    "table4_agreement": table4.run_table4_agreement,
    "fig8": fig8.run,
    "table5": table5.run,
    "fig9a": fig9.run_fig9a,
    "fig9b": fig9.run_fig9b,
    "fig9c": fig9.run_fig9c,
    "fig9d": fig9.run_fig9d,
    "fig9_ablation": fig9.run_fig9_ablation,
    "fig10a": fig10.run_fig10a,
    "fig10b": fig10.run_fig10b,
    "fig11a": fig11.run_fig11a,
    "fig11b": fig11.run_fig11b,
    "fig11_sensitivity": fig11.run_fig11_threshold_sensitivity,
    "fig12a": fig12.run_fig12a,
    "fig12b": fig12.run_fig12b,
    "sec64": sec64.run,
}


def run_experiment(study: RemotePeeringStudy, experiment_id: str) -> ExperimentResult:
    """Run a single experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {', '.join(sorted(EXPERIMENTS))}")
    return EXPERIMENTS[experiment_id](study)


def run_all(
    study: RemotePeeringStudy,
    *,
    only: list[str] | None = None,
) -> dict[str, ExperimentResult]:
    """Run every experiment (or a subset) against one study."""
    wanted = list(EXPERIMENTS) if only is None else only
    return {experiment_id: run_experiment(study, experiment_id) for experiment_id in wanted}


def render_text_report(results: dict[str, ExperimentResult]) -> str:
    """Render all experiment results as one plain-text report."""
    sections = [result.to_text() for result in results.values()]
    return "\n\n".join(sections) + "\n"


def render_markdown_report(results: dict[str, ExperimentResult], *, title: str | None = None) -> str:
    """Render all experiment results as one Markdown report."""
    lines: list[str] = []
    if title:
        lines.extend([f"## {title}", ""])
    for result in results.values():
        lines.append(result.to_markdown())
    return "\n".join(lines)
