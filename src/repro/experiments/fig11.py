"""Fig. 11a/11b — features of local, remote and hybrid IXP members.

:func:`run_fig11_threshold_sensitivity` reruns the inference under a range of
feasibility tolerances through :meth:`RemotePeeringStudy.sweep`, so the
scenarios share the Step 1/2 results and traceroute observables and only the
geometry-dependent steps are recomputed per threshold.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.features import MemberFeatureAnalysis
from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy

#: The feasible-facility tolerances (km) swept by the sensitivity analysis.
TOLERANCE_SWEEP_KM: tuple[float, ...] = (0.0, 10.0, 25.0, 50.0, 100.0)


def run_fig11a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 11a: customer cones of local, remote and hybrid members."""
    analysis = MemberFeatureAnalysis(report=study.outcome.report, dataset=study.dataset)
    shares = analysis.class_shares()
    medians = analysis.median_cone_by_class()
    means = analysis.mean_cone_by_class()
    cones = analysis.customer_cones_by_class()
    rows = []
    for label in ("local", "remote", "hybrid"):
        values = cones.get(label, [])
        rows.append(
            {
                "member_class": label,
                "members": len(values),
                "share_of_members": shares.get(label, 0.0),
                "median_cone": medians.get(label, 0.0),
                "mean_cone": means.get(label, 0.0),
                "max_cone": max(values) if values else 0,
            }
        )
    hybrid_vs_local = (
        means.get("hybrid", 0.0) / means.get("local", 1.0) if means.get("local") else 0.0
    )
    return ExperimentResult(
        experiment_id="fig11a",
        title="Customer cones of local, remote and hybrid members",
        paper_reference="Fig. 11a / Section 6.2",
        headline={
            "local_share": shares.get("local", 0.0),
            "remote_share": shares.get("remote", 0.0),
            "hybrid_share": shares.get("hybrid", 0.0),
            "hybrid_to_local_mean_cone_ratio": hybrid_vs_local,
        },
        rows=rows,
        notes=(
            "The paper finds 63.7%/23.4%/12.9% local/remote/hybrid member networks, similar "
            "cone distributions for local and remote peers, and much larger cones for hybrids."
        ),
    )


def run_fig11b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 11b: self-reported traffic levels per member class."""
    analysis = MemberFeatureAnalysis(report=study.outcome.report, dataset=study.dataset)
    per_class = analysis.traffic_levels_by_class()
    medians = analysis.median_traffic_rank_by_class()
    rows = []
    for label in ("local", "remote", "hybrid"):
        counter = per_class.get(label)
        total = sum(counter.values()) if counter else 0
        row: dict[str, object] = {"member_class": label, "members_with_data": total}
        if counter and total:
            for level, count in sorted(counter.items(), key=lambda kv: kv[0].ordinal):
                row[level.value] = count / total
        rows.append(row)
    countries = analysis.top_countries_by_class(top=1)
    headline: dict[str, object] = {
        f"median_traffic_rank_{label}": medians.get(label, 0.0)
        for label in ("local", "remote", "hybrid")
    }
    for label, top in countries.items():
        if top:
            headline[f"top_country_{label}"] = f"{top[0][0]} ({top[0][1]:.0%})"
    return ExperimentResult(
        experiment_id="fig11b",
        title="Traffic levels of local, remote and hybrid members",
        paper_reference="Fig. 11b / Section 6.2",
        headline=headline,
        rows=rows,
        notes=(
            "Remote and local members show similar traffic-level distributions; hybrids reach "
            "the highest traffic buckets."
        ),
    )


def run_fig11_threshold_sensitivity(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 11 companion: member-class shares vs the feasibility tolerance."""
    base = study.config.inference
    configs = [replace(base, feasible_facility_tolerance_km=tolerance)
               for tolerance in TOLERANCE_SWEEP_KM]
    outcomes = study.sweep(configs)
    rows = []
    for tolerance, outcome in zip(TOLERANCE_SWEEP_KM, outcomes):
        analysis = MemberFeatureAnalysis(report=outcome.report, dataset=study.dataset)
        shares = analysis.class_shares()
        rows.append(
            {
                "tolerance_km": tolerance,
                "coverage": outcome.report.coverage(),
                "local_share": shares.get("local", 0.0),
                "remote_share": shares.get("remote", 0.0),
                "hybrid_share": shares.get("hybrid", 0.0),
            }
        )
    default_km = base.feasible_facility_tolerance_km
    remote_shares = [row["remote_share"] for row in rows]
    return ExperimentResult(
        experiment_id="fig11_sensitivity",
        title="Member-class shares under a feasibility-tolerance sweep",
        paper_reference="Fig. 11 / Section 6.2 (threshold sensitivity)",
        headline={
            "scenarios": len(rows),
            "default_tolerance_km": default_km,
            "remote_share_spread": max(remote_shares) - min(remote_shares),
        },
        rows=rows,
        notes=(
            "Each row reruns the pipeline with a different feasible-facility tolerance; "
            "the engine reuses Steps 1-2 and the traceroute observables across the sweep, "
            "so only Steps 3-5 and the reporting are recomputed per threshold."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 11a."""
    return run_fig11a(study)
