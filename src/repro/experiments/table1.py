"""Table 1 — overview of the IXP dataset and the contribution of each source."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate Table 1 from the merged data sources."""
    statistics = study.merge_statistics
    rows = statistics.rows()
    return ExperimentResult(
        experiment_id="table1",
        title="IXP dataset and per-source contribution",
        paper_reference="Table 1",
        headline={
            "total_ixp_prefixes": statistics.total_prefixes,
            "total_ixp_interfaces": statistics.total_interfaces,
            "conflict_rate_max": max(
                (c.interface_conflict_rate for c in statistics.contributions.values()),
                default=0.0,
            ),
        },
        rows=rows,
        notes=(
            "Sources are simulated views of the synthetic world; the preference order "
            "websites > HE > PDB > PCH matches the paper, and conflicts are records that "
            "disagree with a higher-preference source."
        ),
    )
