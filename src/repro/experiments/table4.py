"""Table 4 — validation of each step of the algorithm and of the baseline."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy
from repro.validation.report import per_step_metrics

_ROW_LABELS = {
    "rtt_baseline": "RTTmin threshold (Castro et al. baseline)",
    "step1_port_capacity": "Step 1: Port capacity",
    "step2_3_rtt_colocation": "Step 2+3: RTTmin + colocation",
    "step4_multi_ixp": "Step 4: Multi-IXP routers",
    "step5_private_links": "Step 5: Private links",
    "combined": "Combined (all steps)",
}


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate Table 4 on the test subset of the validation dataset."""
    validation = study.validation
    test_ixps = validation.test_ixps()
    metrics = per_step_metrics(study.outcome, validation, ixp_ids=test_ixps)
    rows = []
    for key, label in _ROW_LABELS.items():
        row = {"methodology_feature": label}
        row.update({k: round(v, 3) for k, v in metrics[key].as_row().items()})
        rows.append(row)
    combined = metrics["combined"]
    baseline = metrics["rtt_baseline"]
    return ExperimentResult(
        experiment_id="table4",
        title="Validation of each step of the algorithm",
        paper_reference="Table 4",
        headline={
            "combined_accuracy": combined.accuracy,
            "combined_coverage": combined.coverage,
            "baseline_accuracy": baseline.accuracy,
            "accuracy_gain_over_baseline": combined.accuracy - baseline.accuracy,
        },
        rows=rows,
        notes=(
            "Step rows evaluate only the classifications each step contributed inside the "
            "full pipeline run (so per-step coverage is that step's own contribution); the "
            "paper evaluates steps on partially overlapping subsets, so per-step coverage "
            "levels are not directly comparable, but the ordering of accuracies and the "
            "combined-vs-baseline gap are."
        ),
    )
