"""Table 4 — validation of each step of the algorithm and of the baseline.

:func:`run_table4_agreement` additionally reruns ablated pipeline variants
through :meth:`RemotePeeringStudy.sweep` and reports, per variant, the
validation accuracy and the classification agreement with the full pipeline
on identical measurements.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.pipeline import PipelineOutcome
from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy
from repro.validation.metrics import evaluate_report
from repro.validation.report import per_step_metrics

#: The variants compared against the full methodology.
AGREEMENT_SCENARIOS: tuple[tuple[str, dict[str, bool]], ...] = (
    ("full", {}),
    ("no_step4_multi_ixp", {"enable_step4_multi_ixp": False}),
    ("no_step5_private_links", {"enable_step5_private_links": False}),
    ("no_traceroute_steps", {"enable_step4_multi_ixp": False,
                             "enable_step5_private_links": False}),
)

_ROW_LABELS = {
    "rtt_baseline": "RTTmin threshold (Castro et al. baseline)",
    "step1_port_capacity": "Step 1: Port capacity",
    "step2_3_rtt_colocation": "Step 2+3: RTTmin + colocation",
    "step4_multi_ixp": "Step 4: Multi-IXP routers",
    "step5_private_links": "Step 5: Private links",
    "combined": "Combined (all steps)",
}


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate Table 4 on the test subset of the validation dataset."""
    validation = study.validation
    test_ixps = validation.test_ixps()
    metrics = per_step_metrics(study.outcome, validation, ixp_ids=test_ixps)
    rows = []
    for key, label in _ROW_LABELS.items():
        row = {"methodology_feature": label}
        row.update({k: round(v, 3) for k, v in metrics[key].as_row().items()})
        rows.append(row)
    combined = metrics["combined"]
    baseline = metrics["rtt_baseline"]
    return ExperimentResult(
        experiment_id="table4",
        title="Validation of each step of the algorithm",
        paper_reference="Table 4",
        headline={
            "combined_accuracy": combined.accuracy,
            "combined_coverage": combined.coverage,
            "baseline_accuracy": baseline.accuracy,
            "accuracy_gain_over_baseline": combined.accuracy - baseline.accuracy,
        },
        rows=rows,
        notes=(
            "Step rows evaluate only the classifications each step contributed inside the "
            "full pipeline run (so per-step coverage is that step's own contribution); the "
            "paper evaluates steps on partially overlapping subsets, so per-step coverage "
            "levels are not directly comparable, but the ordering of accuracies and the "
            "combined-vs-baseline gap are."
        ),
    )


def _agreement(reference: PipelineOutcome, variant: PipelineOutcome) -> float:
    """Share of interfaces classified by both runs that agree."""
    both = 0
    agree = 0
    for key, result in reference.report.results.items():
        if not result.is_inferred:
            continue
        other = variant.report.result_for(*key)
        if other is None or not other.is_inferred:
            continue
        both += 1
        if other.classification is result.classification:
            agree += 1
    return agree / both if both else 0.0


def run_table4_agreement(study: RemotePeeringStudy) -> ExperimentResult:
    """Table 4 companion: ablated variants vs the full pipeline, as one sweep."""
    base = study.config.inference
    configs = [replace(base, **overrides) for _, overrides in AGREEMENT_SCENARIOS]
    outcomes = study.sweep(configs)
    test_ixps = study.validation.test_ixps()
    reference = outcomes[0]
    rows = []
    for (label, _), outcome in zip(AGREEMENT_SCENARIOS, outcomes):
        metrics = evaluate_report(outcome.report, study.validation, ixp_ids=test_ixps)
        rows.append(
            {
                "scenario": label,
                "coverage": round(metrics.coverage, 3),
                "accuracy": round(metrics.accuracy, 3),
                "agreement_with_full": round(_agreement(reference, outcome), 3),
            }
        )
    return ExperimentResult(
        experiment_id="table4_agreement",
        title="Agreement of ablated pipeline variants with the full methodology",
        paper_reference="Table 4 / Section 5.3 (agreement)",
        headline={
            "scenarios": len(rows),
            "full_accuracy": rows[0]["accuracy"],
            "min_agreement": min(r["agreement_with_full"] for r in rows),
        },
        rows=rows,
        notes=(
            "Agreement counts only interfaces classified by both the full pipeline and "
            "the variant; the variants run as one engine-backed sweep sharing Steps 1-3 "
            "and the traceroute observables."
        ),
    )
