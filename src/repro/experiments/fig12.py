"""Fig. 12a/12b — remote-peering evolution and traceroute-based RTT estimation."""

from __future__ import annotations

from repro.analysis.ecdf import ECDF
from repro.analysis.evolution import EvolutionAnalysis
from repro.experiments.base import ExperimentResult
from repro.measurement.vantage import VantagePointKind
from repro.study import RemotePeeringStudy


def run_fig12a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 12a: growth of remote vs local membership over time."""
    analysis = EvolutionAnalysis(world=study.world, report=study.outcome.report,
                                 ixp_ids=study.studied_ixp_ids)
    series = analysis.series()
    rows = []
    for index, month in enumerate(series["local"].months):
        rows.append(
            {
                "month": month,
                "local_members": series["local"].active_members[index],
                "remote_members": series["remote"].active_members[index],
                "local_joins": series["local"].cumulative_joins[index],
                "remote_joins": series["remote"].cumulative_joins[index],
                "local_departures": series["local"].cumulative_departures[index],
                "remote_departures": series["remote"].cumulative_departures[index],
            }
        )
    return ExperimentResult(
        experiment_id="fig12a",
        title="Growth of remote vs local IXP membership",
        paper_reference="Fig. 12a / Section 6.3",
        headline={
            "remote_to_local_growth_ratio": analysis.growth_ratio(),
            "remote_to_local_departure_ratio": analysis.departure_ratio(),
        },
        rows=rows,
        notes=(
            "The paper finds remote membership growing about twice as fast as local "
            "membership, with ~25% higher departure rates for remote members."
        ),
    )


def run_fig12b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 12b: ping RTTs vs traceroute-derived RTT estimates for one IXP."""
    summary = study.outcome.rtt_summary
    # Prefer an IXP measured by a looking glass, like LINX LON in the paper.
    lg_ixps = {
        vp.ixp_id for vp in summary.usable_vps.values()
        if vp.kind is VantagePointKind.LOOKING_GLASS
    }
    candidates = [i for i in study.studied_ixp_ids if i in lg_ixps] or study.studied_ixp_ids
    ixp_id = candidates[0]

    # Traceroute-derived estimate: RTT difference across the IXP crossing hop.
    estimates: dict[str, float] = {}
    for path in study.traceroute_corpus.paths:
        hops = path.hops
        for index in range(1, len(hops)):
            hop = hops[index]
            if hop.ip is None or hops[index - 1].ip is None:
                continue
            if study.dataset.ixp_of_interface(hop.ip) != ixp_id:
                continue
            delta = max(0.0, hop.rtt_ms - hops[index - 1].rtt_ms)
            if hop.ip not in estimates or delta < estimates[hop.ip]:
                estimates[hop.ip] = delta

    pairs: list[tuple[float, float]] = []
    for (obs_ixp, interface_ip), observation in summary.observations.items():
        if obs_ixp != ixp_id or interface_ip not in estimates:
            continue
        pairs.append((observation.rtt_min_ms, estimates[interface_ip]))

    rows = []
    headline: dict[str, object] = {
        "ixp": study.world.ixp(ixp_id).name,
        "interfaces_compared": len(pairs),
    }
    if pairs:
        ping_ecdf = ECDF.from_values([p for p, _ in pairs])
        trace_ecdf = ECDF.from_values([t for _, t in pairs])
        for threshold in (1.0, 2.0, 5.0, 10.0, 50.0):
            rows.append(
                {
                    "rtt_threshold_ms": threshold,
                    "ping_share_below": ping_ecdf.fraction_below(threshold),
                    "traceroute_share_below": trace_ecdf.fraction_below(threshold),
                }
            )
        differences = [abs(p - t) for p, t in pairs]
        headline["median_absolute_difference_ms"] = ECDF.from_values(differences).median
        headline["share_agreeing_on_10ms_threshold"] = (
            sum(1 for p, t in pairs if (p > 10.0) == (t > 10.0)) / len(pairs)
        )
    return ExperimentResult(
        experiment_id="fig12b",
        title="Ping RTTs vs traceroute-derived RTT estimates",
        paper_reference="Fig. 12b / Section 8",
        headline=headline,
        rows=rows,
        notes=(
            "The traceroute estimate is the RTT difference across the IXP crossing hop; the "
            "paper argues the two RTT patterns are close enough to scale the methodology "
            "beyond ping-capable vantage points."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 12a."""
    return run_fig12a(study)
