"""Fig. 8 — validation results per IXP in the test subset."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy
from repro.validation.report import per_ixp_metrics


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate the per-IXP precision/accuracy bars of Fig. 8."""
    validation = study.validation
    test_ixps = validation.test_ixps()
    metrics = per_ixp_metrics(study.outcome, validation, ixp_ids=test_ixps)
    sized = sorted(
        metrics.items(),
        key=lambda item: -len(study.dataset.members_of_ixp(item[0])),
    )
    rows = []
    for ixp_id, metric in sized:
        rows.append(
            {
                "ixp": study.world.ixp(ixp_id).name,
                "validated": metric.validated,
                "precision": metric.precision,
                "accuracy": metric.accuracy,
                "coverage": metric.coverage,
            }
        )
    accuracies = [m.accuracy for m in metrics.values() if m.inferred_and_validated > 0]
    return ExperimentResult(
        experiment_id="fig8",
        title="Per-IXP validation of the combined methodology",
        paper_reference="Fig. 8",
        headline={
            "test_ixps": len(test_ixps),
            "min_accuracy": min(accuracies) if accuracies else 0.0,
            "mean_accuracy": sum(accuracies) / len(accuracies) if accuracies else 0.0,
        },
        rows=rows,
        notes="The paper reports consistently high precision/accuracy, with the lowest around 91-92%.",
    )
