"""Experiment modules regenerating every table and figure of the paper.

Each module exposes a ``run(study)`` function taking a
:class:`~repro.study.RemotePeeringStudy` and returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
structure of the corresponding paper artefact.  The
:mod:`repro.experiments.runner` module runs them all and renders
``EXPERIMENTS.md``-style reports.

| module      | paper artefact                                             |
|-------------|------------------------------------------------------------|
| table1      | Table 1 — dataset contribution per source                  |
| table2      | Table 2 — validation dataset                                |
| table4      | Table 4 — per-step and combined validation metrics         |
| table5      | Table 5 — ping campaign statistics                         |
| fig1        | Fig. 1a/1b — facility distributions, control RTT ECDFs     |
| fig2        | Fig. 2a/2b — wide-area IXP delays and prevalence           |
| fig4_fig5   | Fig. 4/5 — port capacities and facility counts             |
| fig6        | Fig. 6 — inter-facility RTT vs distance bounds             |
| fig7        | Fig. 7 — feasible-ring worked example                      |
| fig8        | Fig. 8 — per-IXP validation metrics                        |
| fig9        | Fig. 9a-d — measurement and inference diagnostics          |
| fig10       | Fig. 10a/10b — step contributions and inferences per IXP   |
| fig11       | Fig. 11a/11b — member features per class                   |
| fig12       | Fig. 12a/12b — RP evolution and traceroute RTT comparison  |
| sec64       | Section 6.4 — routing implications                         |
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
