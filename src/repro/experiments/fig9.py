"""Fig. 9a-9d — measurement and inference diagnostics.

:func:`run_fig9_ablation` reruns the methodology with each step disabled in
turn.  The scenarios go through :meth:`RemotePeeringStudy.sweep` (the shared
step-graph engine), so an ablation that only toggles one step reuses every
other step's cached result instead of recomputing the whole pipeline per
scenario.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

from repro.analysis.ecdf import ECDF
from repro.core.types import PeeringClassification
from repro.experiments.base import ExperimentResult
from repro.measurement.vantage import VantagePointKind
from repro.study import RemotePeeringStudy

#: The per-step ablation scenarios, in pipeline order ("full" first).
ABLATION_SCENARIOS: tuple[tuple[str, dict[str, bool]], ...] = (
    ("full", {}),
    ("no_step1_port_capacity", {"enable_step1_port_capacity": False}),
    ("no_step3_colocation_rtt", {"enable_step3_colocation_rtt": False}),
    ("no_step4_multi_ixp", {"enable_step4_multi_ixp": False}),
    ("no_step5_private_links", {"enable_step5_private_links": False}),
)


def run_fig9a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 9a: response rates of looking glasses and Atlas probes."""
    summary = study.outcome.rtt_summary
    rows = []
    per_kind: dict[str, list[float]] = {"LG": [], "Atlas": []}
    for vp_id, vp in sorted(summary.usable_vps.items()):
        rate = summary.response_rate(vp_id)
        kind = "LG" if vp.kind is VantagePointKind.LOOKING_GLASS else "Atlas"
        per_kind[kind].append(rate)
        rows.append(
            {
                "vp_id": vp_id,
                "kind": kind,
                "queried": summary.queried_per_vp.get(vp_id, 0),
                "responsive": summary.responsive_per_vp.get(vp_id, 0),
                "response_rate": rate,
            }
        )
    headline = {
        "usable_vps": len(summary.usable_vps),
        "discarded_vps": len(summary.discarded_vps),
    }
    for kind, rates in per_kind.items():
        if rates:
            headline[f"mean_response_rate_{kind.lower()}"] = sum(rates) / len(rates)
    return ExperimentResult(
        experiment_id="fig9a",
        title="Response rates of looking glasses and Atlas probes",
        paper_reference="Fig. 9a",
        headline=headline,
        rows=rows,
        notes="LGs respond more reliably than Atlas probes, as in the paper (95% vs 75%).",
    )


def run_fig9b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 9b: ECDF of the minimum RTT per responsive IXP interface."""
    observations = list(study.outcome.rtt_summary.observations.values())
    rtts = [obs.rtt_min_ms for obs in observations]
    rows = []
    headline: dict[str, object] = {"responsive_interfaces": len(rtts)}
    if rtts:
        ecdf = ECDF.from_values(rtts)
        for threshold in (1.0, 2.0, 5.0, 10.0, 50.0):
            rows.append({"rtt_threshold_ms": threshold,
                         "share_below": ecdf.fraction_below(threshold)})
        headline.update(
            {
                "share_below_2ms": ecdf.fraction_below(2.0),
                "share_above_10ms": 1.0 - ecdf.fraction_below(10.0),
                "median_rtt_ms": ecdf.median,
            }
        )
    return ExperimentResult(
        experiment_id="fig9b",
        title="Minimum RTT ECDF over responsive peering interfaces",
        paper_reference="Fig. 9b",
        headline=headline,
        rows=rows,
        notes="The paper finds ~75% of interfaces within 2 ms and >20% above 10 ms.",
    )


def run_fig9c(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 9c: inference outcome vs number of feasible IXP facilities."""
    outcome = study.outcome
    counts: Counter = Counter()
    remote_no_feasible = 0
    remote_total = 0
    for analysis in outcome.feasible.values():
        bucket = min(analysis.n_feasible_ixp_facilities, 3)
        counts[(analysis.classification.value, bucket)] += 1
        if analysis.classification is PeeringClassification.REMOTE:
            remote_total += 1
            if analysis.n_feasible_ixp_facilities == 0:
                remote_no_feasible += 1
    rows = []
    for (classification, bucket), count in sorted(counts.items()):
        rows.append(
            {
                "classification": classification,
                "feasible_ixp_facilities": bucket if bucket < 3 else "3+",
                "interfaces": count,
            }
        )
    return ExperimentResult(
        experiment_id="fig9c",
        title="Step 3 outcome vs number of feasible IXP facilities",
        paper_reference="Fig. 9c",
        headline={
            "remote_interfaces_without_feasible_facility": (
                remote_no_feasible / remote_total if remote_total else 0.0
            ),
        },
        rows=rows,
        notes="The paper finds 94% of remote interfaces share no feasible facility with the IXP.",
    )


def run_fig9d(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 9d: multi-IXP router types vs number of next-hop IXPs."""
    routers = study.outcome.multi_ixp_routers
    rows = []
    histogram: Counter = Counter()
    for router in routers:
        bucket = "2" if router.ixp_count == 2 else "3-5" if router.ixp_count <= 5 else \
            "6-10" if router.ixp_count <= 10 else ">10"
        histogram[(router.kind.value, bucket)] += 1
    for (kind, bucket), count in sorted(histogram.items()):
        rows.append({"router_kind": kind, "next_hop_ixps": bucket, "routers": count})
    many_ixps = sum(1 for r in routers if r.ixp_count > 10)
    return ExperimentResult(
        experiment_id="fig9d",
        title="Multi-IXP router types vs number of next-hop IXPs",
        paper_reference="Fig. 9d",
        headline={
            "multi_ixp_routers": len(routers),
            "routers_with_more_than_10_ixps": many_ixps,
            "remote_routers": sum(1 for r in routers if r.kind.value == "remote"),
            "hybrid_routers": sum(1 for r in routers if r.kind.value == "hybrid"),
        },
        rows=rows,
        notes=(
            "The paper observes that remote multi-IXP routers are more prevalent than hybrid "
            "ones and that some routers connect to more than ten IXPs."
        ),
    )


def run_fig9_ablation(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 9 companion: per-step ablations as one engine-backed sweep."""
    base = study.config.inference
    configs = [replace(base, **overrides) for _, overrides in ABLATION_SCENARIOS]
    outcomes = study.sweep(configs)
    rows = []
    for (label, _), outcome in zip(ABLATION_SCENARIOS, outcomes):
        report = outcome.report
        rows.append(
            {
                "scenario": label,
                "inferred_interfaces": len(report.inferred()),
                "coverage": report.coverage(),
                "remote_share": report.remote_share(),
            }
        )
    full_coverage = rows[0]["coverage"]
    return ExperimentResult(
        experiment_id="fig9_ablation",
        title="Coverage and remote share with each step disabled in turn",
        paper_reference="Fig. 9 / Section 5.2 (per-step ablations)",
        headline={
            "scenarios": len(rows),
            "full_coverage": full_coverage,
            "max_coverage_lost": full_coverage - min(r["coverage"] for r in rows[1:]),
        },
        rows=rows,
        notes=(
            "Every scenario reruns the five-step methodology with one step disabled; the "
            "sweep shares the step-result cache, so only the toggled step (and its "
            "dependents) is recomputed per scenario."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 9b."""
    return run_fig9b(study)
