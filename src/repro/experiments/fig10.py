"""Fig. 10a/10b — per-IXP step contributions and inference results."""

from __future__ import annotations

from repro.core.types import InferenceStep, PeeringClassification
from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy

_STEP_LABELS = {
    InferenceStep.PORT_CAPACITY: "port_capacity",
    InferenceStep.RTT_COLOCATION: "rtt_colocation",
    InferenceStep.MULTI_IXP_ROUTER: "multi_ixp",
    InferenceStep.PRIVATE_CONNECTIVITY: "private_links",
}


def run_fig10a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 10a: contribution of each inference step per IXP."""
    report = study.outcome.report
    rows = []
    for ixp_id in study.studied_ixp_ids:
        results = report.results_for_ixp(ixp_id)
        inferred = [r for r in results if r.is_inferred]
        contributions = report.step_contributions(ixp_id)
        row: dict[str, object] = {
            "ixp": study.world.ixp(ixp_id).name,
            "interfaces": len(results),
            "inferred": len(inferred),
        }
        for step, label in _STEP_LABELS.items():
            share = contributions.get(step, 0) / len(inferred) if inferred else 0.0
            row[label] = share
        rows.append(row)
    global_contributions = report.step_contributions()
    total_inferred = len(report.inferred())
    headline = {
        label: global_contributions.get(step, 0) / total_inferred if total_inferred else 0.0
        for step, label in _STEP_LABELS.items()
    }
    return ExperimentResult(
        experiment_id="fig10a",
        title="Contribution of each inference step per IXP",
        paper_reference="Fig. 10a",
        headline=headline,
        rows=rows,
        notes="RTT+colocation dominates, port capacity contributes ~10%, the rest fill the gaps.",
    )


def run_fig10b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 10b: local/remote inferences per IXP and the headline remote shares."""
    report = study.outcome.report
    rows = []
    ixps_above_10pct = 0
    for ixp_id in study.studied_ixp_ids:
        results = report.results_for_ixp(ixp_id)
        inferred = [r for r in results if r.is_inferred]
        remote = sum(1 for r in inferred if r.classification is PeeringClassification.REMOTE)
        share = remote / len(inferred) if inferred else 0.0
        if share > 0.10:
            ixps_above_10pct += 1
        rows.append(
            {
                "ixp": study.world.ixp(ixp_id).name,
                "interfaces": len(results),
                "inferred": len(inferred),
                "remote": remote,
                "local": len(inferred) - remote,
                "remote_share": share,
            }
        )
    top2 = rows[:2]
    top2_share = (
        sum(r["remote"] for r in top2) / max(1, sum(r["inferred"] for r in top2))
        if top2 else 0.0
    )
    return ExperimentResult(
        experiment_id="fig10b",
        title="Inferred local and remote members per IXP",
        paper_reference="Fig. 10b",
        headline={
            "overall_remote_share": report.remote_share(),
            "overall_coverage": report.coverage(),
            "ixps_with_more_than_10pct_remote": (
                ixps_above_10pct / len(study.studied_ixp_ids) if study.studied_ixp_ids else 0.0
            ),
            "largest_two_ixps_remote_share": top2_share,
        },
        rows=rows,
        notes=(
            "The paper finds 28% of inferred interfaces remote overall, >10% remote members at "
            "90% of the IXPs, and ~40% at the two largest IXPs."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 10b."""
    return run_fig10b(study)
