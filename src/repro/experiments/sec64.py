"""Section 6.4 — routing implications of remote peering at the largest IXP."""

from __future__ import annotations

from repro.analysis.routing_implications import RoutingImplicationsAnalysis
from repro.experiments.base import ExperimentResult
from repro.measurement.traceroute import TracerouteCampaign
from repro.study import RemotePeeringStudy


def run(study: RemotePeeringStudy, *, max_pairs: int = 1500) -> ExperimentResult:
    """Regenerate the hot-potato / detour statistics of Section 6.4."""
    campaign = TracerouteCampaign(study.world, study.config.campaign,
                                  delay_model=study.delay_model,
                                  world_index=study.world_distance_index)
    analysis = RoutingImplicationsAnalysis(
        outcome=study.outcome,
        dataset=study.dataset,
        prefix2as=study.prefix2as,
        campaign=campaign,
        max_pairs=max_pairs,
        seed=study.config.generator.seed + 64,
    )
    implications = analysis.run()
    shares = implications.shares()
    rows = [
        {"bucket": "hot-potato compliant", "crossings": implications.hot_potato_compliant,
         "share": shares["hot_potato"]},
        {"bucket": "remote detour via the big IXP", "crossings":
            implications.remote_detour_via_big_ixp, "share": shares["remote_detour"]},
        {"bucket": "missed closer big IXP", "crossings": implications.missed_closer_big_ixp,
         "share": shares["missed_big_ixp"]},
        {"bucket": "other non-compliant", "crossings": implications.other_non_compliant,
         "share": shares["other"]},
    ]
    return ExperimentResult(
        experiment_id="sec64",
        title="Routing implications of remote peering at the largest IXP",
        paper_reference="Section 6.4",
        headline={
            "big_ixp": study.world.ixp(implications.big_ixp_id).name,
            "pairs_probed": implications.pairs_probed,
            "crossings_analysed": implications.crossings_analysed,
            "hot_potato_share": shares["hot_potato"],
        },
        rows=rows,
        notes=(
            "The paper reports ~66% hot-potato-compliant crossings, ~18% using the remote "
            "peering at DE-CIX although a closer common IXP exists, and ~16% using another "
            "IXP although DE-CIX is closer."
        ),
    )
