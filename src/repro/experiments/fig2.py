"""Fig. 2a/2b — wide-area IXP delay matrices and prevalence."""

from __future__ import annotations

from repro.analysis.wide_area import (
    classify_wide_area_ixps,
    wide_area_fraction,
    wide_area_fraction_among_largest,
)
from repro.experiments.base import ExperimentResult
from repro.exceptions import ReproError
from repro.measurement.y1731 import Y1731Monitor
from repro.study import RemotePeeringStudy


def _widest_ixps(study: RemotePeeringStudy, count: int) -> list[str]:
    """The IXPs whose ground-truth fabric spans the largest distances."""
    spans = {
        ixp_id: study.world.max_ixp_facility_distance_km(ixp_id)
        for ixp_id in study.world.ixps
        if len(study.world.ixp(ixp_id).facility_ids) >= 2
    }
    ranked = sorted(spans, key=lambda i: -spans[i])
    return ranked[:count]


def run_fig2a(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 2a: median inter-facility RTTs of a wide-area IXP."""
    candidates = _widest_ixps(study, 1)
    if not candidates:
        raise ReproError("the world has no IXP with at least two facilities")
    ixp_id = candidates[0]
    matrix = Y1731Monitor(study.world, study.config.campaign,
                          delay_model=study.delay_model).measure(ixp_id)
    rows = []
    for facility_a, facility_b in matrix.pairs()[:30]:
        rows.append(
            {
                "facility_a": facility_a,
                "facility_b": facility_b,
                "distance_km": matrix.distances_km[(facility_a, facility_b)],
                "median_rtt_ms": matrix.rtt(facility_a, facility_b),
            }
        )
    return ExperimentResult(
        experiment_id="fig2a",
        title="Median RTTs between the facilities of a wide-area IXP",
        paper_reference="Fig. 2a",
        headline={
            "ixp": study.world.ixp(ixp_id).name,
            "facility_pairs": len(matrix.pairs()),
            "share_of_pairs_above_10ms": matrix.fraction_above(10.0),
        },
        rows=rows,
        notes="The paper's NET-IX matrix has 87% of facility pairs above 10 ms.",
    )


def run_fig2b(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 2b: maximum facility distance vs member count; wide-area prevalence."""
    records = classify_wide_area_ixps(study.dataset)
    rows = [
        {
            "ixp_id": record.ixp_id,
            "members": record.member_count,
            "facilities": record.facility_count,
            "max_facility_distance_km": record.max_facility_distance_km,
            "wide_area": record.is_wide_area,
        }
        for record in sorted(records.values(), key=lambda r: -r.member_count)
    ]
    return ExperimentResult(
        experiment_id="fig2b",
        title="Wide-area IXPs: facility span vs membership",
        paper_reference="Fig. 2b / Section 4.2",
        headline={
            "classified_ixps": len(records),
            "wide_area_share": wide_area_fraction(records),
            "wide_area_share_top50": wide_area_fraction_among_largest(records, 50),
        },
        rows=rows,
        notes="The paper finds 14.4% of IXPs (20% of the 50 largest) to be wide-area.",
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 2b (the prevalence statistic)."""
    return run_fig2b(study)
