"""Table 5 — statistics of the interfaces involved in the ping campaign."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.measurement.vantage import VantagePointKind
from repro.study import RemotePeeringStudy


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate Table 5 from the ping campaign of the studied IXPs."""
    outcome = study.outcome
    ping = study.ping_result
    summary = outcome.rtt_summary

    rows = []
    totals = {"vps": 0, "queried": 0, "responsive": 0, "members": set(), "ixps": set()}
    for kind in (VantagePointKind.LOOKING_GLASS, VantagePointKind.ATLAS_PROBE):
        vps = [vp for vp in summary.usable_vps.values() if vp.kind is kind]
        queried: set[tuple[str, str]] = set()
        responsive: set[tuple[str, str]] = set()
        members: set[int] = set()
        ixps: set[str] = set()
        for series in ping.series:
            vp = ping.vantage_points.get(series.vp_id)
            if vp is None or vp.kind is not kind or series.vp_id not in summary.usable_vps:
                continue
            key = (series.ixp_id, series.target_ip)
            queried.add(key)
            ixps.add(series.ixp_id)
            if series.responded:
                responsive.add(key)
                asn = study.dataset.asn_of_interface(series.target_ip)
                if asn is not None:
                    members.add(asn)
        rows.append(
            {
                "vp_type": "LG" if kind is VantagePointKind.LOOKING_GLASS else "Atlas",
                "usable_vps": len(vps),
                "interfaces_queried": len(queried),
                "interfaces_responsive": len(responsive),
                "response_rate": len(responsive) / len(queried) if queried else 0.0,
                "members": len(members),
                "ixps": len(ixps),
            }
        )
        totals["vps"] += len(vps)
        totals["queried"] += len(queried)
        totals["responsive"] += len(responsive)
        totals["members"].update(members)
        totals["ixps"].update(ixps)

    rows.append(
        {
            "vp_type": "Total",
            "usable_vps": totals["vps"],
            "interfaces_queried": totals["queried"],
            "interfaces_responsive": totals["responsive"],
            "response_rate": totals["responsive"] / totals["queried"] if totals["queried"] else 0.0,
            "members": len(totals["members"]),
            "ixps": len(totals["ixps"]),
        }
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Ping campaign interface statistics",
        paper_reference="Table 5",
        headline={
            "studied_ixps": len(study.studied_ixp_ids),
            "usable_vps": totals["vps"],
            "discarded_vps": len(summary.discarded_vps),
            "overall_response_rate": (
                totals["responsive"] / totals["queried"] if totals["queried"] else 0.0
            ),
        },
        rows=rows,
        notes="Queried/responsive counts are per (IXP, interface) pair across usable vantage points.",
    )
