"""Fig. 7 — worked feasible-ring example at a geographically distributed IXP."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Show how measured RTTs translate into feasible facilities for one IXP.

    The paper illustrates this with NL-IX: a vantage point in Amsterdam, a
    4 ms RTT, and feasible facilities in London and Frankfurt that allow a
    peer to be correctly inferred local despite the "high" RTT.  Here the
    studied IXP with the widest observed facility footprint plays that role.
    """
    outcome = study.outcome
    dataset = study.dataset
    # Prefer the studied IXP whose observed facilities span the most space.
    candidates = sorted(
        study.studied_ixp_ids,
        key=lambda ixp_id: -len(dataset.facilities_of_ixp(ixp_id)),
    )
    ixp_id = candidates[0]
    analyses = [a for (i, _), a in outcome.feasible.items() if i == ixp_id]
    analyses.sort(key=lambda a: -a.ring.max_distance_km)

    rows = []
    for analysis in analyses[:20]:
        observation = outcome.rtt_summary.observation_for(ixp_id, analysis.interface_ip)
        rows.append(
            {
                "interface": analysis.interface_ip,
                "rtt_min_ms": observation.rtt_min_ms if observation else None,
                "ring_min_km": analysis.ring.min_distance_km,
                "ring_max_km": analysis.ring.max_distance_km,
                "feasible_ixp_facilities": analysis.n_feasible_ixp_facilities,
                "classification": analysis.classification.value,
            }
        )
    local_with_high_rtt = sum(
        1 for a in analyses
        if a.classification.value == "local"
        and outcome.rtt_summary.observation_for(ixp_id, a.interface_ip) is not None
        and outcome.rtt_summary.observation_for(ixp_id, a.interface_ip).rtt_min_ms > 2.0
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Feasible-ring interpretation of RTTs at a distributed IXP",
        paper_reference="Fig. 7",
        headline={
            "ixp": study.world.ixp(ixp_id).name,
            "interfaces_analysed": len(analyses),
            "local_despite_rtt_above_2ms": local_with_high_rtt,
        },
        rows=rows,
        notes=(
            "Members classified local despite RTTs above the naive 2 ms threshold are exactly "
            "the wide-area false positives the colocation-informed interpretation avoids."
        ),
    )
