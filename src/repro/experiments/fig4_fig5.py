"""Fig. 4 / Fig. 5 — port capacities and colocation footprints of remote vs local peers."""

from __future__ import annotations

from collections import Counter

from repro.constants import CAPACITY_GE
from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy


def _control_entries(study: RemotePeeringStudy):
    validation = study.validation
    ixps = validation.control_ixps() or validation.ixp_ids()
    for ixp_id in ixps:
        for entry in validation.entries_for_ixp(ixp_id):
            yield entry


def run_fig4(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 4: port capacities of remote and local peers (control subset)."""
    dataset = study.dataset
    buckets = {"remote": Counter(), "local": Counter()}
    fractional = {"remote": 0, "local": 0}
    totals = {"remote": 0, "local": 0}
    for entry in _control_entries(study):
        capacity = dataset.port_capacity(entry.ixp_id, entry.asn)
        if capacity is None:
            continue
        label = "remote" if entry.is_remote else "local"
        totals[label] += 1
        buckets[label][capacity] += 1
        if capacity < CAPACITY_GE:
            fractional[label] += 1

    capacities = sorted({c for counter in buckets.values() for c in counter})
    rows = []
    for capacity in capacities:
        rows.append(
            {
                "port_capacity_mbps": capacity,
                "share_of_local": (buckets["local"][capacity] / totals["local"]
                                   if totals["local"] else 0.0),
                "share_of_remote": (buckets["remote"][capacity] / totals["remote"]
                                    if totals["remote"] else 0.0),
            }
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="Port capacities of remote and local peers",
        paper_reference="Fig. 4",
        headline={
            "remote_on_fractional_ports": (fractional["remote"] / totals["remote"]
                                           if totals["remote"] else 0.0),
            "local_on_fractional_ports": (fractional["local"] / totals["local"]
                                          if totals["local"] else 0.0),
        },
        rows=rows,
        notes=(
            "The paper finds ~27% of remote peers on sub-1GE (reseller) ports and no local "
            "peer below the minimum physical capacity."
        ),
    )


def run_fig5(study: RemotePeeringStudy) -> ExperimentResult:
    """Fig. 5: number of IXP facilities where remote/local peers are present."""
    dataset = study.dataset
    histogram = {"remote": Counter(), "local": Counter()}
    totals = {"remote": 0, "local": 0}
    for entry in _control_entries(study):
        label = "remote" if entry.is_remote else "local"
        common = dataset.common_facilities(entry.ixp_id, entry.asn)
        has_data = bool(dataset.facilities_of_as(entry.asn))
        key = "no data" if not has_data else str(min(len(common), 3))
        histogram[label][key] += 1
        totals[label] += 1

    rows = []
    for key in ("no data", "0", "1", "2", "3"):
        rows.append(
            {
                "ixp_facilities_with_presence": key,
                "share_of_local": (histogram["local"][key] / totals["local"]
                                   if totals["local"] else 0.0),
                "share_of_remote": (histogram["remote"][key] / totals["remote"]
                                    if totals["remote"] else 0.0),
            }
        )
    remote_without_common = (
        (histogram["remote"]["0"] + histogram["remote"]["no data"]) / totals["remote"]
        if totals["remote"] else 0.0
    )
    local_with_common = (
        sum(histogram["local"][k] for k in ("1", "2", "3")) / totals["local"]
        if totals["local"] else 0.0
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="IXP facilities where remote and local peers are present",
        paper_reference="Fig. 5",
        headline={
            "remote_without_common_facility": remote_without_common,
            "local_with_common_facility": local_with_common,
        },
        rows=rows,
        notes=(
            "The paper finds ~95% of remote peers share no facility with the IXP, while all "
            "local peers do (modulo missing colocation data)."
        ),
    )


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Default entry point: Fig. 4."""
    return run_fig4(study)
