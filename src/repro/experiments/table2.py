"""Table 2 — validation data retrieved from IXP operators and websites."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import RemotePeeringStudy
from repro.validation.dataset import ValidationSubset


def run(study: RemotePeeringStudy) -> ExperimentResult:
    """Regenerate Table 2 from the exported validation labels."""
    validation = study.validation
    rows = []
    totals = {"total_peers": 0, "validated_peers": 0, "local": 0, "remote": 0}
    for ixp_id in validation.ixp_ids():
        counts = validation.counts(ixp_id)
        ixp = study.world.ixp(ixp_id)
        rows.append(
            {
                "ixp": ixp.name,
                "subset": validation.subsets[ixp_id].value,
                "provenance": validation.provenance[ixp_id].value,
                "facilities": len(ixp.facility_ids),
                **counts,
            }
        )
        for key in totals:
            totals[key] += counts[key]
    rows.append({"ixp": "Total", "subset": "", "provenance": "", "facilities": "", **totals})
    return ExperimentResult(
        experiment_id="table2",
        title="Validation dataset (control and test subsets)",
        paper_reference="Table 2",
        headline={
            "validated_ixps": len(validation.ixp_ids()),
            "control_ixps": len(validation.ixp_ids(ValidationSubset.CONTROL)),
            "test_ixps": len(validation.ixp_ids(ValidationSubset.TEST)),
            "validated_peers": totals["validated_peers"],
        },
        rows=rows,
        notes=(
            "Labels are exported from the ground-truth world with partial per-IXP coverage, "
            "mimicking operator and website lists; IXPs without usable vantage points form "
            "the control subset."
        ),
    )
