"""repro — a full reproduction of "O Peer, Where Art Thou? Uncovering Remote
Peering Interconnections at IXPs" (IMC 2018).

The package is organised in layers:

* ``repro.geo`` / ``repro.topology`` — the synthetic ground-truth Internet
  (facilities, IXPs, ASes, routers, resellers, memberships);
* ``repro.datasources`` — noisy simulated views of the public databases the
  paper merges (IXP websites, Hurricane Electric, PeeringDB, PCH, Inflect,
  CAIDA, APNIC, Routeviews prefix2as);
* ``repro.measurement`` / ``repro.routing`` / ``repro.traixroute`` /
  ``repro.alias`` — the active-measurement substrate (ping and traceroute
  campaigns, vantage points, Y.1731 monitors, IXP-crossing detection, alias
  resolution);
* ``repro.core`` — the paper's contribution: the five-step remote-peering
  inference pipeline and the RTT-threshold baseline;
* ``repro.validation`` / ``repro.analysis`` / ``repro.experiments`` —
  validation metrics, the Section 6 analyses and one experiment module per
  paper table/figure;
* ``repro.portal`` — snapshot/GeoJSON exports mirroring the paper's portal.

Quick start::

    from repro import ExperimentConfig, RemotePeeringStudy

    study = RemotePeeringStudy(ExperimentConfig.small())
    outcome = study.outcome
    print(outcome.report.remote_share())
"""

from repro.config import (
    CampaignConfig,
    DataSourceNoiseConfig,
    ExperimentConfig,
    GeneratorConfig,
    InferenceConfig,
)
from repro.core.pipeline import PipelineOutcome, RemotePeeringPipeline
from repro.core.types import (
    InferenceReport,
    InferenceResult,
    InferenceStep,
    PeeringClassification,
)
from repro.study import RemotePeeringStudy
from repro.topology.generator import WorldGenerator
from repro.topology.world import World

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "DataSourceNoiseConfig",
    "ExperimentConfig",
    "GeneratorConfig",
    "InferenceConfig",
    "PipelineOutcome",
    "RemotePeeringPipeline",
    "InferenceReport",
    "InferenceResult",
    "InferenceStep",
    "PeeringClassification",
    "RemotePeeringStudy",
    "WorldGenerator",
    "World",
    "__version__",
]
