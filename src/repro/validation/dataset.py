"""Construction of the validation dataset (ground-truth labels).

The exported labels mimic what the paper obtained from operators and
websites: only a subset of each IXP's members is labelled (operators know who
connects through their reseller programme, but not what happens "beyond the
cable"), and the labelled IXPs are split into a *control* subset (no usable
vantage point — used in Section 4 to study RTT-only inference) and a *test*
subset (with vantage points — used to validate the methodology in Section
5.3).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.topology.world import World


class ValidationSubset(enum.Enum):
    """Which validation subset an IXP belongs to."""

    CONTROL = "control"
    TEST = "test"


class ValidationProvenance(enum.Enum):
    """Where the labels of an IXP came from."""

    OPERATORS = "operators"
    WEBSITES = "websites"


@dataclass(frozen=True)
class ValidationEntry:
    """Ground-truth label for one member interface."""

    ixp_id: str
    interface_ip: str
    asn: int
    is_remote: bool


@dataclass
class ValidationDataset:
    """Partial ground-truth labels for a set of IXPs."""

    entries: dict[tuple[str, str], ValidationEntry] = field(default_factory=dict)
    subsets: dict[str, ValidationSubset] = field(default_factory=dict)
    provenance: dict[str, ValidationProvenance] = field(default_factory=dict)
    total_members: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def add(self, entry: ValidationEntry) -> None:
        """Register one labelled interface."""
        self.entries[(entry.ixp_id, entry.interface_ip)] = entry

    def label_for(self, ixp_id: str, interface_ip: str) -> bool | None:
        """Ground-truth remoteness for an interface, if validated."""
        entry = self.entries.get((ixp_id, interface_ip))
        return entry.is_remote if entry else None

    def entries_for_ixp(self, ixp_id: str) -> list[ValidationEntry]:
        """Every labelled interface of one IXP."""
        return [e for (ixp, _), e in self.entries.items() if ixp == ixp_id]

    def ixp_ids(self, subset: ValidationSubset | None = None) -> list[str]:
        """Validated IXPs, optionally restricted to one subset."""
        return sorted(
            ixp_id for ixp_id, s in self.subsets.items() if subset is None or s is subset
        )

    def control_ixps(self) -> list[str]:
        """IXPs in the control subset."""
        return self.ixp_ids(ValidationSubset.CONTROL)

    def test_ixps(self) -> list[str]:
        """IXPs in the test subset."""
        return self.ixp_ids(ValidationSubset.TEST)

    def counts(self, ixp_id: str) -> dict[str, int]:
        """Validated/local/remote counts for one IXP (one row of Table 2)."""
        entries = self.entries_for_ixp(ixp_id)
        remote = sum(1 for e in entries if e.is_remote)
        return {
            "total_peers": self.total_members.get(ixp_id, len(entries)),
            "validated_peers": len(entries),
            "local": len(entries) - remote,
            "remote": remote,
        }

    def __len__(self) -> int:
        return len(self.entries)


class ValidationDatasetBuilder:
    """Exports partial ground-truth labels from the world."""

    def __init__(
        self,
        world: World,
        *,
        seed: int | None = None,
        coverage_range: tuple[float, float] = (0.45, 0.80),
    ) -> None:
        low, high = coverage_range
        if not (0.0 < low <= high <= 1.0):
            raise ValidationError("coverage_range must satisfy 0 < low <= high <= 1")
        self.world = world
        self.coverage_range = coverage_range
        self._rng = random.Random((seed if seed is not None else world.seed) * 37 + 5)

    def build(
        self,
        candidate_ixp_ids: list[str],
        ixps_with_vantage_points: set[str],
        *,
        operator_count: int = 6,
        max_ixps: int = 15,
    ) -> ValidationDataset:
        """Build the validation dataset.

        Parameters
        ----------
        candidate_ixp_ids:
            IXPs for which ground truth could plausibly be obtained (the
            paper's 15), usually the largest ones.
        ixps_with_vantage_points:
            IXPs with at least one usable vantage point; these form the
            *test* subset, the rest form the *control* subset.
        operator_count:
            How many IXPs are labelled "provided by operators" (the others
            count as website-derived); affects only reporting.
        max_ixps:
            Upper bound on the number of validated IXPs.
        """
        if not candidate_ixp_ids:
            raise ValidationError("candidate_ixp_ids must not be empty")
        dataset = ValidationDataset()
        chosen = candidate_ixp_ids[:max_ixps]
        for index, ixp_id in enumerate(chosen):
            subset = (
                ValidationSubset.TEST
                if ixp_id in ixps_with_vantage_points
                else ValidationSubset.CONTROL
            )
            dataset.subsets[ixp_id] = subset
            dataset.provenance[ixp_id] = (
                ValidationProvenance.OPERATORS
                if index < operator_count
                else ValidationProvenance.WEBSITES
            )
            memberships = self.world.active_memberships(ixp_id)
            dataset.total_members[ixp_id] = len(memberships)
            coverage = self._rng.uniform(*self.coverage_range)
            for membership in memberships:
                if self._rng.random() >= coverage:
                    continue
                dataset.add(
                    ValidationEntry(
                        ixp_id=ixp_id,
                        interface_ip=membership.interface_ip,
                        asn=membership.asn,
                        is_remote=membership.is_remote,
                    )
                )
        return dataset
