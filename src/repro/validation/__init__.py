"""Validation datasets and metrics.

The paper validates its methodology against ground truth obtained from IXP
operators (6 IXPs) and from IXP websites that publish member port types
(9 IXPs), split into a "control" subset (no public vantage point; used to
study inference challenges) and a "test" subset (with vantage points; used to
validate the full methodology).  The metrics are the coverage, false-positive
rate, false-negative rate, precision and accuracy of Table 3.

Here the ground truth comes from the generated world, exported with the same
partial coverage an operator list would have.
"""

from repro.validation.dataset import (
    ValidationDataset,
    ValidationDatasetBuilder,
    ValidationEntry,
    ValidationSubset,
)
from repro.validation.metrics import ValidationMetrics, evaluate_report
from repro.validation.report import per_ixp_metrics, per_step_metrics

__all__ = [
    "ValidationDataset",
    "ValidationDatasetBuilder",
    "ValidationEntry",
    "ValidationSubset",
    "ValidationMetrics",
    "evaluate_report",
    "per_ixp_metrics",
    "per_step_metrics",
]
