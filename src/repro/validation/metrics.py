"""Validation metrics (Table 3 of the paper).

All metrics ignore inferences for interfaces without validation data and
validated interfaces that received no inference, exactly as defined in the
paper:

* ``COV`` — fraction of validated interfaces that received an inference;
* ``FPR`` — fraction of validated-local, inferred interfaces that were
  wrongly inferred remote;
* ``FNR`` — fraction of validated-remote, inferred interfaces that were
  wrongly inferred local;
* ``PRE`` — precision of the remote class;
* ``ACC`` — overall accuracy over inferred-and-validated interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import InferenceReport, InferenceStep, PeeringClassification
from repro.validation.dataset import ValidationDataset


@dataclass(frozen=True)
class ValidationMetrics:
    """Confusion counts and the derived Table 3 metrics."""

    validated: int
    inferred_and_validated: int
    true_remote: int
    true_local: int
    false_remote: int
    false_local: int

    @property
    def coverage(self) -> float:
        """COV: inferred share of the validated interfaces."""
        if self.validated == 0:
            return 0.0
        return self.inferred_and_validated / self.validated

    @property
    def false_positive_rate(self) -> float:
        """FPR: validated-local interfaces inferred remote."""
        denominator = self.true_local + self.false_remote
        if denominator == 0:
            return 0.0
        return self.false_remote / denominator

    @property
    def false_negative_rate(self) -> float:
        """FNR: validated-remote interfaces inferred local."""
        denominator = self.true_remote + self.false_local
        if denominator == 0:
            return 0.0
        return self.false_local / denominator

    @property
    def precision(self) -> float:
        """PRE: precision of the remote class."""
        denominator = self.true_remote + self.false_remote
        if denominator == 0:
            return 0.0
        return self.true_remote / denominator

    @property
    def accuracy(self) -> float:
        """ACC: correct inferences among inferred-and-validated interfaces."""
        if self.inferred_and_validated == 0:
            return 0.0
        return (self.true_remote + self.true_local) / self.inferred_and_validated

    def as_row(self) -> dict[str, float]:
        """Render the metrics as a Table 4-style row."""
        return {
            "FPR": self.false_positive_rate,
            "FNR": self.false_negative_rate,
            "PRE": self.precision,
            "ACC": self.accuracy,
            "COV": self.coverage,
        }


def evaluate_report(
    report: InferenceReport,
    validation: ValidationDataset,
    *,
    ixp_ids: list[str] | None = None,
    steps: set[InferenceStep] | None = None,
) -> ValidationMetrics:
    """Compare a report against validation labels.

    Parameters
    ----------
    report:
        The inference report to evaluate.
    validation:
        Ground-truth labels.
    ixp_ids:
        Restrict the evaluation to these IXPs (default: every validated IXP).
    steps:
        When given, only inferences produced by these steps count as
        "inferred" — used to validate individual steps of the methodology.
    """
    wanted = set(ixp_ids) if ixp_ids is not None else None
    validated = 0
    inferred = 0
    true_remote = true_local = false_remote = false_local = 0

    for (ixp_id, interface_ip), entry in validation.entries.items():
        if wanted is not None and ixp_id not in wanted:
            continue
        validated += 1
        result = report.result_for(ixp_id, interface_ip)
        if result is None or not result.is_inferred:
            continue
        if steps is not None and result.step not in steps:
            continue
        inferred += 1
        inferred_remote = result.classification is PeeringClassification.REMOTE
        if inferred_remote and entry.is_remote:
            true_remote += 1
        elif inferred_remote and not entry.is_remote:
            false_remote += 1
        elif not inferred_remote and entry.is_remote:
            false_local += 1
        else:
            true_local += 1

    return ValidationMetrics(
        validated=validated,
        inferred_and_validated=inferred,
        true_remote=true_remote,
        true_local=true_local,
        false_remote=false_remote,
        false_local=false_local,
    )
