"""Higher-level validation reporting: per IXP (Fig. 8) and per step (Table 4)."""

from __future__ import annotations

from repro.core.pipeline import PipelineOutcome
from repro.core.types import InferenceStep
from repro.validation.dataset import ValidationDataset
from repro.validation.metrics import ValidationMetrics, evaluate_report


def per_ixp_metrics(
    outcome: PipelineOutcome,
    validation: ValidationDataset,
    ixp_ids: list[str] | None = None,
) -> dict[str, ValidationMetrics]:
    """Precision/accuracy per validated IXP (the data behind Fig. 8)."""
    targets = ixp_ids if ixp_ids is not None else validation.ixp_ids()
    return {
        ixp_id: evaluate_report(outcome.report, validation, ixp_ids=[ixp_id])
        for ixp_id in targets
    }


def per_step_metrics(
    outcome: PipelineOutcome,
    validation: ValidationDataset,
    ixp_ids: list[str] | None = None,
) -> dict[str, ValidationMetrics]:
    """Validation of each step and of the combined methodology (Table 4).

    The baseline row evaluates the standalone RTT-threshold report; each step
    row evaluates only the classifications that step contributed within the
    full pipeline run (its coverage is therefore the share of validated
    interfaces that step itself classified); the combined row evaluates the
    full report.
    """
    rows: dict[str, ValidationMetrics] = {}
    rows["rtt_baseline"] = evaluate_report(
        outcome.baseline_report, validation, ixp_ids=ixp_ids)
    step_keys = {
        "step1_port_capacity": {InferenceStep.PORT_CAPACITY},
        "step2_3_rtt_colocation": {InferenceStep.RTT_COLOCATION},
        "step4_multi_ixp": {InferenceStep.MULTI_IXP_ROUTER},
        "step5_private_links": {InferenceStep.PRIVATE_CONNECTIVITY},
    }
    for key, steps in step_keys.items():
        rows[key] = evaluate_report(outcome.report, validation, ixp_ids=ixp_ids, steps=steps)
    rows["combined"] = evaluate_report(outcome.report, validation, ixp_ids=ixp_ids)
    return rows
