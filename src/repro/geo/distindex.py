"""Shared geodesic-distance index for the geometry hot path (Steps 3/4).

The paper's core signal (Section 5.2) turns minimum RTTs into feasible
distance rings and intersects them with colocation footprints.  The seed
implementation re-ran the iterative Vincenty solver from scratch for every
(vantage point, facility) and (facility, facility) combination, although the
same combinations recur thousands of times per corpus: every interface
measured from one vantage point re-measures the same IXP facilities, and
every multi-IXP router of one AS re-compares the same (AS, IXP) and
(IXP, IXP) facility sets.

:class:`GeoDistanceIndex` is the geometry analogue of
:class:`repro.netindex.LPMIndex`: one shared, memoised lookup structure built
per :class:`~repro.datasources.merge.ObservedDataset` and reused across
pipeline runs (scenario sweeps rerun the pipeline under many configurations
on the same dataset).  It provides:

* **point-to-facility distances** — computed once per (point, facility) and
  memoised, including the "facility has no coordinates" miss;
* **facility-pair distances** — memoised under an order-independent key
  (geodesic distance is symmetric);
* **sorted distance profiles** — for one origin point and one footprint (the
  facilities of an IXP, or of a member AS) the located facilities sorted by
  distance, so Step 3's feasible-facility test becomes two :mod:`bisect`
  calls instead of one Vincenty run per facility;
* **footprint span aggregates** — min/max pairwise distance between two
  facility sets, memoised per (AS, IXP), (IXP, IXP) and
  (AS ∩ IXP, IXP) combination for Step 4's remote/hybrid conditions;
* **majority facility votes** — the facilities shared by a strict majority of
  a neighbour-AS set, memoised per frozen neighbour set for Step 5's
  private-connectivity vote (the same neighbour sets recur across the
  interfaces of one member AS and across scenario-sweep reruns).

Invariants consumers rely on:

1. **Bit-identical distances** — every value served by the index is produced
   by :func:`repro.geo.coordinates.geodesic_distance_km` on exactly the
   arguments the per-call path would have used, so classifications computed
   through the index are identical to the seed per-call path.
2. **Inclusive interval semantics** — :meth:`DistanceProfile.within` returns
   facilities with ``min_km <= distance <= max_km`` (``bisect_left`` /
   ``bisect_right``), matching the seed's inclusive ring comparison.
3. **Journalled revision consistency** — the index tracks the dataset's
   generation stamp (:class:`~repro.versioning.Versioned`).  Mutations made
   through the dataset's journal-emitting mutators are replayed lazily on
   the next lookup, evicting **only the memos a change can touch** (the
   point/pair distances, profiles and spans involving a moved facility, the
   profiles/spans of a re-footprinted IXP or AS, the majority votes of a
   re-footprinted AS) instead of tearing the whole index down.  Mutating the
   dataset's dicts *directly* bumps nothing — that legacy path still
   requires :meth:`GeoDistanceIndex.invalidate` (or a fresh index), exactly
   as before.  An opaque bump (``invalidate_caches()``) or a truncated
   journal falls back to wholesale invalidation, so the index is never
   stale, only occasionally over-evicted.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from itertools import combinations_with_replacement, product
from threading import RLock
from typing import TYPE_CHECKING, Any

from repro.geo import coordinates
from repro.geo.coordinates import (
    GeoPoint,
    _vincenty_lanes,
    geodesic_distance_km,
    geodesic_distances_km,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (merge imports geo)
    from repro.datasources.merge import ObservedDataset
    from repro.versioning import Change

#: Journalled changes beyond which a replay stops being cheaper than a
#: wholesale invalidation (each eviction scans the memo tables once).
SELECTIVE_EVICTION_LIMIT = 64


@dataclass(frozen=True)
class DistanceProfile:
    """One footprint's located facilities, sorted by distance from one point.

    ``distances[i]`` is the geodesic distance from the origin point to
    ``facility_ids[i]``; the arrays are sorted by (distance, facility id).
    Facilities without coordinates are excluded, exactly as the per-call
    feasibility test treated them (never feasible).
    """

    distances: tuple[float, ...]
    facility_ids: tuple[str, ...]

    def within(self, min_km: float, max_km: float) -> set[str]:
        """Facilities whose distance lies in ``[min_km, max_km]`` (inclusive)."""
        lo = bisect_left(self.distances, min_km)
        hi = bisect_right(self.distances, max_km)
        return set(self.facility_ids[lo:hi])

    def __len__(self) -> int:
        return len(self.facility_ids)


class GeoDistanceIndex:
    """Memoised geodesic-distance lookups over an observed dataset."""

    __slots__ = (
        "_dataset",
        "_sync_lock",
        "_synced_generation",
        "incremental_evictions",
        "wholesale_invalidations",
        "_point_km",
        "_pair_km",
        "_ixp_profiles",
        "_as_profiles",
        "_ixp_spans",
        "_as_ixp_spans",
        "_common_spans",
        "_majority_votes",
    )

    def __init__(self, dataset: "ObservedDataset") -> None:
        self._dataset = dataset
        # Serialises journal replay, wholesale invalidation and every memo
        # store; reentrant because _sync falls back to invalidate() while
        # holding it.  Memo *reads* stay lock-free (GIL-atomic dict lookups).
        self._sync_lock = RLock()
        self._synced_generation = getattr(dataset, "generation", 0)
        #: Journalled changes absorbed by selective eviction (accounting).
        self.incremental_evictions = 0
        #: Times the whole index was dropped (manual, opaque or truncated).
        self.wholesale_invalidations = 0
        self._point_km: dict[tuple[GeoPoint, str], float | None] = {}
        self._pair_km: dict[tuple[str, str], float | None] = {}
        self._ixp_profiles: dict[tuple[GeoPoint, str], DistanceProfile] = {}
        self._as_profiles: dict[tuple[GeoPoint, int], DistanceProfile] = {}
        self._ixp_spans: dict[tuple[str, str], tuple[float, float] | None] = {}
        self._as_ixp_spans: dict[tuple[int, str], tuple[float, float] | None] = {}
        self._common_spans: dict[tuple[int, str], tuple[float, float] | None] = {}
        self._majority_votes: dict[frozenset[int], frozenset[str]] = {}

    @property
    def dataset(self) -> "ObservedDataset":
        """The dataset snapshot this index answers for."""
        return self._dataset

    def invalidate(self) -> None:
        """Drop every memo and resynchronise with the dataset's generation.

        Required after mutating the dataset's dicts *directly*; journalled
        mutations are absorbed automatically (and more selectively) by the
        lazy replay in :meth:`_sync`.
        """
        with self._sync_lock:
            self._point_km.clear()
            self._pair_km.clear()
            self._ixp_profiles.clear()
            self._as_profiles.clear()
            self._ixp_spans.clear()
            self._as_ixp_spans.clear()
            self._common_spans.clear()
            self._majority_votes.clear()
            self._synced_generation = getattr(self._dataset, "generation", 0)
            self.wholesale_invalidations += 1

    def __getstate__(self) -> dict[str, object]:
        # The RLock is process-local; the dataset and the memo contents
        # travel to worker processes as-is (every memo value is a pure,
        # bit-identical function of the dataset, so a warm index stays
        # valid on the other side of the pickle boundary).
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_sync_lock"
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._sync_lock = RLock()

    # ------------------------------------------------------------------ #
    # Journal synchronisation
    # ------------------------------------------------------------------ #
    def _sync(self) -> None:
        """Absorb journalled dataset changes since the last lookup.

        The fast path is one integer comparison.  When the dataset moved on,
        the geo-relevant slice of its journal is replayed change by change,
        evicting only the memos each change can touch; an unavailable replay
        (opaque bump, truncated journal) or an oversized batch falls back to
        wholesale invalidation.
        """
        dataset = self._dataset
        if dataset.generation == self._synced_generation:
            return
        # Per-IXP engine nodes run on a thread pool; only one thread may
        # replay (the fast path above stays lock-free).
        with self._sync_lock:
            generation = dataset.generation
            if generation == self._synced_generation:
                return
            from repro.datasources.merge import GEO_DOMAINS

            changes = dataset.journal.since(self._synced_generation, GEO_DOMAINS)
            if changes is None or len(changes) > SELECTIVE_EVICTION_LIMIT:
                self.invalidate()
                return
            for change in changes:
                self._evict_for(change)
                self.incremental_evictions += 1
            self._synced_generation = generation

    def _evict_for(self, change: "Change") -> None:
        from repro.datasources.merge import (
            DOMAIN_AS_FACILITIES,
            DOMAIN_FACILITY_LOCATIONS,
            DOMAIN_IXP_FACILITIES,
        )

        if change.domain == DOMAIN_FACILITY_LOCATIONS:
            self._evict_facility(change.key)
        elif change.domain == DOMAIN_IXP_FACILITIES:
            ixp_id, _facility_id = change.key
            self._evict_ixp(ixp_id)
        elif change.domain == DOMAIN_AS_FACILITIES:
            asn, _facility_id = change.key
            self._evict_as(asn)

    def _evict_facility(self, facility_id: str) -> None:
        """A facility gained, lost or moved coordinates."""
        for key in [k for k in self._point_km if k[1] == facility_id]:
            self._point_km.pop(key, None)
        for key in [k for k in self._pair_km if facility_id in k]:
            self._pair_km.pop(key, None)
        # Every footprint containing the facility saw its geometry change.
        ixps = {
            ixp_id
            for ixp_id, facilities in self._dataset.ixp_facilities.items()
            if facility_id in facilities
        }
        ases = {
            asn
            for asn, facilities in self._dataset.as_facilities.items()
            if facility_id in facilities
        }
        for key in [k for k in self._ixp_profiles if k[1] in ixps]:
            self._ixp_profiles.pop(key, None)
        for key in [k for k in self._as_profiles if k[1] in ases]:
            self._as_profiles.pop(key, None)
        for key in [k for k in self._ixp_spans if k[0] in ixps or k[1] in ixps]:
            self._ixp_spans.pop(key, None)
        for key in [k for k in self._as_ixp_spans if k[0] in ases or k[1] in ixps]:
            self._as_ixp_spans.pop(key, None)
        for key in [k for k in self._common_spans if k[0] in ases or k[1] in ixps]:
            self._common_spans.pop(key, None)
        # Majority votes depend only on colocation sets, never on geometry.

    def _evict_ixp(self, ixp_id: str) -> None:
        """An IXP's observed facility footprint changed."""
        for key in [k for k in self._ixp_profiles if k[1] == ixp_id]:
            self._ixp_profiles.pop(key, None)
        for key in [k for k in self._ixp_spans if ixp_id in k]:
            self._ixp_spans.pop(key, None)
        for key in [k for k in self._as_ixp_spans if k[1] == ixp_id]:
            self._as_ixp_spans.pop(key, None)
        for key in [k for k in self._common_spans if k[1] == ixp_id]:
            self._common_spans.pop(key, None)

    def _evict_as(self, asn: int) -> None:
        """A member AS's observed facility footprint changed."""
        for key in [k for k in self._as_profiles if k[1] == asn]:
            self._as_profiles.pop(key, None)
        for key in [k for k in self._as_ixp_spans if k[0] == asn]:
            self._as_ixp_spans.pop(key, None)
        for key in [k for k in self._common_spans if k[0] == asn]:
            self._common_spans.pop(key, None)
        for key in [k for k in self._majority_votes if asn in k]:
            self._majority_votes.pop(key, None)

    # ------------------------------------------------------------------ #
    # Point / pair distances
    # ------------------------------------------------------------------ #
    def facility_distance_km(self, point: GeoPoint, facility_id: str) -> float | None:
        """Distance from a point to a facility (``None`` if unlocated)."""
        self._sync()
        key = (point, facility_id)
        if key in self._point_km:
            return self._point_km[key]
        location = self._dataset.facility_location(facility_id)
        distance = None if location is None else geodesic_distance_km(point, location)
        with self._sync_lock:
            self._point_km[key] = distance
        return distance

    def pair_distance_km(self, facility_a: str, facility_b: str) -> float | None:
        """Distance between two facilities (``None`` if either is unlocated)."""
        self._sync()
        key = (
            (facility_a, facility_b)
            if facility_a <= facility_b
            else (facility_b, facility_a)
        )
        if key in self._pair_km:
            return self._pair_km[key]
        loc_a = self._dataset.facility_location(key[0])
        loc_b = self._dataset.facility_location(key[1])
        distance = (
            None
            if loc_a is None or loc_b is None
            else geodesic_distance_km(loc_a, loc_b)
        )
        with self._sync_lock:
            self._pair_km[key] = distance
        return distance

    def prebuild(
        self, points: Iterable[GeoPoint] = (), *, include_pairs: bool = True
    ) -> int:
        """Bulk-fill the point/pair distance memos for the given points.

        Computes every missing (point, facility) distance for ``points`` and
        (when ``include_pairs``) every missing located-facility-pair distance
        in one vectorised pass (:func:`geodesic_distances_km`; scalar loop
        without numpy), and stores them into the same memo dicts the lazy
        per-call path fills.  The bulk kernel is bit-identical to the scalar
        kernel by contract, so a prebuilt index is observationally equivalent
        to a cold one — only faster.  Returns the number of entries added.

        On a cold index with numpy available, the endpoint arrays are built
        structurally (``repeat``/``tile`` over the small point and facility
        coordinate vectors, ``triu_indices`` for the pair block) and the keys
        with C-speed ``itertools`` — no per-pair tuples or membership checks
        — feeding the array-level kernel directly.  A partially warm index
        takes the generic filtered path instead.

        Facilities referenced by IXP/AS footprints but without coordinates
        get their ``None`` point-miss entries prefilled too (profiles probe
        every footprint facility).  Unlocated *pair* entries are left to the
        lazy path — spans touch far fewer pairs than profiles touch points.
        """
        self._sync()
        dataset = self._dataset
        footprint: set[str] = set(dataset.facility_locations)
        for facilities in dataset.ixp_facilities.values():
            footprint.update(facilities)
        for facilities in dataset.as_facilities.values():
            footprint.update(facilities)
        located: list[tuple[str, GeoPoint]] = []
        unlocated: list[str] = []
        for facility_id in sorted(footprint):
            location = dataset.facility_location(facility_id)
            if location is None:
                unlocated.append(facility_id)
            else:
                located.append((facility_id, location))

        dedup_points: list[GeoPoint] = []
        seen: set[GeoPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                dedup_points.append(point)

        point_memo = self._point_km
        pair_memo = self._pair_km
        if coordinates._np is not None and not point_memo and not pair_memo and located:
            return self._prebuild_cold_arrays(
                dedup_points, located, unlocated, include_pairs
            )

        point_keys: list[tuple[GeoPoint, str]] = []
        misses: list[tuple[GeoPoint, str]] = []
        tasks: list[tuple[GeoPoint, GeoPoint]] = []
        for point in dedup_points:
            for facility_id, location in located:
                key = (point, facility_id)
                if key not in point_memo:
                    point_keys.append(key)
                    tasks.append((point, location))
            for facility_id in unlocated:
                key = (point, facility_id)
                if key not in point_memo:
                    misses.append(key)

        pair_keys: list[tuple[str, str]] = []
        if include_pairs:
            # Self-pairs included: span lookups over overlapping footprints
            # memoise (f, f) too, and prebuild must cover every key the lazy
            # path would fill.
            for index, (facility_a, location_a) in enumerate(located):
                for facility_b, location_b in located[index:]:
                    pair_key = (facility_a, facility_b)
                    if pair_key not in pair_memo:
                        pair_keys.append(pair_key)
                        tasks.append((location_a, location_b))

        distances = geodesic_distances_km(tasks)
        added = 0
        with self._sync_lock:
            for position, key in enumerate(point_keys):
                if key not in point_memo:
                    point_memo[key] = distances[position]
                    added += 1
            for key in misses:
                if key not in point_memo:
                    point_memo[key] = None
                    added += 1
            offset = len(point_keys)
            for position, pair_key in enumerate(pair_keys):
                if pair_key not in pair_memo:
                    pair_memo[pair_key] = distances[offset + position]
                    added += 1
        return added

    def _prebuild_cold_arrays(
        self,
        dedup_points: list[GeoPoint],
        located: list[tuple[str, GeoPoint]],
        unlocated: list[str],
        include_pairs: bool,
    ) -> int:
        """Cold-memo prebuild through the array-level kernel (numpy only).

        Both memos were observed empty, so no per-key filtering is needed:
        the endpoint arrays are assembled structurally and the results
        stored in one bulk update per memo.  A concurrent lazy fill racing
        this path is handled by re-checking under the lock — first store
        wins, exactly like the generic path.
        """
        np = coordinates._np
        located_ids = [facility_id for facility_id, _ in located]
        fac_lat = np.array(
            [location.latitude for _, location in located], dtype=np.float64
        )
        fac_lon = np.array(
            [location.longitude for _, location in located], dtype=np.float64
        )

        blocks: list[tuple[Any, Any, Any, Any]] = []
        point_keys: list[tuple[GeoPoint, str]] = []
        if dedup_points:
            pt_lat = np.array(
                [point.latitude for point in dedup_points], dtype=np.float64
            )
            pt_lon = np.array(
                [point.longitude for point in dedup_points], dtype=np.float64
            )
            blocks.append(
                (
                    np.repeat(pt_lat, len(located)),
                    np.repeat(pt_lon, len(located)),
                    np.tile(fac_lat, len(dedup_points)),
                    np.tile(fac_lon, len(dedup_points)),
                )
            )
            # product() iterates point-major, matching repeat/tile order.
            point_keys = list(product(dedup_points, located_ids))

        pair_keys: list[tuple[str, str]] = []
        if include_pairs:
            # Row-major upper triangle (diagonal included: self-pairs are
            # memoised by span lookups too) — the same order
            # combinations_with_replacement() yields the key tuples in.
            rows, cols = np.triu_indices(len(located))
            blocks.append((fac_lat[rows], fac_lon[rows], fac_lat[cols], fac_lon[cols]))
            pair_keys = list(combinations_with_replacement(located_ids, 2))

        lanes = [np.concatenate([block[axis] for block in blocks]) for axis in range(4)]
        distances: list[float] = _vincenty_lanes(
            lanes[0], lanes[1], lanes[2], lanes[3], 200
        ).tolist()
        point_values = distances[: len(point_keys)]
        pair_values = distances[len(point_keys) :]

        point_memo = self._point_km
        pair_memo = self._pair_km
        added = 0
        with self._sync_lock:
            if point_memo:
                for key, value in zip(point_keys, point_values):
                    if key not in point_memo:
                        point_memo[key] = value
                        added += 1
            else:
                point_memo.update(zip(point_keys, point_values))
                added += len(point_keys)
            for point in dedup_points:
                for facility_id in unlocated:
                    key = (point, facility_id)
                    if key not in point_memo:
                        point_memo[key] = None
                        added += 1
            if pair_memo:
                for pair_key, value in zip(pair_keys, pair_values):
                    if pair_key not in pair_memo:
                        pair_memo[pair_key] = value
                        added += 1
            else:
                pair_memo.update(zip(pair_keys, pair_values))
                added += len(pair_keys)
        return added

    # ------------------------------------------------------------------ #
    # Sorted distance profiles (Step 3)
    # ------------------------------------------------------------------ #
    def ixp_profile(self, point: GeoPoint, ixp_id: str) -> DistanceProfile:
        """Sorted distances from a point to one IXP's facilities."""
        self._sync()
        key = (point, ixp_id)
        profile = self._ixp_profiles.get(key)
        if profile is None:
            facilities = self._dataset.facilities_of_ixp(ixp_id)
            profile = self._build_profile(point, facilities)
            with self._sync_lock:
                self._ixp_profiles[key] = profile
        return profile

    def as_profile(self, point: GeoPoint, asn: int) -> DistanceProfile:
        """Sorted distances from a point to one member AS's facilities."""
        self._sync()
        key = (point, asn)
        profile = self._as_profiles.get(key)
        if profile is None:
            facilities = self._dataset.facilities_of_as(asn)
            profile = self._build_profile(point, facilities)
            with self._sync_lock:
                self._as_profiles[key] = profile
        return profile

    def _build_profile(
        self, point: GeoPoint, facility_ids: set[str]
    ) -> DistanceProfile:
        located: list[tuple[float, str]] = []
        for facility_id in facility_ids:
            distance = self.facility_distance_km(point, facility_id)
            if distance is not None:
                located.append((distance, facility_id))
        located.sort()
        return DistanceProfile(
            distances=tuple(distance for distance, _ in located),
            facility_ids=tuple(facility_id for _, facility_id in located),
        )

    def feasible_ixp_facilities(
        self, point: GeoPoint, ixp_id: str, min_km: float, max_km: float
    ) -> set[str]:
        """IXP facilities whose distance from ``point`` lies in the ring."""
        return self.ixp_profile(point, ixp_id).within(min_km, max_km)

    def feasible_as_facilities(
        self, point: GeoPoint, asn: int, min_km: float, max_km: float
    ) -> set[str]:
        """Member-AS facilities whose distance from ``point`` lies in the ring."""
        return self.as_profile(point, asn).within(min_km, max_km)

    # ------------------------------------------------------------------ #
    # Footprint span aggregates (Step 4)
    # ------------------------------------------------------------------ #
    def ixp_pair_span_km(self, ixp_a: str, ixp_b: str) -> tuple[float, float] | None:
        """(min, max) pairwise distance between two IXPs' facility sets."""
        self._sync()
        key = (ixp_a, ixp_b) if ixp_a <= ixp_b else (ixp_b, ixp_a)
        if key in self._ixp_spans:
            return self._ixp_spans[key]
        span = self._span(
            self._dataset.facilities_of_ixp(key[0]),
            self._dataset.facilities_of_ixp(key[1]),
        )
        with self._sync_lock:
            self._ixp_spans[key] = span
        return span

    def as_ixp_span_km(self, asn: int, ixp_id: str) -> tuple[float, float] | None:
        """(min, max) pairwise distance between an AS's and an IXP's facilities."""
        self._sync()
        key = (asn, ixp_id)
        if key in self._as_ixp_spans:
            return self._as_ixp_spans[key]
        span = self._span(
            self._dataset.facilities_of_as(asn),
            self._dataset.facilities_of_ixp(ixp_id),
        )
        with self._sync_lock:
            self._as_ixp_spans[key] = span
        return span

    def common_facility_span_km(
        self, asn: int, ixp_id: str
    ) -> tuple[float, float] | None:
        """(min, max) distance from the AS ∩ IXP facilities to the IXP's facilities.

        This is the Step 4 hybrid condition's bound on how far the member's
        shared presence can be from the anchor IXP's fabric.
        """
        self._sync()
        key = (asn, ixp_id)
        if key in self._common_spans:
            return self._common_spans[key]
        ixp_facilities = self._dataset.facilities_of_ixp(ixp_id)
        common = self._dataset.facilities_of_as(asn) & ixp_facilities
        span = self._span(common, ixp_facilities)
        with self._sync_lock:
            self._common_spans[key] = span
        return span

    # ------------------------------------------------------------------ #
    # Majority facility votes (Step 5)
    # ------------------------------------------------------------------ #
    def majority_facility_vote(self, asns: frozenset[int]) -> frozenset[str]:
        """Facilities shared by a strict majority of the voting neighbours.

        Exactly Step 5's Constrained-Facility-Search-style vote: every AS in
        ``asns`` with observed colocation data votes for each of its
        facilities, and the facilities named by more than half of the voters
        win.  An empty vote (no voter, or no facility with a majority) is the
        empty set.  Memoised per frozen neighbour set — like the span
        aggregates, the same sets recur across every interface of one member
        AS and across scenario-sweep reruns.
        """
        self._sync()
        key = asns if isinstance(asns, frozenset) else frozenset(asns)
        cached = self._majority_votes.get(key)
        if cached is not None:
            return cached
        votes: Counter[str] = Counter()
        voters = 0
        for asn in key:
            facilities = self._dataset.facilities_of_as(asn)
            if not facilities:
                continue
            voters += 1
            votes.update(facilities)
        if not votes or voters == 0:
            result: frozenset[str] = frozenset()
        else:
            result = frozenset(
                facility for facility, count in votes.items() if count > voters / 2.0
            )
        with self._sync_lock:
            self._majority_votes[key] = result
        return result

    def _span(
        self, facilities_a: set[str], facilities_b: set[str]
    ) -> tuple[float, float] | None:
        """Min/max over the located pairwise distances of two facility sets."""
        lo: float | None = None
        hi: float | None = None
        for fa in facilities_a:
            for fb in facilities_b:
                distance = self.pair_distance_km(fa, fb)
                if distance is None:
                    continue
                if lo is None or distance < lo:
                    lo = distance
                if hi is None or distance > hi:
                    hi = distance
        if lo is None or hi is None:
            return None
        return (lo, hi)
