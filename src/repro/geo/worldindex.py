"""World-level geodesic-distance index for ground-truth consumers.

The traceroute forwarding simulator re-ran the Vincenty solver for every hop
it emitted — the same (facility, facility) legs recur across every path of a
corpus, since traffic moves between a fixed set of ground-truth facilities.
:class:`WorldDistanceIndex` memoises those facility-pair distances once per
world.

It is deliberately **separate** from
:class:`repro.geo.distindex.GeoDistanceIndex`: that index answers for the
*observed* dataset (noisy, incomplete, possibly mislocated facilities) and
participates in the dataset-versioning layer, while this one answers for the
ground truth the measurement simulators are allowed to see.  Mixing the two
would let observation noise leak into synthetic measurements — or ground
truth leak into inference.

Invariants:

1. **Bit-identical distances** — every value is produced by
   :func:`repro.geo.coordinates.geodesic_distance_km` on the facilities'
   ground-truth coordinates, exactly as the per-call path computed it (the
   function is exactly symmetric, so the order-independent memo key cannot
   change results).
2. **Immutability** — the ground-truth world never mutates after generation,
   so the memo needs no invalidation path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.geo.coordinates import geodesic_distance_km, geodesic_distances_km

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.world import World


class WorldDistanceIndex:
    """Memoised facility-pair distances over a ground-truth world."""

    __slots__ = ("_world", "_pair_km")

    def __init__(self, world: "World") -> None:
        self._world = world
        self._pair_km: dict[tuple[str, str], float] = {}

    @property
    def world(self) -> "World":
        """The ground-truth world this index answers for."""
        return self._world

    def facility_pair_km(self, facility_a: str, facility_b: str) -> float:
        """Geodesic distance between two ground-truth facilities."""
        key = (
            (facility_a, facility_b)
            if facility_a <= facility_b
            else (facility_b, facility_a)
        )
        distance = self._pair_km.get(key)
        if distance is None:
            distance = geodesic_distance_km(
                self._world.facility_location(key[0]),
                self._world.facility_location(key[1]),
            )
            self._pair_km[key] = distance
        return distance

    def prebuild(self) -> int:
        """Bulk-fill the memo with every ground-truth facility pair.

        One vectorised pass through
        :func:`repro.geo.coordinates.geodesic_distances_km` (scalar loop
        without numpy); values are bit-identical to the lazy per-call path
        by the bulk kernel's contract.  Returns the number of entries added.
        """
        world = self._world
        pair_keys: list[tuple[str, str]] = []
        tasks = []
        facility_ids = sorted(world.facilities)
        for index, facility_a in enumerate(facility_ids):
            for facility_b in facility_ids[index + 1 :]:
                key = (facility_a, facility_b)
                if key not in self._pair_km:
                    pair_keys.append(key)
                    tasks.append(
                        (
                            world.facility_location(facility_a),
                            world.facility_location(facility_b),
                        )
                    )
        distances = geodesic_distances_km(tasks)
        added = 0
        for key, distance in zip(pair_keys, distances):
            if key not in self._pair_km:
                self._pair_km[key] = distance
                added += 1
        return added

    def __len__(self) -> int:
        """Number of memoised facility pairs (mainly for tests)."""
        return len(self._pair_km)
