"""A built-in gazetteer of world cities.

The synthetic topology generator places colocation facilities, IXPs and AS
points of presence in real cities so that geodesic distances, metro areas and
RIR regions behave like the real Internet (e.g. Amsterdam-Rotterdam is ~57 km,
London-Bucharest is >1,300 km — the two examples the paper uses).

Coordinates are city-centre approximations; sub-kilometre accuracy is not
needed because the delay model operates at metro-area granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.coordinates import GeoPoint


@dataclass(frozen=True)
class City:
    """A city usable as a location for facilities and networks.

    Attributes
    ----------
    name:
        Canonical city name (unique within the gazetteer).
    country:
        ISO 3166-1 alpha-2 country code.
    location:
        City-centre coordinates.
    population_rank:
        1 = largest peering market.  Used by the generator to size IXPs and to
        bias where networks deploy.
    """

    name: str
    country: str
    location: GeoPoint
    population_rank: int


def _city(name: str, country: str, lat: float, lon: float, rank: int) -> City:
    return City(name=name, country=country, location=GeoPoint(lat, lon), population_rank=rank)


#: The gazetteer.  Ordered roughly by importance as a peering market so that
#: ``WORLD_CITIES[:n]`` is a sensible "top-n markets" slice.
WORLD_CITIES: tuple[City, ...] = (
    _city("Amsterdam", "NL", 52.3702, 4.8952, 1),
    _city("Frankfurt", "DE", 50.1109, 8.6821, 2),
    _city("London", "GB", 51.5074, -0.1278, 3),
    _city("Paris", "FR", 48.8566, 2.3522, 4),
    _city("Moscow", "RU", 55.7558, 37.6173, 5),
    _city("New York", "US", 40.7128, -74.0060, 6),
    _city("Sao Paulo", "BR", -23.5505, -46.6333, 7),
    _city("Singapore", "SG", 1.3521, 103.8198, 8),
    _city("Hong Kong", "HK", 22.3193, 114.1694, 9),
    _city("Tokyo", "JP", 35.6762, 139.6503, 10),
    _city("Seattle", "US", 47.6062, -122.3321, 11),
    _city("Los Angeles", "US", 34.0522, -118.2437, 12),
    _city("Warsaw", "PL", 52.2297, 21.0122, 13),
    _city("Prague", "CZ", 50.0755, 14.4378, 14),
    _city("Vienna", "AT", 48.2082, 16.3738, 15),
    _city("Stockholm", "SE", 59.3293, 18.0686, 16),
    _city("Copenhagen", "DK", 55.6761, 12.5683, 17),
    _city("Milan", "IT", 45.4642, 9.1900, 18),
    _city("Madrid", "ES", 40.4168, -3.7038, 19),
    _city("Zurich", "CH", 47.3769, 8.5417, 20),
    _city("Brussels", "BE", 50.8503, 4.3517, 21),
    _city("Dublin", "IE", 53.3498, -6.2603, 22),
    _city("Bucharest", "RO", 44.4268, 26.1025, 23),
    _city("Budapest", "HU", 47.4979, 19.0402, 24),
    _city("Sofia", "BG", 42.6977, 23.3219, 25),
    _city("Kyiv", "UA", 50.4501, 30.5234, 26),
    _city("Istanbul", "TR", 41.0082, 28.9784, 27),
    _city("Marseille", "FR", 43.2965, 5.3698, 28),
    _city("Manchester", "GB", 53.4808, -2.2426, 29),
    _city("Katowice", "PL", 50.2649, 19.0238, 30),
    _city("Chicago", "US", 41.8781, -87.6298, 31),
    _city("Ashburn", "US", 39.0438, -77.4874, 32),
    _city("Dallas", "US", 32.7767, -96.7970, 33),
    _city("Miami", "US", 25.7617, -80.1918, 34),
    _city("Toronto", "CA", 43.6532, -79.3832, 35),
    _city("Atlanta", "US", 33.7490, -84.3880, 36),
    _city("San Francisco", "US", 37.7749, -122.4194, 37),
    _city("Palo Alto", "US", 37.4419, -122.1430, 38),
    _city("Mexico City", "MX", 19.4326, -99.1332, 39),
    _city("Buenos Aires", "AR", -34.6037, -58.3816, 40),
    _city("Santiago", "CL", -33.4489, -70.6693, 41),
    _city("Bogota", "CO", 4.7110, -74.0721, 42),
    _city("Johannesburg", "ZA", -26.2041, 28.0473, 43),
    _city("Cape Town", "ZA", -33.9249, 18.4241, 44),
    _city("Nairobi", "KE", -1.2921, 36.8219, 45),
    _city("Lagos", "NG", 6.5244, 3.3792, 46),
    _city("Cairo", "EG", 30.0444, 31.2357, 47),
    _city("Dubai", "AE", 25.2048, 55.2708, 48),
    _city("Mumbai", "IN", 19.0760, 72.8777, 49),
    _city("Chennai", "IN", 13.0827, 80.2707, 50),
    _city("Kuala Lumpur", "MY", 3.1390, 101.6869, 51),
    _city("Jakarta", "ID", -6.2088, 106.8456, 52),
    _city("Bangkok", "TH", 13.7563, 100.5018, 53),
    _city("Manila", "PH", 14.5995, 120.9842, 54),
    _city("Taipei", "TW", 25.0330, 121.5654, 55),
    _city("Seoul", "KR", 37.5665, 126.9780, 56),
    _city("Osaka", "JP", 34.6937, 135.5023, 57),
    _city("Sydney", "AU", -33.8688, 151.2093, 58),
    _city("Melbourne", "AU", -37.8136, 144.9631, 59),
    _city("Auckland", "NZ", -36.8509, 174.7645, 60),
    _city("Rotterdam", "NL", 51.9244, 4.4777, 61),
    _city("The Hague", "NL", 52.0705, 4.3007, 62),
    _city("Dusseldorf", "DE", 51.2277, 6.7735, 63),
    _city("Hamburg", "DE", 53.5511, 9.9937, 64),
    _city("Munich", "DE", 48.1351, 11.5820, 65),
    _city("Berlin", "DE", 52.5200, 13.4050, 66),
    _city("Lyon", "FR", 45.7640, 4.8357, 67),
    _city("Barcelona", "ES", 41.3851, 2.1734, 68),
    _city("Lisbon", "PT", 38.7223, -9.1393, 69),
    _city("Rome", "IT", 41.9028, 12.4964, 70),
    _city("Athens", "GR", 37.9838, 23.7275, 71),
    _city("Helsinki", "FI", 60.1699, 24.9384, 72),
    _city("Oslo", "NO", 59.9139, 10.7522, 73),
    _city("Riga", "LV", 56.9496, 24.1052, 74),
    _city("Vilnius", "LT", 54.6872, 25.2797, 75),
    _city("Tallinn", "EE", 59.4370, 24.7536, 76),
    _city("Minsk", "BY", 53.9006, 27.5590, 77),
    _city("St Petersburg", "RU", 59.9311, 30.3609, 78),
    _city("Novosibirsk", "RU", 55.0084, 82.9357, 79),
    _city("Zagreb", "HR", 45.8150, 15.9819, 80),
    _city("Belgrade", "RS", 44.7866, 20.4489, 81),
    _city("Bratislava", "SK", 48.1486, 17.1077, 82),
    _city("Ljubljana", "SI", 46.0569, 14.5058, 83),
    _city("Luxembourg", "LU", 49.6116, 6.1319, 84),
    _city("Geneva", "CH", 46.2044, 6.1432, 85),
    _city("Lille", "FR", 50.6292, 3.0573, 86),
    _city("Birmingham", "GB", 52.4862, -1.8904, 87),
    _city("Edinburgh", "GB", 55.9533, -3.1883, 88),
    _city("Leeds", "GB", 53.8008, -1.5491, 89),
    _city("Poznan", "PL", 52.4064, 16.9252, 90),
    _city("Krakow", "PL", 50.0647, 19.9450, 91),
    _city("Wroclaw", "PL", 51.1079, 17.0385, 92),
    _city("Brno", "CZ", 49.1951, 16.6068, 93),
    _city("Porto", "PT", 41.1579, -8.6291, 94),
    _city("Valencia", "ES", 39.4699, -0.3763, 95),
    _city("Turin", "IT", 45.0703, 7.6869, 96),
    _city("Denver", "US", 39.7392, -104.9903, 97),
    _city("Phoenix", "US", 33.4484, -112.0740, 98),
    _city("Houston", "US", 29.7604, -95.3698, 99),
    _city("Boston", "US", 42.3601, -71.0589, 100),
    _city("Washington", "US", 38.9072, -77.0369, 101),
    _city("Montreal", "CA", 45.5017, -73.5673, 102),
    _city("Vancouver", "CA", 49.2827, -123.1207, 103),
    _city("Lima", "PE", -12.0464, -77.0428, 104),
    _city("Caracas", "VE", 10.4806, -66.9036, 105),
    _city("Quito", "EC", -0.1807, -78.4678, 106),
    _city("Accra", "GH", 5.6037, -0.1870, 107),
    _city("Tunis", "TN", 36.8065, 10.1815, 108),
    _city("Tel Aviv", "IL", 32.0853, 34.7818, 109),
    _city("Riyadh", "SA", 24.7136, 46.6753, 110),
    _city("Doha", "QA", 25.2854, 51.5310, 111),
    _city("Karachi", "PK", 24.8607, 67.0011, 112),
    _city("Dhaka", "BD", 23.8103, 90.4125, 113),
    _city("Hanoi", "VN", 21.0278, 105.8342, 114),
    _city("Ho Chi Minh City", "VN", 10.8231, 106.6297, 115),
    _city("Perth", "AU", -31.9505, 115.8605, 116),
    _city("Brisbane", "AU", -27.4698, 153.0251, 117),
    _city("Wellington", "NZ", -41.2866, 174.7756, 118),
    _city("Fortaleza", "BR", -3.7319, -38.5267, 119),
    _city("Rio de Janeiro", "BR", -22.9068, -43.1729, 120),
)

_CITY_INDEX: dict[str, City] = {c.name.lower(): c for c in WORLD_CITIES}


def city_by_name(name: str) -> City:
    """Return the :class:`City` with the given name (case-insensitive).

    Raises
    ------
    KeyError
        If the gazetteer has no such city.
    """
    key = name.lower()
    if key not in _CITY_INDEX:
        raise KeyError(f"unknown city: {name!r}")
    return _CITY_INDEX[key]


def cities_in_region(region: "RIRRegion") -> list[City]:  # noqa: F821 - forward reference
    """Return all gazetteer cities that fall in the given RIR service region."""
    from repro.geo.regions import region_for_country

    return [c for c in WORLD_CITIES if region_for_country(c.country) is region]
