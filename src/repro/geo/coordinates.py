"""Geographic coordinates and geodesic distance computation.

The paper computes distances between colocation facilities with Karney's
geodesic algorithm.  We implement the Vincenty inverse formula on the WGS-84
ellipsoid, which agrees with Karney's method to well below a kilometre for the
distances that matter here (tens to thousands of kilometres), and fall back to
the spherical haversine formula for the rare antipodal cases where Vincenty
does not converge.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from importlib import import_module
from typing import Any

from repro.exceptions import ConfigurationError

#: WGS-84 semi-major axis (metres).
_WGS84_A = 6_378_137.0
#: WGS-84 flattening.
_WGS84_F = 1.0 / 298.257223563
#: WGS-84 semi-minor axis (metres).
_WGS84_B = _WGS84_A * (1.0 - _WGS84_F)
#: Ellipsoid terms shared by the scalar and vectorised kernels.
_A2_MINUS_B2 = _WGS84_A**2 - _WGS84_B**2
_B2 = _WGS84_B**2
#: Degrees-to-radians factor; ``math.radians(x)`` is exactly ``x * (pi/180)``
#: (a single multiply), so the vectorised kernel can use the multiplication
#: form without losing bit-identity with the scalar kernel.
_DEG2RAD = math.pi / 180.0

#: Mean Earth radius (kilometres) used by the haversine fallback.
EARTH_RADIUS_KM = 6_371.0088

#: Optional numpy handle.  The bulk kernel vectorises when numpy is
#: importable and degrades to a scalar loop when it is not, so numpy stays
#: an optional dependency (install ``repro[fast]`` to opt in).  Resolved via
#: :func:`importlib.import_module` so type checkers treat the handle as
#: dynamic whether or not numpy stubs are installed.
_np: Any
try:
    _np = import_module("numpy")
except ImportError:  # pragma: no cover - depends on the environment
    _np = None


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes
    ----------
    latitude:
        Latitude in decimal degrees, in ``[-90, 90]``.
    longitude:
        Longitude in decimal degrees, in ``[-180, 180]``.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.longitude!r}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Geodesic distance to ``other`` in kilometres."""
        return geodesic_distance_km(self, other)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)


def haversine_distance_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres.

    Uses the haversine formula on a sphere of mean Earth radius.  Accurate to
    ~0.5% which is more than enough as a fallback.
    """
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def geodesic_distance_km(
    a: GeoPoint, b: GeoPoint, *, max_iterations: int = 200
) -> float:
    """Geodesic (ellipsoidal) distance between two points, in kilometres.

    Implements the Vincenty inverse formula on WGS-84.  Falls back to the
    haversine distance when the iteration fails to converge (nearly antipodal
    points), which keeps the function total.

    The result is *exactly* symmetric in its arguments: the endpoints are
    put in a canonical order before evaluating, because the raw Vincenty
    iteration can differ in the last ulp under argument swap, and consumers
    (notably :class:`repro.geo.distindex.GeoDistanceIndex`) memoise distances
    under order-independent keys and compare them with strict inequalities.
    """
    if a == b:
        return 0.0
    if b < a:
        a, b = b, a

    phi1 = math.radians(a.latitude)
    phi2 = math.radians(b.latitude)
    lam = math.radians(b.longitude - a.longitude)

    u1 = math.atan((1.0 - _WGS84_F) * math.tan(phi1))
    u2 = math.atan((1.0 - _WGS84_F) * math.tan(phi2))
    sin_u1, cos_u1 = math.sin(u1), math.cos(u1)
    sin_u2, cos_u2 = math.sin(u2), math.cos(u2)

    lam_current = lam
    for _ in range(max_iterations):
        sin_lam = math.sin(lam_current)
        cos_lam = math.cos(lam_current)
        # Squares are written as explicit multiplications (not ``**2``):
        # libm pow() can differ from a single multiply in the last ulp, and
        # the vectorised kernel multiplies — both paths must agree exactly.
        cross = cos_u2 * sin_lam
        along = cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lam
        sin_sigma = math.sqrt(cross * cross + along * along)
        if sin_sigma == 0.0:
            return 0.0  # coincident points
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lam
        sigma = math.atan2(sin_sigma, cos_sigma)
        sin_alpha = cos_u1 * cos_u2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha * sin_alpha
        if cos_sq_alpha == 0.0:
            cos_2sigma_m = 0.0  # equatorial line
        else:
            cos_2sigma_m = cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        c = (
            _WGS84_F
            / 16.0
            * cos_sq_alpha
            * (4.0 + _WGS84_F * (4.0 - 3.0 * cos_sq_alpha))
        )
        lam_prev = lam_current
        lam_current = lam + (1.0 - c) * _WGS84_F * sin_alpha * (
            sigma
            + c
            * sin_sigma
            * (
                cos_2sigma_m
                + c * cos_sigma * (-1.0 + 2.0 * (cos_2sigma_m * cos_2sigma_m))
            )
        )
        if abs(lam_current - lam_prev) < 1e-12:
            break
    else:
        # Vincenty failed to converge (nearly antipodal); haversine is fine.
        return haversine_distance_km(a, b)

    u_sq = cos_sq_alpha * _A2_MINUS_B2 / _B2
    big_a = 1.0 + u_sq / 16384.0 * (
        4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq))
    )
    big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
    delta_sigma = (
        big_b
        * sin_sigma
        * (
            cos_2sigma_m
            + big_b
            / 4.0
            * (
                cos_sigma * (-1.0 + 2.0 * (cos_2sigma_m * cos_2sigma_m))
                - big_b
                / 6.0
                * cos_2sigma_m
                * (-3.0 + 4.0 * (sin_sigma * sin_sigma))
                * (-3.0 + 4.0 * (cos_2sigma_m * cos_2sigma_m))
            )
        )
    )
    distance_m = _WGS84_B * big_a * (sigma - delta_sigma)
    return distance_m / 1_000.0


def geodesic_distances_km(
    pairs: Sequence[tuple[GeoPoint, GeoPoint]],
    *,
    max_iterations: int = 200,
) -> list[float]:
    """Bulk :func:`geodesic_distance_km` over many endpoint pairs.

    Returns one distance per input pair, in input order.  When numpy is
    importable the Vincenty iteration runs vectorised with per-element
    convergence masking; otherwise the scalar kernel runs in a loop.  Both
    paths apply the same canonical endpoint ordering and are **bit-identical**
    to calling the scalar function pair by pair (a property test enforces
    this), so the results may feed memo dicts that the lazy scalar path
    also fills.
    """
    if _np is None:
        return [
            geodesic_distance_km(a, b, max_iterations=max_iterations) for a, b in pairs
        ]
    return _vectorised_distances_km(pairs, max_iterations)


#: Active-set floor for the vectorised iteration: once fewer lanes than
#: this are still converging, they are finished by the scalar kernel —
#: trivially bit-identical, and far cheaper than running near-empty numpy
#: passes for the (near-antipodal) stragglers that take ~200 iterations.
_SCALAR_TAIL_LANES = 64


def _vectorised_distances_km(
    pairs: Sequence[tuple[GeoPoint, GeoPoint]], max_iterations: int
) -> list[float]:
    """Vectorised Vincenty over a pair sequence; requires numpy."""
    np = _np
    if not pairs:
        return []
    lat1 = np.array([first.latitude for first, _ in pairs], dtype=np.float64)
    lon1 = np.array([first.longitude for first, _ in pairs], dtype=np.float64)
    lat2 = np.array([second.latitude for _, second in pairs], dtype=np.float64)
    lon2 = np.array([second.longitude for _, second in pairs], dtype=np.float64)
    distances: list[float] = _vincenty_lanes(
        lat1, lon1, lat2, lon2, max_iterations
    ).tolist()
    return distances


def _vincenty_lanes(
    lat1: Any, lon1: Any, lat2: Any, lon2: Any, max_iterations: int
) -> Any:
    """Array-level bulk kernel: one distance per lane, as a float64 array.

    The four inputs are parallel float64 arrays of endpoint coordinates
    (``GeoDistanceIndex.prebuild`` builds them with ``repeat``/``tile``
    instead of materialising per-pair tuples).  The iteration keeps a
    compressed active set: every lane whose lambda converged this round has
    its intermediates frozen (exactly the values the scalar kernel breaks
    out of its loop with) and is retired, so the per-iteration cost tracks
    the lanes still converging.  Lanes that hit the iteration cap fall back
    to the scalar haversine, as in the scalar kernel's ``for ... else``.
    """
    np = _np
    # Canonical endpoint order is the same field-tuple compare the
    # order=True dataclass performs; identical pairs short-cut to 0.0
    # exactly as the scalar kernel does.
    total = lat1.shape[0]
    lane_ids = np.nonzero((lat1 != lat2) | (lon1 != lon2))[0]
    if lane_ids.size == 0:
        return np.zeros(total, dtype=np.float64)
    lat1 = lat1[lane_ids]
    lon1 = lon1[lane_ids]
    lat2 = lat2[lane_ids]
    lon2 = lon2[lane_ids]
    swap = (lat2 < lat1) | ((lat2 == lat1) & (lon2 < lon1))
    a_lat = np.where(swap, lat2, lat1)
    a_lon = np.where(swap, lon2, lon1)
    b_lat = np.where(swap, lat1, lat2)
    b_lon = np.where(swap, lon1, lon2)

    # Per-unique-latitude setup: the reduced-latitude trigonometry depends
    # on latitude alone, and tan/atan/sin/cos must be exactly the libm
    # functions the scalar kernel calls (numpy's SIMD variants may differ in
    # the last ulp), so each distinct latitude is set up once in scalar math
    # and gathered.  Uniqueness is over the raw float64 bit patterns so that
    # -0.0 and +0.0 keep their own (sign-preserving) setups.
    all_lats = np.concatenate((a_lat, b_lat))
    unique_bits, inverse = np.unique(all_lats.view(np.int64), return_inverse=True)
    unique_lats = unique_bits.view(np.float64)
    sin_table = np.empty(unique_lats.size, dtype=np.float64)
    cos_table = np.empty(unique_lats.size, dtype=np.float64)
    one_minus_f = 1.0 - _WGS84_F
    for position, latitude in enumerate(unique_lats.tolist()):
        u = math.atan(one_minus_f * math.tan(math.radians(latitude)))
        sin_table[position] = math.sin(u)
        cos_table[position] = math.cos(u)
    lane_count = lane_ids.size
    sin_u1 = sin_table[inverse[:lane_count]]
    cos_u1 = cos_table[inverse[:lane_count]]
    sin_u2 = sin_table[inverse[lane_count:]]
    cos_u2 = cos_table[inverse[lane_count:]]

    # math.radians(x) is exactly x * (pi/180), so the initial lambda can be
    # formed with one (bit-identical) vector multiply.
    lam0 = (b_lon - a_lon) * _DEG2RAD
    lam = lam0.copy()
    lanes = np.arange(lane_count)

    # Loop-invariant products, hoisted with the scalar kernel's exact
    # grouping (2.0 * x is an exact scaling, so (2.0 * sin_u1) * sin_u2
    # keeps the same rounding as inline).
    cu1_cu2 = cos_u1 * cos_u2
    su1_su2 = sin_u1 * sin_u2
    cu1_su2 = cos_u1 * sin_u2
    su1_cu2 = sin_u1 * cos_u2
    two_su1_su2 = (2.0 * sin_u1) * sin_u2

    results = np.zeros(lane_count, dtype=np.float64)
    done_lanes: list[Any] = []
    done_state: list[Any] = []

    def lane_points(lane: int) -> tuple[GeoPoint, GeoPoint]:
        # Already in canonical order, so the scalar kernel's own swap is a
        # no-op and its result matches the original pair's bit for bit.
        return (
            GeoPoint(float(a_lat[lane]), float(a_lon[lane])),
            GeoPoint(float(b_lat[lane]), float(b_lon[lane])),
        )

    for _ in range(max_iterations):
        if lanes.size < _SCALAR_TAIL_LANES:
            # Straggler tail: finish the few remaining lanes with the
            # scalar kernel (bit-identical by construction) instead of
            # running ~200 near-empty vector passes for them.
            for lane in lanes.tolist():
                a, b = lane_points(lane)
                results[lane] = geodesic_distance_km(
                    a, b, max_iterations=max_iterations
                )
            lanes = lanes[:0]
            break
        sin_lam = np.sin(lam)
        cos_lam = np.cos(lam)
        cross = cos_u2 * sin_lam
        along = cu1_su2 - su1_cu2 * cos_lam
        sin_sigma = np.sqrt(cross * cross + along * along)
        coincident = sin_sigma == 0.0
        cos_sigma = su1_su2 + cu1_cu2 * cos_lam
        # Exact libm atan2 per lane (numpy's SIMD arctan2 differs in the
        # last ulp for some inputs); map() over flat memoryviews is the
        # cheapest way to reach math.atan2 from vector code.
        sigma = np.fromiter(
            map(math.atan2, memoryview(sin_sigma), memoryview(cos_sigma)),
            np.float64,
            count=sin_sigma.size,
        )
        # The coincident/equatorial guards are rare (identical points were
        # already short-cut; both-on-equator needs two zero latitudes), so
        # the masked divisors are only materialised when a mask fires.
        if coincident.any():
            sin_alpha = cu1_cu2 * sin_lam / np.where(coincident, 1.0, sin_sigma)
        else:
            sin_alpha = cu1_cu2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha * sin_alpha
        equatorial = cos_sq_alpha == 0.0
        if equatorial.any():
            cos_2sigma_m = np.where(
                equatorial,
                0.0,
                cos_sigma - two_su1_su2 / np.where(equatorial, 1.0, cos_sq_alpha),
            )
        else:
            cos_2sigma_m = cos_sigma - two_su1_su2 / cos_sq_alpha
        c = (
            _WGS84_F
            / 16.0
            * cos_sq_alpha
            * (4.0 + _WGS84_F * (4.0 - 3.0 * cos_sq_alpha))
        )
        lam_new = lam0 + (1.0 - c) * _WGS84_F * sin_alpha * (
            sigma
            + c
            * sin_sigma
            * (
                cos_2sigma_m
                + c * cos_sigma * (-1.0 + 2.0 * (cos_2sigma_m * cos_2sigma_m))
            )
        )
        converged = np.abs(lam_new - lam) < 1e-12
        retiring = coincident | converged
        if retiring.any():
            # Coincident lanes retire with distance 0.0 (results is zeroed).
            finished = converged & ~coincident
            if finished.any():
                done_lanes.append(lanes[finished])
                done_state.append(
                    (
                        sin_sigma[finished],
                        cos_sigma[finished],
                        sigma[finished],
                        cos_sq_alpha[finished],
                        cos_2sigma_m[finished],
                    )
                )
            keep = ~retiring
            lanes = lanes[keep]
            cos_u2 = cos_u2[keep]
            cu1_cu2 = cu1_cu2[keep]
            su1_su2 = su1_su2[keep]
            cu1_su2 = cu1_su2[keep]
            su1_cu2 = su1_cu2[keep]
            two_su1_su2 = two_su1_su2[keep]
            lam0 = lam0[keep]
            lam = lam_new[keep]
            if lanes.size == 0:
                break
        else:
            lam = lam_new

    # Lanes that never converged: haversine, as in the scalar for/else.
    for lane in lanes.tolist():
        a, b = lane_points(lane)
        results[lane] = haversine_distance_km(a, b)

    if done_lanes:
        done_ids = np.concatenate(done_lanes)
        sin_sigma = np.concatenate([state[0] for state in done_state])
        cos_sigma = np.concatenate([state[1] for state in done_state])
        sigma = np.concatenate([state[2] for state in done_state])
        cos_sq_alpha = np.concatenate([state[3] for state in done_state])
        cos_2sigma_m = np.concatenate([state[4] for state in done_state])
        u_sq = cos_sq_alpha * _A2_MINUS_B2 / _B2
        big_a = 1.0 + u_sq / 16384.0 * (
            4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq))
        )
        big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
        delta_sigma = (
            big_b
            * sin_sigma
            * (
                cos_2sigma_m
                + big_b
                / 4.0
                * (
                    cos_sigma * (-1.0 + 2.0 * (cos_2sigma_m * cos_2sigma_m))
                    - big_b
                    / 6.0
                    * cos_2sigma_m
                    * (-3.0 + 4.0 * (sin_sigma * sin_sigma))
                    * (-3.0 + 4.0 * (cos_2sigma_m * cos_2sigma_m))
                )
            )
        )
        results[done_ids] = _WGS84_B * big_a * (sigma - delta_sigma) / 1_000.0

    full = np.zeros(total, dtype=np.float64)
    full[lane_ids] = results
    return full


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Approximate midpoint of the great-circle segment between two points."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    bx = math.cos(lat2) * math.cos(lon2 - lon1)
    by = math.cos(lat2) * math.sin(lon2 - lon1)
    lat_mid = math.atan2(
        math.sin(lat1) + math.sin(lat2),
        math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
    )
    lon_mid = lon1 + math.atan2(by, math.cos(lat1) + bx)
    lon_deg = math.degrees(lon_mid)
    # Normalise longitude into [-180, 180].
    lon_deg = (lon_deg + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat_mid), lon_deg)


def offset_point(origin: GeoPoint, distance_km: float, bearing_deg: float) -> GeoPoint:
    """Return the point ``distance_km`` away from ``origin`` along ``bearing_deg``.

    Uses the spherical direct formula, which is accurate enough for placing
    synthetic facilities around a city centre.
    """
    if distance_km < 0:
        raise ConfigurationError("distance_km must be non-negative")
    angular = distance_km / EARTH_RADIUS_KM
    bearing = math.radians(bearing_deg)
    lat1 = math.radians(origin.latitude)
    lon1 = math.radians(origin.longitude)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular)
        + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lat_deg = max(-90.0, min(90.0, math.degrees(lat2)))
    lon_deg = (math.degrees(lon2) + 180.0) % 360.0 - 180.0
    return GeoPoint(lat_deg, lon_deg)
