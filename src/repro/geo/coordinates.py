"""Geographic coordinates and geodesic distance computation.

The paper computes distances between colocation facilities with Karney's
geodesic algorithm.  We implement the Vincenty inverse formula on the WGS-84
ellipsoid, which agrees with Karney's method to well below a kilometre for the
distances that matter here (tens to thousands of kilometres), and fall back to
the spherical haversine formula for the rare antipodal cases where Vincenty
does not converge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: WGS-84 semi-major axis (metres).
_WGS84_A = 6_378_137.0
#: WGS-84 flattening.
_WGS84_F = 1.0 / 298.257223563
#: WGS-84 semi-minor axis (metres).
_WGS84_B = _WGS84_A * (1.0 - _WGS84_F)

#: Mean Earth radius (kilometres) used by the haversine fallback.
EARTH_RADIUS_KM = 6_371.0088


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes
    ----------
    latitude:
        Latitude in decimal degrees, in ``[-90, 90]``.
    longitude:
        Longitude in decimal degrees, in ``[-180, 180]``.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.longitude!r}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Geodesic distance to ``other`` in kilometres."""
        return geodesic_distance_km(self, other)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)


def haversine_distance_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres.

    Uses the haversine formula on a sphere of mean Earth radius.  Accurate to
    ~0.5% which is more than enough as a fallback.
    """
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def geodesic_distance_km(a: GeoPoint, b: GeoPoint, *, max_iterations: int = 200) -> float:
    """Geodesic (ellipsoidal) distance between two points, in kilometres.

    Implements the Vincenty inverse formula on WGS-84.  Falls back to the
    haversine distance when the iteration fails to converge (nearly antipodal
    points), which keeps the function total.

    The result is *exactly* symmetric in its arguments: the endpoints are
    put in a canonical order before evaluating, because the raw Vincenty
    iteration can differ in the last ulp under argument swap, and consumers
    (notably :class:`repro.geo.distindex.GeoDistanceIndex`) memoise distances
    under order-independent keys and compare them with strict inequalities.
    """
    if a == b:
        return 0.0
    if b < a:
        a, b = b, a

    phi1 = math.radians(a.latitude)
    phi2 = math.radians(b.latitude)
    lam = math.radians(b.longitude - a.longitude)

    u1 = math.atan((1.0 - _WGS84_F) * math.tan(phi1))
    u2 = math.atan((1.0 - _WGS84_F) * math.tan(phi2))
    sin_u1, cos_u1 = math.sin(u1), math.cos(u1)
    sin_u2, cos_u2 = math.sin(u2), math.cos(u2)

    lam_current = lam
    for _ in range(max_iterations):
        sin_lam = math.sin(lam_current)
        cos_lam = math.cos(lam_current)
        sin_sigma = math.sqrt(
            (cos_u2 * sin_lam) ** 2 + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lam) ** 2
        )
        if sin_sigma == 0.0:
            return 0.0  # coincident points
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lam
        sigma = math.atan2(sin_sigma, cos_sigma)
        sin_alpha = cos_u1 * cos_u2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha**2
        if cos_sq_alpha == 0.0:
            cos_2sigma_m = 0.0  # equatorial line
        else:
            cos_2sigma_m = cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        c = _WGS84_F / 16.0 * cos_sq_alpha * (4.0 + _WGS84_F * (4.0 - 3.0 * cos_sq_alpha))
        lam_prev = lam_current
        lam_current = lam + (1.0 - c) * _WGS84_F * sin_alpha * (
            sigma
            + c * sin_sigma * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2))
        )
        if abs(lam_current - lam_prev) < 1e-12:
            break
    else:
        # Vincenty failed to converge (nearly antipodal); haversine is fine.
        return haversine_distance_km(a, b)

    u_sq = cos_sq_alpha * (_WGS84_A**2 - _WGS84_B**2) / _WGS84_B**2
    big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)))
    big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
    delta_sigma = (
        big_b
        * sin_sigma
        * (
            cos_2sigma_m
            + big_b
            / 4.0
            * (
                cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2)
                - big_b
                / 6.0
                * cos_2sigma_m
                * (-3.0 + 4.0 * sin_sigma**2)
                * (-3.0 + 4.0 * cos_2sigma_m**2)
            )
        )
    )
    distance_m = _WGS84_B * big_a * (sigma - delta_sigma)
    return distance_m / 1_000.0


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Approximate midpoint of the great-circle segment between two points."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    bx = math.cos(lat2) * math.cos(lon2 - lon1)
    by = math.cos(lat2) * math.sin(lon2 - lon1)
    lat_mid = math.atan2(
        math.sin(lat1) + math.sin(lat2),
        math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
    )
    lon_mid = lon1 + math.atan2(by, math.cos(lat1) + bx)
    lon_deg = math.degrees(lon_mid)
    # Normalise longitude into [-180, 180].
    lon_deg = (lon_deg + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat_mid), lon_deg)


def offset_point(origin: GeoPoint, distance_km: float, bearing_deg: float) -> GeoPoint:
    """Return the point ``distance_km`` away from ``origin`` along ``bearing_deg``.

    Uses the spherical direct formula, which is accurate enough for placing
    synthetic facilities around a city centre.
    """
    if distance_km < 0:
        raise ConfigurationError("distance_km must be non-negative")
    angular = distance_km / EARTH_RADIUS_KM
    bearing = math.radians(bearing_deg)
    lat1 = math.radians(origin.latitude)
    lon1 = math.radians(origin.longitude)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular) + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lat_deg = max(-90.0, min(90.0, math.degrees(lat2)))
    lon_deg = (math.degrees(lon2) + 180.0) % 360.0 - 180.0
    return GeoPoint(lat_deg, lon_deg)
