"""Geographic primitives: coordinates, geodesic distances, delay models.

The paper's Step 3 translates a measured minimum RTT into a feasible distance
ring around a vantage point and intersects it with the geographic footprint of
the IXP (its colocation facilities).  Everything geographic lives here:

* :mod:`repro.geo.coordinates` — latitude/longitude points and geodesic
  distance (Vincenty inverse formula on the WGS-84 ellipsoid, with a haversine
  fallback), approximating Karney's method used in the paper.
* :mod:`repro.geo.cities` — a built-in gazetteer of world cities used by the
  synthetic topology generator.
* :mod:`repro.geo.regions` — metropolitan-area grouping and RIR service
  regions.
* :mod:`repro.geo.delay_model` — the RTT <-> distance model (Katz-Bassett
  maximum probe speed, the paper's fitted minimum speed curve) used both to
  synthesise realistic RTTs and to invert measured RTTs into feasible distance
  intervals.
* :mod:`repro.geo.distindex` — the shared, memoised geodesic-distance index
  (point-to-facility and facility-pair distances, sorted distance profiles,
  footprint span aggregates) that serves the geometry hot path of inference
  Steps 3 and 4.
"""

from repro.geo.coordinates import GeoPoint, geodesic_distance_km, haversine_distance_km
from repro.geo.cities import City, WORLD_CITIES, city_by_name, cities_in_region
from repro.geo.regions import RIRRegion, region_for_country, same_metro_area
from repro.geo.delay_model import DelayModel, FeasibleRing
from repro.geo.distindex import DistanceProfile, GeoDistanceIndex

__all__ = [
    "GeoPoint",
    "geodesic_distance_km",
    "haversine_distance_km",
    "DistanceProfile",
    "GeoDistanceIndex",
    "City",
    "WORLD_CITIES",
    "city_by_name",
    "cities_in_region",
    "RIRRegion",
    "region_for_country",
    "same_metro_area",
    "DelayModel",
    "FeasibleRing",
]
