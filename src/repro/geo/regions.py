"""Metropolitan-area grouping and RIR service regions.

Two geographic notions recur in the paper:

* *metropolitan area* — a disk with a 100 km diameter; two facilities more
  than 50 km apart are "in different metropolitan areas" for the purpose of
  classifying wide-area IXPs (Section 4.2);
* *RIR region* — the paper reports vantage-point coverage per Regional
  Internet Registry region (RIPE, APNIC, ARIN, LACNIC, AFRINIC).
"""

from __future__ import annotations

import enum

from repro.constants import WIDE_AREA_FACILITY_DISTANCE_KM
from repro.geo.coordinates import GeoPoint, geodesic_distance_km


class RIRRegion(enum.Enum):
    """Regional Internet Registry service regions."""

    RIPE = "RIPE NCC"
    ARIN = "ARIN"
    APNIC = "APNIC"
    LACNIC = "LACNIC"
    AFRINIC = "AFRINIC"


#: Country (ISO alpha-2) to RIR region mapping for the gazetteer countries.
_COUNTRY_TO_REGION: dict[str, RIRRegion] = {
    # RIPE NCC: Europe, Middle East, parts of Central Asia.
    **{
        cc: RIRRegion.RIPE
        for cc in (
            "NL", "DE", "GB", "FR", "RU", "PL", "CZ", "AT", "SE", "DK", "IT", "ES",
            "CH", "BE", "IE", "RO", "HU", "BG", "UA", "TR", "PT", "GR", "FI", "NO",
            "LV", "LT", "EE", "BY", "HR", "RS", "SK", "SI", "LU", "AE", "IL", "SA",
            "QA",
        )
    },
    # ARIN: US and Canada.
    **{cc: RIRRegion.ARIN for cc in ("US", "CA")},
    # APNIC: Asia-Pacific.
    **{
        cc: RIRRegion.APNIC
        for cc in (
            "SG", "HK", "JP", "IN", "MY", "ID", "TH", "PH", "TW", "KR", "AU", "NZ",
            "PK", "BD", "VN",
        )
    },
    # LACNIC: Latin America and the Caribbean.
    **{cc: RIRRegion.LACNIC for cc in ("BR", "MX", "AR", "CL", "CO", "PE", "VE", "EC")},
    # AFRINIC: Africa.
    **{cc: RIRRegion.AFRINIC for cc in ("ZA", "KE", "NG", "EG", "GH", "TN")},
}


def region_for_country(country_code: str) -> RIRRegion:
    """Map an ISO alpha-2 country code to its RIR service region.

    Unknown codes default to :attr:`RIRRegion.RIPE`, which only affects
    reporting (not inference).
    """
    return _COUNTRY_TO_REGION.get(country_code.upper(), RIRRegion.RIPE)


def same_metro_area(a: GeoPoint, b: GeoPoint, *, threshold_km: float = WIDE_AREA_FACILITY_DISTANCE_KM) -> bool:
    """Return True if two locations belong to the same metropolitan area.

    The paper considers facilities more than ``threshold_km`` (50 km) apart to
    be in different metropolitan areas.
    """
    return geodesic_distance_km(a, b) <= threshold_km
