"""RTT <-> distance model.

Two directions of the same physical relation are needed:

* **Synthesis** — the measurement simulators need to produce a realistic RTT
  for a probe travelling a given geodesic distance (plus access/queueing
  noise).
* **Inversion** — Step 3 of the inference algorithm needs to translate a
  measured minimum RTT into a *feasible distance ring* ``[d_min, d_max]``
  around the vantage point (Fig. 7 in the paper).

The paper anchors both directions in two empirical speed bounds:

* Katz-Bassett et al.: the end-to-end probe packet speed is at most
  ``v_max = 4/9 * c``; and
* a lower bound fitted on the NL-IX / NET-IX Y.1731 inter-facility delay
  dataset, increasing with distance (short paths take relatively more
  detours and per-hop overhead than long-haul paths).

We use the same functional form for the lower bound,
``v_min(d) = max(v_floor, k * (ln(d) - 3))`` with ``d`` in kilometres, and
keep every synthesised RTT strictly inside the band implied by the two bounds
so that the inversion used by Step 3 is sound by construction.  Out-of-band
outliers (the paper's footnote 7) can be injected explicitly by the noise
configuration of the measurement layer.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from threading import Lock

from repro.constants import MAX_PROBE_SPEED_KM_S
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FeasibleRing:
    """The ring (annulus) of feasible target locations around a vantage point.

    Attributes
    ----------
    min_distance_km:
        Minimum distance compatible with the measured RTT.
    max_distance_km:
        Maximum distance compatible with the measured RTT.
    """

    min_distance_km: float
    max_distance_km: float

    def __post_init__(self) -> None:
        if self.min_distance_km < 0 or self.max_distance_km < 0:
            raise ConfigurationError("feasible distances must be non-negative")
        if self.min_distance_km > self.max_distance_km:
            raise ConfigurationError(
                "min_distance_km must not exceed max_distance_km "
                f"({self.min_distance_km} > {self.max_distance_km})"
            )

    def contains(self, distance_km: float) -> bool:
        """Return True if ``distance_km`` lies inside the ring (inclusive)."""
        return self.min_distance_km <= distance_km <= self.max_distance_km

    @property
    def width_km(self) -> float:
        """Width of the ring in kilometres."""
        return self.max_distance_km - self.min_distance_km


class DelayModel:
    """Physical model linking geodesic distance and round-trip time.

    Parameters
    ----------
    v_max_km_s:
        Maximum end-to-end probe speed (defaults to 4/9 of the speed of
        light, per Katz-Bassett et al.).
    v_min_coefficient_km_s:
        The ``k`` of the fitted lower-bound speed ``v_min(d) = k*(ln(d)-3)``.
    v_min_floor_km_s:
        Lower clamp for ``v_min`` so the bound stays positive for short
        distances (``d < e^3 ~= 20 km``), where the logarithmic fit is not
        meaningful.
    base_overhead_ms:
        Fixed per-measurement overhead (forwarding, serialisation, last-mile
        access) added to every synthesised RTT, independent of distance.
    inversion_slack_ms:
        Extra RTT budget subtracted before inverting an RTT into a *minimum*
        distance.  It absorbs queueing jitter and forwarding overhead so that
        a sub-millisecond RTT remains compatible with distance zero (a member
        colocated in the very facility hosting the vantage point) — without
        it, every measurement would imply a spuriously positive lower bound.
    """

    #: Largest distance (km) considered when inverting RTT to distance; half
    #: the Earth's circumference.
    MAX_EARTH_DISTANCE_KM = 20_037.5

    def __init__(
        self,
        *,
        v_max_km_s: float = MAX_PROBE_SPEED_KM_S,
        v_min_coefficient_km_s: float = 10_000.0,
        v_min_floor_km_s: float = 5_000.0,
        base_overhead_ms: float = 0.15,
        inversion_slack_ms: float = 1.0,
    ) -> None:
        if v_max_km_s <= 0:
            raise ConfigurationError("v_max_km_s must be positive")
        if v_min_floor_km_s <= 0:
            raise ConfigurationError("v_min_floor_km_s must be positive")
        if v_min_coefficient_km_s <= 0:
            raise ConfigurationError("v_min_coefficient_km_s must be positive")
        if base_overhead_ms < 0:
            raise ConfigurationError("base_overhead_ms must be non-negative")
        if inversion_slack_ms < 0:
            raise ConfigurationError("inversion_slack_ms must be non-negative")
        self.v_max_km_s = v_max_km_s
        self.v_min_coefficient_km_s = v_min_coefficient_km_s
        self.v_min_floor_km_s = v_min_floor_km_s
        self.base_overhead_ms = base_overhead_ms
        self.inversion_slack_ms = inversion_slack_ms
        # Memo for the bisection-based RTT -> minimum-distance inversion.
        # Looking glasses report integer milliseconds, so Step 3 inverts the
        # same RTT values over and over; the model's parameters are fixed at
        # construction, making the inversion a pure function of the RTT.
        self._min_distance_memo: dict[float, float] = {}
        self._lock = Lock()

    def __getstate__(self) -> dict[str, object]:
        # The lock is process-local; the memo's entries are pure functions
        # of the (immutable) parameters, so they travel to workers as-is.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = Lock()

    # ------------------------------------------------------------------ #
    # Speed bounds
    # ------------------------------------------------------------------ #
    def v_min_km_s(self, distance_km: float) -> float:
        """Lower bound on the effective end-to-end speed for a distance."""
        if distance_km <= 0:
            return self.v_min_floor_km_s
        fitted = self.v_min_coefficient_km_s * (math.log(distance_km) - 3.0)
        return max(self.v_min_floor_km_s, fitted)

    def v_max_km_s_for(self, distance_km: float) -> float:
        """Upper bound on the effective end-to-end speed (constant)."""
        return self.v_max_km_s

    # ------------------------------------------------------------------ #
    # RTT bounds for a known distance
    # ------------------------------------------------------------------ #
    def min_rtt_ms(self, distance_km: float) -> float:
        """The smallest physically possible RTT for a geodesic distance."""
        if distance_km < 0:
            raise ConfigurationError("distance_km must be non-negative")
        if distance_km == 0:
            return 0.0
        return 2.0 * distance_km / self.v_max_km_s * 1_000.0

    def max_rtt_ms(self, distance_km: float) -> float:
        """The largest RTT the lower speed bound allows for a distance."""
        if distance_km < 0:
            raise ConfigurationError("distance_km must be non-negative")
        if distance_km == 0:
            return self.base_overhead_ms
        return 2.0 * distance_km / self.v_min_km_s(distance_km) * 1_000.0

    # ------------------------------------------------------------------ #
    # Synthesis
    # ------------------------------------------------------------------ #
    def sample_rtt_ms(
        self,
        distance_km: float,
        rng: random.Random,
        *,
        jitter_ms: float = 0.3,
        path_stretch: float = 1.0,
    ) -> float:
        """Draw a plausible RTT (ms) for a path covering ``distance_km``.

        The propagation component is drawn from a speed uniformly distributed
        in the inner 90% of the ``[v_min, v_max]`` band, then a fixed access
        overhead and an exponential jitter term are added.  ``path_stretch``
        (>= 1) inflates the effective distance to model circuitous layer-2
        paths (e.g. resold transport that does not follow the geodesic).
        """
        if distance_km < 0:
            raise ConfigurationError("distance_km must be non-negative")
        if path_stretch < 1.0:
            raise ConfigurationError("path_stretch must be >= 1")
        if jitter_ms < 0:
            raise ConfigurationError("jitter_ms must be non-negative")

        effective_km = distance_km * path_stretch
        if effective_km == 0.0:
            propagation_ms = rng.uniform(0.02, 0.25)
        else:
            v_low = self.v_min_km_s(effective_km)
            v_high = self.v_max_km_s
            # Keep away from the exact bounds so the inversion always brackets
            # the true distance.
            margin = 0.05 * (v_high - v_low)
            speed = rng.uniform(v_low + margin, v_high - margin)
            propagation_ms = 2.0 * effective_km / speed * 1_000.0
        jitter = rng.expovariate(1.0 / jitter_ms) if jitter_ms > 0 else 0.0
        return propagation_ms + self.base_overhead_ms + jitter

    # ------------------------------------------------------------------ #
    # Inversion (Step 3)
    # ------------------------------------------------------------------ #
    def max_distance_km(self, rtt_ms: float) -> float:
        """Largest geodesic distance compatible with a measured RTT."""
        if rtt_ms < 0:
            raise ConfigurationError("rtt_ms must be non-negative")
        propagation_ms = max(0.0, rtt_ms)
        return min(
            self.MAX_EARTH_DISTANCE_KM,
            propagation_ms / 1_000.0 * self.v_max_km_s / 2.0,
        )

    def min_distance_km(self, rtt_ms: float) -> float:
        """Smallest geodesic distance compatible with a measured RTT.

        Memoised per model instance (the parameters are fixed at
        construction); :meth:`invert_min_distance_km` is the raw,
        memo-bypassing bisection.
        """
        cached = self._min_distance_memo.get(rtt_ms)
        if cached is not None:
            return cached
        # The bisection is a pure function of the fixed parameters, so it is
        # computed outside the lock; only the memo store is serialised and
        # the hit path above stays lock-free.
        distance = self.invert_min_distance_km(rtt_ms)
        with self._lock:
            self._min_distance_memo[rtt_ms] = distance
        return distance

    def invert_min_distance_km(self, rtt_ms: float) -> float:
        """The raw RTT -> minimum-distance bisection (no memoisation).

        Solves ``max_rtt_ms(d) = rtt_ms`` for ``d`` by bisection: any target
        closer than the returned distance would have produced a smaller RTT
        even along the slowest plausible path.  The fixed overhead is
        subtracted first; RTTs at or below the overhead are compatible with
        distance zero.
        """
        if rtt_ms < 0:
            raise ConfigurationError("rtt_ms must be non-negative")
        effective = rtt_ms - self.base_overhead_ms - self.inversion_slack_ms
        if effective <= 0:
            return 0.0
        # max_rtt_ms is strictly increasing in d, so bisection applies.
        lo, hi = 0.0, self.MAX_EARTH_DISTANCE_KM
        if self.max_rtt_ms(hi) <= effective:
            return hi
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.max_rtt_ms(mid) < effective:
                lo = mid
            else:
                hi = mid
        return lo

    def feasible_ring(self, rtt_ms: float) -> FeasibleRing:
        """Feasible distance ring around a vantage point for a measured RTT."""
        return FeasibleRing(
            min_distance_km=self.min_distance_km(rtt_ms),
            max_distance_km=self.max_distance_km(rtt_ms),
        )
