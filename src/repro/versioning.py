"""Generation-stamped dataset versioning with typed change journals.

The reproduction's hot paths are all served from derived indexes — the LPM
tables over prefixes (:mod:`repro.netindex`), the geodesic-distance memos
(:mod:`repro.geo.distindex`), the per-container accessor views and the
step-result cache of the execution engine (:mod:`repro.core.engine`).  Before
this module each layer policed staleness with its own hand-rolled contract: a
``(size-when-built, payload)`` guard here, a manual ``invalidate_caches()``
there, a "build a fresh engine" rule elsewhere.  The three contracts drifted,
and the size guard had a documented trap: replacing a value in place at
unchanged size was invisible until someone remembered the manual call.

This module is the single versioning layer the other subsystems share:

* :class:`Versioned` — a mixin giving a mutable container one monotonically
  increasing **generation stamp** plus per-**domain** stamps (a domain is a
  named slice of the container, e.g. ``"ixp_prefixes"`` or
  ``"facility_locations"``).  Mutators either *record* a typed change (the
  journalled path) or *bump* opaquely (something changed, nothing precise is
  known — the modern spelling of ``invalidate_caches()``).
* :class:`Change` / :class:`ChangeKind` — one typed add / remove / replace
  record, naming its domain, key and both values.
* :class:`ChangeJournal` — the ordered, bounded record of changes between two
  generations.  Consumers that remember the generation they last synced to
  ask :meth:`ChangeJournal.since` for the changes they missed and patch their
  derived state *incrementally*; a ``None`` answer (an opaque bump happened,
  or the journal was truncated past its bound) means replay is impossible and
  the consumer must rebuild from scratch.  An answer is complete by
  construction: every mutation either appended a record or raised the floor.
* :class:`GenerationGuardedIndex` — the successor of the retired
  ``SizeGuardedIndex``: a lazily built payload guarded by an explicit
  **version token** instead of a bare size.  The conventional token is
  ``(domain generation, len(backing))``, so growth and shrinkage are still
  detected automatically *and* journalled in-place replacement at unchanged
  size re-keys the payload — the historical trap cannot recur for mutations
  that go through the recording mutators.

Invariants consumers rely on:

1. **Monotonicity** — generation stamps only ever increase; equal stamps
   (with equal size hints) mean "nothing changed through a tracked path".
2. **Journal completeness** — ``journal.since(g)`` either returns *every*
   change after generation ``g`` (filtered to the requested domains) or
   ``None``; it never silently drops a record.
3. **Opaque bumps poison replay** — ``bump_generation()`` raises the journal
   floor, so consumers fall back to a full rebuild instead of patching
   against an unknown mutation.  Direct mutation of a container's public
   dicts (the legacy path) bumps nothing: it keeps the legacy size-guard
   semantics and still requires ``invalidate_caches()`` when sizes do not
   change.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Generic, Hashable, Iterable, TypeVar

P = TypeVar("P")

#: Journal records kept before the oldest are dropped (raising the floor).
#: Bulk loads (a full dataset merge) blow through the bound by design:
#: consumers created afterwards sync from the current generation anyway.
DEFAULT_JOURNAL_BOUND = 4096

#: Serialises lazy journal creation.  :class:`Versioned` deliberately has no
#: per-instance ``__init__`` (see its docstring), so a module-level lock is
#: the only home for the guard; creation happens at most once per container,
#: so the sharing is harmless.
_JOURNAL_CREATION_LOCK = Lock()


class ChangeKind(enum.Enum):
    """What a journalled mutation did to its key."""

    ADD = "add"
    REMOVE = "remove"
    REPLACE = "replace"


@dataclass(frozen=True)
class Change:
    """One typed mutation of a versioned container.

    Attributes
    ----------
    kind:
        Add, remove or replace.
    domain:
        The named slice of the container the key lives in (e.g.
        ``"facility_locations"``).  Consumers filter replays by domain.
    key:
        The mutated key — a prefix string, an interface IP, a facility id, or
        a composite such as ``(ixp_id, facility_id)`` for colocation edges.
    old / new:
        The value before and after (``None`` for the absent side of an add or
        remove).
    """

    kind: ChangeKind
    domain: str
    key: object
    old: object = None
    new: object = None


class ChangeJournal:
    """Bounded, ordered record of the changes between two generations.

    Every entry is tagged with the generation the change *produced*.  The
    journal also tracks a **floor**: the generation at or below which replay
    is unavailable, either because an opaque bump happened or because old
    records were dropped to honour the bound.
    """

    __slots__ = ("_records", "_bound", "_floor")

    def __init__(self, bound: int = DEFAULT_JOURNAL_BOUND) -> None:
        self._records: deque[tuple[int, Change]] = deque()
        self._bound = bound
        self._floor = 0

    def append(self, generation: int, change: Change) -> None:
        """Record one change as the mutation that produced ``generation``."""
        self._records.append((generation, change))
        while len(self._records) > self._bound:
            dropped_generation, _ = self._records.popleft()
            self._floor = max(self._floor, dropped_generation)

    def mark_opaque(self, generation: int) -> None:
        """Poison replay up to ``generation`` (an unrecorded mutation)."""
        self._floor = max(self._floor, generation)
        self._records.clear()

    def since(
        self, generation: int, domains: Iterable[str] | None = None
    ) -> list[Change] | None:
        """Every change after ``generation``, or ``None`` if replay is impossible.

        ``domains`` filters the answer to the named domains; the
        completeness guarantee still covers *all* domains — a ``None`` floor
        violation is reported even when the missed changes would have been
        filtered out, because the caller cannot know that.
        """
        if generation < self._floor:
            return None
        wanted = None if domains is None else frozenset(domains)
        changes: list[Change] = []
        for recorded_generation, change in self._records:
            if recorded_generation <= generation:
                continue
            if wanted is not None and change.domain not in wanted:
                continue
            changes.append(change)
        return changes

    @property
    def floor(self) -> int:
        """The generation at or below which replay is unavailable."""
        return self._floor

    def __len__(self) -> int:
        return len(self._records)


class Versioned:
    """Mixin adding generation stamps and a change journal to a container.

    The mixin deliberately stores nothing until the first mutation, so it can
    be layered onto dataclasses without becoming a field (it never takes part
    in ``__init__``, ``repr`` or equality).
    """

    _generation = 0
    _opaque_generation = 0
    _journal: ChangeJournal | None = None
    _domain_generations: dict[str, int] | None = None

    @property
    def generation(self) -> int:
        """The container's current generation stamp (0 when never mutated)."""
        return self._generation

    @property
    def journal(self) -> ChangeJournal:
        """The container's change journal (created lazily).

        A journal created *after* opaque bumps inherits their floor, so a
        consumer can never mistake an unrecorded past for an empty one.

        Creation is double-checked behind a module-level lock: concurrent
        readers (per-IXP engine nodes syncing against ``dataset.journal``)
        must agree on one journal object, not race two into place.
        """
        journal = self._journal
        if journal is None:
            with _JOURNAL_CREATION_LOCK:
                journal = self._journal
                if journal is None:
                    journal = ChangeJournal()
                    if self._opaque_generation:
                        journal.mark_opaque(self._opaque_generation)
                    self._journal = journal
        return journal

    def record_change(self, change: Change) -> int:
        """Apply-side bookkeeping for one journalled mutation.

        Bumps the global and per-domain generation and appends the record, so
        journal replays stay complete.  Returns the new generation.
        """
        generation = self._generation + 1
        self._generation = generation
        domains = self._domain_generations
        if domains is None:
            domains = self._domain_generations = {}
        domains[change.domain] = generation
        self.journal.append(generation, change)
        return generation

    def bump_generation(self) -> int:
        """Opaque bump: every domain is considered changed, replay impossible.

        This is the modern spelling of the legacy ``invalidate_caches()``
        contract — derived state is re-keyed everywhere, and journal
        consumers rebuild instead of patching.
        """
        generation = self._generation + 1
        self._generation = generation
        self._opaque_generation = generation
        if self._journal is not None:
            self._journal.mark_opaque(generation)
        return generation

    def domain_generation(self, domain: str) -> int:
        """The generation of the last change touching ``domain``.

        Opaque bumps count against every domain (their scope is unknown).
        """
        domains = self._domain_generations
        recorded = 0 if domains is None else domains.get(domain, 0)
        return max(recorded, self._opaque_generation)

    def version_token(self) -> tuple[Hashable, ...]:
        """A hashable stamp of this container's tracked state.

        The base implementation is the bare generation; containers override
        it to append size hints (``(generation, len(backing), ...)``) so that
        legacy direct mutation that grows or shrinks a backing collection is
        still detected without a generation bump.
        """
        return (self._generation,)


class GenerationGuardedIndex(Generic[P]):
    """A lazily built payload guarded by an explicit version token.

    The successor of the retired ``(size-when-built, payload)`` pattern
    (``SizeGuardedIndex``): the guard is any hashable token the owner derives
    from its versioned state — conventionally ``(domain generation, size)``.
    Growth and shrinkage change the size part exactly as before, and
    journalled in-place replacement at unchanged size changes the generation
    part, which the size guard could never see.

    The ``(token, payload)`` pair is stored and swapped as one atomic
    reference, so a reader never observes a fresh token with a stale payload.
    Builds are additionally serialised behind a lock with a double-checked
    token validation (relevant when per-IXP engine nodes run on a thread
    pool): two threads racing a lazy build cannot construct the payload twice
    or publish a stale one, and the current-token fast path stays lock-free.
    """

    __slots__ = ("_state", "_lock")

    def __init__(self) -> None:
        self._state: tuple[Hashable, P] | None = None
        self._lock = Lock()

    def get(self, token: Hashable, build: Callable[[], P]) -> P:
        """The payload, rebuilt via ``build()`` if the version token changed."""
        state = self._state
        if state is not None and state[0] == token:
            return state[1]
        with self._lock:
            state = self._state
            if state is None or state[0] != token:
                state = (token, build())
                self._state = state
        return state[1]

    def invalidate(self) -> None:
        """Drop the payload; the next :meth:`get` rebuilds it."""
        with self._lock:
            self._state = None

    def __getstate__(self) -> bool:
        # Locks cannot cross process boundaries and a derived payload is
        # rebuildable by definition: ship nothing.  The sentinel must be
        # truthy — pickle skips __setstate__ for falsy states.
        return True

    def __setstate__(self, state: bool) -> None:
        self._state = None
        self._lock = Lock()

    @property
    def is_built(self) -> bool:
        """Whether a payload is currently held (mainly for tests)."""
        return self._state is not None
