"""Traceroute measurement campaigns.

Two kinds of traceroute corpora are needed:

* a **broad corpus** mimicking the public RIPE Atlas measurements the paper
  mines: probes hosted inside IXP member networks tracerouting towards many
  destinations.  Steps 4 and 5 extract IXP crossings, multi-IXP routers and
  private AS adjacencies from it;
* **targeted pair traceroutes** for the routing-implications study of
  Section 6.4: from probes inside a remote member of a large IXP towards
  prefixes of other members of the same IXP.

Both are produced by the :class:`TracerouteCampaign`, which precomputes an
AS-level shortest-path tree per probe AS (a single BFS) and expands only the
paths it needs, keeping large fan-outs affordable.
"""

from __future__ import annotations

import random

from repro.config import CampaignConfig
from repro.exceptions import MeasurementError
from repro.geo.delay_model import DelayModel
from repro.geo.worldindex import WorldDistanceIndex
from repro.measurement.results import TracerouteCorpus
from repro.routing.bgp import ASGraph, RouteSelector
from repro.routing.forwarding import ForwardingSimulator
from repro.topology.world import World


class TracerouteCampaign:
    """Generates traceroute corpora over the simulated forwarding plane."""

    def __init__(
        self,
        world: World,
        config: CampaignConfig | None = None,
        *,
        graph: ASGraph | None = None,
        delay_model: DelayModel | None = None,
        world_index: WorldDistanceIndex | None = None,
    ) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self.graph = graph or ASGraph(world)
        self.selector = RouteSelector(self.graph)
        self._rng = random.Random(world.seed * 613 + self.config.seed_offset + 4)
        # One world-level distance index serves every hop of every corpus
        # this campaign produces (callers may inject a shared one).
        self.world_index = world_index or WorldDistanceIndex(world)
        self.simulator = ForwardingSimulator(
            world,
            self.graph,
            delay_model=delay_model,
            rng=random.Random(world.seed * 613 + self.config.seed_offset + 5),
            world_index=self.world_index,
            hot_potato_compliance=self.config.hot_potato_compliance,
            hop_loss_rate=self.config.traceroute_hop_loss_rate,
        )

    # ------------------------------------------------------------------ #
    # Broad public corpus
    # ------------------------------------------------------------------ #
    def run_public_corpus(self, ixp_ids: list[str]) -> TracerouteCorpus:
        """Build the Atlas-like corpus for the studied IXPs.

        Probe ASes are sampled among the members of each studied IXP (Atlas
        probes live inside member networks); each probe traceroutes towards a
        sample of prefixes originated by members of the studied IXPs and a few
        unrelated networks.
        """
        if not ixp_ids:
            raise MeasurementError("at least one IXP is required for a traceroute corpus")
        corpus = TracerouteCorpus()

        member_asns: set[int] = set()
        probe_asns: set[int] = set()
        for ixp_id in ixp_ids:
            members = sorted({m.asn for m in self.world.active_memberships(ixp_id)})
            member_asns.update(members)
            sample_size = min(self.config.traceroute_sources_per_ixp, len(members))
            if sample_size:
                probe_asns.update(self._rng.sample(members, k=sample_size))

        other_asns = sorted(set(self.world.ases) - member_asns)
        destination_pool = sorted(member_asns)
        for probe_asn in sorted(probe_asns):
            destinations = self._pick_destinations(probe_asn, destination_pool, other_asns)
            corpus.extend(self._trace_from(probe_asn, destinations))
        return corpus

    def _pick_destinations(
        self, probe_asn: int, member_pool: list[int], other_pool: list[int]
    ) -> list[int]:
        count = self.config.traceroute_destinations_per_source
        member_count = max(1, int(count * 0.8))
        other_count = max(0, count - member_count)
        members = [asn for asn in member_pool if asn != probe_asn]
        others = [asn for asn in other_pool if asn != probe_asn]
        destinations = []
        if members:
            destinations.extend(self._rng.sample(members, k=min(member_count, len(members))))
        if others and other_count:
            destinations.extend(self._rng.sample(others, k=min(other_count, len(others))))
        return destinations

    def _trace_from(self, probe_asn: int, destination_asns: list[int]) -> list:
        paths = []
        as_paths = self.selector.paths_from(probe_asn, destination_asns)
        for destination_asn, as_path in sorted(as_paths.items()):
            if len(as_path) < 2:
                continue
            try:
                destination_ip = self.simulator.destination_ip_for(destination_asn)
            except Exception:  # pragma: no cover - every AS originates prefixes
                continue
            paths.append(self.simulator.traceroute_along(as_path, destination_ip))
        return paths

    # ------------------------------------------------------------------ #
    # Targeted pair traceroutes (Section 6.4)
    # ------------------------------------------------------------------ #
    def run_pairs(self, pairs: list[tuple[int, int]]) -> TracerouteCorpus:
        """Traceroute from the first AS of each pair towards the second.

        Pairs sharing no path are silently skipped (the paper likewise only
        analyses pairs for which traceroutes complete).
        """
        corpus = TracerouteCorpus()
        by_source: dict[int, list[int]] = {}
        for source, destination in pairs:
            by_source.setdefault(source, []).append(destination)
        for source in sorted(by_source):
            corpus.extend(self._trace_from(source, by_source[source]))
        return corpus
