"""Vantage points: looking glasses and Atlas-style probes inside IXPs.

The paper's Step 2 needs vantage points whose exact location is known and
which sit inside (or right next to) the IXP fabric: publicly accessible
looking glasses attached to the peering LAN, and RIPE Atlas probes hosted in
IXP facilities.  Both come with quirks that the methodology must survive:

* some looking glasses round RTTs up to whole milliseconds;
* some Atlas probes never answer (dead), and some are deployed in the IXP's
  *management* LAN — physically elsewhere — which inflates every RTT they
  measure (the paper drops probes with >= 1 ms to the IXP route server).

The planner decides, per IXP, which vantage points exist; the ping campaign
then uses them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.config import CampaignConfig
from repro.exceptions import VantagePointError
from repro.geo.coordinates import GeoPoint
from repro.topology.world import World


class VantagePointKind(enum.Enum):
    """Type of measurement vantage point."""

    LOOKING_GLASS = "looking-glass"
    ATLAS_PROBE = "atlas-probe"


@dataclass(frozen=True)
class VantagePoint:
    """One measurement vantage point hosted at an IXP.

    Attributes
    ----------
    vp_id:
        Unique identifier, e.g. ``"lg-ixp-003"`` or ``"atlas-ixp-003-1"``.
    kind:
        Looking glass or Atlas probe.
    ixp_id:
        The IXP this vantage point can measure.
    facility_id:
        Facility hosting the vantage point (its location is known exactly).
    location:
        Geographic coordinates of that facility.
    rounds_rtt_up:
        True for looking glasses that report integer milliseconds.
    in_management_lan:
        True for Atlas probes deployed in the IXP management LAN (their RTTs
        carry a constant inflation).
    management_extra_rtt_ms:
        The inflation applied to every measurement of a management-LAN probe.
    is_dead:
        True for probes that never answer.
    """

    vp_id: str
    kind: VantagePointKind
    ixp_id: str
    facility_id: str
    location: GeoPoint
    rounds_rtt_up: bool = False
    in_management_lan: bool = False
    management_extra_rtt_ms: float = 0.0
    is_dead: bool = False

    @property
    def is_looking_glass(self) -> bool:
        """True for looking-glass vantage points."""
        return self.kind is VantagePointKind.LOOKING_GLASS


class VantagePointPlanner:
    """Decides which vantage points exist at which IXPs."""

    def __init__(self, world: World, config: CampaignConfig | None = None) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self._rng = random.Random(world.seed * 131 + self.config.seed_offset)

    def plan(self, ixp_ids: list[str]) -> dict[str, list[VantagePoint]]:
        """Plan vantage points for every requested IXP.

        Returns a mapping IXP id -> list of vantage points (possibly empty:
        not every IXP hosts a usable vantage point, exactly as in the paper).
        """
        plan: dict[str, list[VantagePoint]] = {}
        for ixp_id in ixp_ids:
            plan[ixp_id] = self._plan_for_ixp(ixp_id)
        return plan

    def plan_internal(self, ixp_ids: list[str]) -> dict[str, VantagePoint]:
        """Plan one guaranteed in-fabric vantage point per IXP.

        Used to reproduce the "control" measurements of Section 4, for which
        the paper obtained one-time access to pings run from inside the IXP
        infrastructure itself.
        """
        plan: dict[str, VantagePoint] = {}
        for ixp_id in ixp_ids:
            self.world.ixp(ixp_id)  # raises UnknownEntityError for bad ids
            facility_id = self._primary_facility(ixp_id)
            plan[ixp_id] = VantagePoint(
                vp_id=f"internal-{ixp_id}",
                kind=VantagePointKind.LOOKING_GLASS,
                ixp_id=ixp_id,
                facility_id=facility_id,
                location=self.world.facility_location(facility_id),
                rounds_rtt_up=False,
            )
        return plan

    # ------------------------------------------------------------------ #
    def _primary_facility(self, ixp_id: str) -> str:
        ixp = self.world.ixp(ixp_id)
        if not ixp.facility_ids:
            raise VantagePointError(f"IXP {ixp_id} has no facilities")
        home = sorted(f for f in ixp.facility_ids
                      if self.world.facility(f).city == ixp.city)
        return home[0] if home else sorted(ixp.facility_ids)[0]

    def _plan_for_ixp(self, ixp_id: str) -> list[VantagePoint]:
        config = self.config
        vantage_points: list[VantagePoint] = []
        primary = self._primary_facility(ixp_id)

        if self._rng.random() < config.lg_presence_rate:
            vantage_points.append(
                VantagePoint(
                    vp_id=f"lg-{ixp_id}",
                    kind=VantagePointKind.LOOKING_GLASS,
                    ixp_id=ixp_id,
                    facility_id=primary,
                    location=self.world.facility_location(primary),
                    rounds_rtt_up=self._rng.random() < config.lg_integer_rounding_rate,
                )
            )

        ixp = self.world.ixp(ixp_id)
        n_probes = self._rng.randint(0, config.max_atlas_probes_per_ixp)
        facilities = sorted(ixp.facility_ids)
        for index in range(n_probes):
            facility_id = self._rng.choice(facilities)
            in_management = self._rng.random() < config.atlas_management_lan_rate
            low, high = config.management_lan_extra_rtt_ms
            vantage_points.append(
                VantagePoint(
                    vp_id=f"atlas-{ixp_id}-{index}",
                    kind=VantagePointKind.ATLAS_PROBE,
                    ixp_id=ixp_id,
                    facility_id=facility_id,
                    location=self.world.facility_location(facility_id),
                    in_management_lan=in_management,
                    management_extra_rtt_ms=self._rng.uniform(low, high) if in_management else 0.0,
                    is_dead=self._rng.random() < config.atlas_dead_probe_rate,
                )
            )
        return vantage_points
