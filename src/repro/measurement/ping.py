"""Ping measurement campaigns.

From every vantage point of an IXP the campaign pings the IXP route server
and every member peering interface, for a configurable number of rounds
(the paper uses one round every two hours for two days, i.e. 24 rounds).

The campaign produces *raw* samples; Step 2 of the inference pipeline applies
the TTL-consistency filters, drops bad Atlas probes and extracts minimum RTTs.

RTTs are synthesised from the geodesic distance between the vantage point and
the member's actual router location (ground truth), using the delay model's
physical speed bounds, plus:

* a path-stretch factor (remote connections ride longer, more circuitous
  layer-2 paths than local cross-connects),
* per-round queueing jitter,
* the constant inflation of management-LAN Atlas probes,
* integer rounding for looking glasses that report whole milliseconds.
"""

from __future__ import annotations

import math
import random

from repro.config import CampaignConfig
from repro.constants import EXPECTED_INITIAL_TTLS
from repro.exceptions import MeasurementError
from repro.geo.coordinates import geodesic_distance_km
from repro.geo.delay_model import DelayModel
from repro.measurement.results import PingCampaignResult, PingSample, PingSeries
from repro.measurement.vantage import VantagePoint, VantagePointPlanner
from repro.topology.entities import IXPMembership
from repro.topology.world import World


class PingCampaign:
    """Runs ping campaigns from IXP vantage points to member interfaces."""

    def __init__(
        self,
        world: World,
        config: CampaignConfig | None = None,
        *,
        delay_model: DelayModel | None = None,
    ) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self.delay_model = delay_model or DelayModel()
        self._rng = random.Random(world.seed * 271 + self.config.seed_offset + 1)
        self.planner = VantagePointPlanner(world, self.config)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        ixp_ids: list[str],
        vantage_plan: dict[str, list[VantagePoint]] | None = None,
    ) -> PingCampaignResult:
        """Run the campaign for the given IXPs.

        Parameters
        ----------
        ixp_ids:
            IXPs to measure.
        vantage_plan:
            Optional pre-computed vantage-point plan (so callers can reuse the
            same plan across experiments); planned automatically otherwise.
        """
        if not ixp_ids:
            raise MeasurementError("at least one IXP is required for a ping campaign")
        plan = vantage_plan or self.planner.plan(ixp_ids)
        result = PingCampaignResult()
        for ixp_id in ixp_ids:
            for vp in plan.get(ixp_id, []):
                result.register_vantage_point(vp)
                self._measure_from_vp(vp, result)
        return result

    def run_control(self, ixp_ids: list[str]) -> PingCampaignResult:
        """Run the Section 4 control campaign from in-fabric vantage points."""
        internal = self.planner.plan_internal(ixp_ids)
        plan = {ixp_id: [vp] for ixp_id, vp in internal.items()}
        return self.run(ixp_ids, vantage_plan=plan)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _measure_from_vp(self, vp: VantagePoint, result: PingCampaignResult) -> None:
        ixp = self.world.ixp(vp.ixp_id)
        # Route-server control series (used by Step 2's Atlas filter).
        if ixp.route_server_ip is not None:
            route_server_series = PingSeries(
                vp_id=vp.vp_id, ixp_id=vp.ixp_id, target_ip=ixp.route_server_ip)
            if not vp.is_dead:
                self._fill_samples(vp, route_server_series, distance_km=0.0, stretch=1.0,
                                   responds=True)
            result.add_route_server_series(route_server_series)

        for membership in self.world.active_memberships(vp.ixp_id):
            series = PingSeries(
                vp_id=vp.vp_id, ixp_id=vp.ixp_id, target_ip=membership.interface_ip)
            if not vp.is_dead:
                responds = self._rng.random() < self._response_rate(vp)
                distance, stretch = self._distance_and_stretch(vp, membership)
                self._fill_samples(vp, series, distance_km=distance, stretch=stretch,
                                   responds=responds)
            result.add_series(series)

    def _response_rate(self, vp: VantagePoint) -> float:
        return (
            self.config.lg_response_rate if vp.is_looking_glass
            else self.config.atlas_response_rate
        )

    def _distance_and_stretch(
        self, vp: VantagePoint, membership: IXPMembership
    ) -> tuple[float, float]:
        member_location = self.world.facility_location(membership.member_facility_id)
        distance = geodesic_distance_km(vp.location, member_location)
        if membership.is_remote:
            low, high = self.config.remote_path_stretch
        else:
            low, high = self.config.local_path_stretch
        return distance, self._rng.uniform(low, high)

    def _fill_samples(
        self,
        vp: VantagePoint,
        series: PingSeries,
        *,
        distance_km: float,
        stretch: float,
        responds: bool,
    ) -> None:
        if not responds:
            return
        initial_ttl = self._rng.choice(EXPECTED_INITIAL_TTLS)
        for _ in range(self.config.ping_rounds):
            if self._rng.random() > 0.97:
                continue  # an individual round may simply be lost
            rtt = self.delay_model.sample_rtt_ms(
                distance_km, self._rng, jitter_ms=self.config.jitter_ms, path_stretch=stretch)
            rtt += vp.management_extra_rtt_ms
            if vp.rounds_rtt_up:
                rtt = float(max(1, math.ceil(rtt)))
            reply_ttl = initial_ttl - 1
            if self._rng.random() < self.config.ttl_anomaly_rate:
                reply_ttl = initial_ttl - self._rng.randint(3, 14)
            series.samples.append(PingSample(rtt_ms=rtt, reply_ttl=reply_ttl))
