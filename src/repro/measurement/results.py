"""Result containers for measurement campaigns.

These classes hold *raw* observations (per-round RTT and reply-TTL samples,
traceroute hop sequences).  Filtering — TTL-consistency checks, minimum-RTT
extraction, discarding of bad Atlas probes — is deliberately left to Step 2 of
the inference pipeline, mirroring the paper's separation between measurement
collection and interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.forwarding import ForwardingPath
from repro.versioning import GenerationGuardedIndex, Versioned


@dataclass(frozen=True)
class PingSample:
    """One ping reply: RTT in milliseconds and the reply's TTL."""

    rtt_ms: float
    reply_ttl: int


@dataclass
class PingSeries:
    """All ping replies collected for one (vantage point, target) pair."""

    vp_id: str
    ixp_id: str
    target_ip: str
    samples: list[PingSample] = field(default_factory=list)

    @property
    def responded(self) -> bool:
        """True if at least one reply was received."""
        return bool(self.samples)

    def min_rtt(self) -> float | None:
        """Minimum RTT over all replies (no filtering applied)."""
        if not self.samples:
            return None
        return min(sample.rtt_ms for sample in self.samples)


@dataclass
class PingCampaignResult(Versioned):
    """Everything a ping campaign produced.

    The per-VP and per-IXP accessors are served from lazily built dict
    indexes over the (append-only) series lists, guarded by
    ``(generation, length)`` version tokens
    (:class:`~repro.versioning.GenerationGuardedIndex`): appending through
    :meth:`add_series` / :meth:`add_route_server_series` — or growing the
    lists directly — re-keys the indexes automatically, and the generation
    stamp also re-keys the step-graph engine's cached Step 2 results.
    Editing a recorded series' samples *in place* still requires
    :meth:`invalidate_caches` (an opaque generation bump).
    """

    series: list[PingSeries] = field(default_factory=list)
    route_server_series: list[PingSeries] = field(default_factory=list)
    vantage_points: dict[str, "VantagePoint"] = field(default_factory=dict)  # noqa: F821

    # Generation-guarded derived indexes; never part of equality or repr.
    _series_index: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)
    _rs_index: GenerationGuardedIndex = field(
        default_factory=GenerationGuardedIndex, init=False, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        """Re-key the derived indexes (needed after in-place sample edits)."""
        self.bump_generation()

    def version_token(self) -> tuple[int, int, int, int]:
        """``(generation, sizes...)`` stamp folded into engine cache keys."""
        return (
            self.generation,
            len(self.series),
            len(self.route_server_series),
            len(self.vantage_points),
        )

    def add_series(self, series: PingSeries) -> None:
        """Record one member-interface series (a campaign append or retry)."""
        self.series.append(series)
        self.bump_generation()

    def add_route_server_series(self, series: PingSeries) -> None:
        """Record one route-server control series for a vantage point."""
        self.route_server_series.append(series)
        self.bump_generation()

    def register_vantage_point(self, vp: "VantagePoint") -> None:  # noqa: F821
        """Record a vantage point the campaign measures from.

        Registration changes the version token (``len(vantage_points)``
        participates, and the generation bump covers re-registration of an
        existing VP id), so cached Step 2 results re-key.
        """
        self.vantage_points[vp.vp_id] = vp
        self.bump_generation()

    def _build_series_index(
        self,
    ) -> tuple[dict[str, list[PingSeries]], dict[str, list[PingSeries]]]:
        by_ixp: dict[str, list[PingSeries]] = {}
        by_vp: dict[str, list[PingSeries]] = {}
        for series in self.series:
            by_ixp.setdefault(series.ixp_id, []).append(series)
            by_vp.setdefault(series.vp_id, []).append(series)
        return by_ixp, by_vp

    def _indexed_series(self) -> tuple[dict[str, list[PingSeries]], dict[str, list[PingSeries]]]:
        """(IXP -> series, VP -> series) indexes over the member series."""
        return self._series_index.get(
            (self.generation, len(self.series)), self._build_series_index)

    def series_for_ixp(self, ixp_id: str) -> list[PingSeries]:
        """Member-interface series collected at one IXP."""
        return list(self._indexed_series()[0].get(ixp_id, ()))

    def series_for_vp(self, vp_id: str) -> list[PingSeries]:
        """Member-interface series collected from one vantage point."""
        return list(self._indexed_series()[1].get(vp_id, ()))

    def route_server_series_for_vp(self, vp_id: str) -> PingSeries | None:
        """The route-server control series of one vantage point, if any.

        A vantage point may carry several control series (a retried or
        refreshed campaign appends a new one); all of their samples are one
        population of control measurements, so they are merged into a single
        series rather than silently keeping the first.  The returned series
        is a merged *read-only view* built when the index was (re)built: the
        recorded series are never mutated, callers must not mutate the view,
        and editing a recorded series' samples in place after the index was
        built requires :meth:`invalidate_caches` to become visible.
        """
        index = self._rs_index.get(
            (self.generation, len(self.route_server_series)), self._build_rs_index)
        return index.get(vp_id)

    def _build_rs_index(self) -> dict[str, PingSeries]:
        by_vp: dict[str, PingSeries] = {}
        for series in self.route_server_series:
            merged = by_vp.get(series.vp_id)
            if merged is None:
                merged = by_vp[series.vp_id] = PingSeries(
                    vp_id=series.vp_id, ixp_id=series.ixp_id,
                    target_ip=series.target_ip)
            merged.samples.extend(series.samples)
        return by_vp

    def queried_interfaces(self, ixp_id: str | None = None) -> set[str]:
        """Interfaces that were queried (optionally for one IXP)."""
        return {
            s.target_ip for s in self.series if ixp_id is None or s.ixp_id == ixp_id
        }

    def responsive_interfaces(self, ixp_id: str | None = None) -> set[str]:
        """Interfaces that replied to at least one vantage point."""
        return {
            s.target_ip
            for s in self.series
            if s.responded and (ixp_id is None or s.ixp_id == ixp_id)
        }


@dataclass
class TracerouteCorpus(Versioned):
    """A collection of simulated traceroute paths.

    Generation-stamped so the engine's traceroute-observables cache key
    tracks corpus refreshes made through :meth:`extend`.
    """

    paths: list[ForwardingPath] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.paths)

    def version_token(self) -> tuple[int, int]:
        """``(generation, size)`` stamp folded into engine cache keys."""
        return (self.generation, len(self.paths))

    def extend(self, paths: list[ForwardingPath]) -> None:
        """Append paths to the corpus."""
        self.paths.extend(paths)
        self.bump_generation()

    def paths_from(self, source_asn: int) -> list[ForwardingPath]:
        """All paths whose probe sits in the given AS."""
        return [p for p in self.paths if p.source_asn == source_asn]
