"""Y.1731-style inter-facility delay monitoring.

Wide-area IXPs such as NET-IX and NL-IX continuously measure the delay
between their own facilities with precisely timestamped test frames (ITU-T
Y.1731 performance monitoring).  The paper uses two such datasets to

* show that a fixed RTT threshold is meaningless for wide-area IXPs
  (Fig. 2a: 87% of NET-IX facility pairs exceed 10 ms), and
* fit the minimum/maximum propagation-speed bounds of Step 3 (Fig. 6).

The simulated monitor produces the same artefact: a matrix of median RTTs
between every pair of facilities of one IXP, plus a flat (distance, RTT)
sample list usable for bound fitting.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.config import CampaignConfig
from repro.exceptions import MeasurementError
from repro.geo.delay_model import DelayModel
from repro.topology.world import World


@dataclass
class InterFacilityDelayMatrix:
    """Median RTTs between the facilities of one IXP."""

    ixp_id: str
    facility_ids: list[str]
    median_rtt_ms: dict[tuple[str, str], float] = field(default_factory=dict)
    distances_km: dict[tuple[str, str], float] = field(default_factory=dict)

    def pairs(self) -> list[tuple[str, str]]:
        """All measured facility pairs (unordered, canonical order)."""
        return sorted(self.median_rtt_ms)

    def rtt(self, facility_a: str, facility_b: str) -> float:
        """Median RTT between two facilities."""
        key = (min(facility_a, facility_b), max(facility_a, facility_b))
        if key not in self.median_rtt_ms:
            raise MeasurementError(f"no measurement between {facility_a} and {facility_b}")
        return self.median_rtt_ms[key]

    def fraction_above(self, threshold_ms: float) -> float:
        """Fraction of facility pairs with a median RTT above a threshold."""
        if not self.median_rtt_ms:
            return 0.0
        above = sum(1 for value in self.median_rtt_ms.values() if value > threshold_ms)
        return above / len(self.median_rtt_ms)

    def samples(self) -> list[tuple[float, float]]:
        """(distance_km, median_rtt_ms) samples for delay-model fitting."""
        return [
            (self.distances_km[key], self.median_rtt_ms[key]) for key in self.pairs()
        ]


class Y1731Monitor:
    """Simulates an IXP's own inter-facility performance monitoring."""

    def __init__(
        self,
        world: World,
        config: CampaignConfig | None = None,
        *,
        delay_model: DelayModel | None = None,
        rounds: int = 48,
    ) -> None:
        if rounds < 1:
            raise MeasurementError("rounds must be at least 1")
        self.world = world
        self.config = config or CampaignConfig()
        self.delay_model = delay_model or DelayModel()
        self.rounds = rounds
        self._rng = random.Random(world.seed * 397 + self.config.seed_offset + 2)

    def measure(self, ixp_id: str) -> InterFacilityDelayMatrix:
        """Measure every facility pair of one IXP."""
        ixp = self.world.ixp(ixp_id)
        facility_ids = sorted(ixp.facility_ids)
        if len(facility_ids) < 2:
            raise MeasurementError(f"IXP {ixp_id} has fewer than two facilities")
        matrix = InterFacilityDelayMatrix(ixp_id=ixp_id, facility_ids=facility_ids)
        for i, facility_a in enumerate(facility_ids):
            for facility_b in facility_ids[i + 1:]:
                distance = self.world.distance_between_facilities_km(facility_a, facility_b)
                rtts = [
                    self.delay_model.sample_rtt_ms(
                        distance, self._rng, jitter_ms=0.15,
                        path_stretch=self._rng.uniform(1.0, 1.2))
                    for _ in range(self.rounds)
                ]
                key = (facility_a, facility_b)
                matrix.median_rtt_ms[key] = statistics.median(rtts)
                matrix.distances_km[key] = distance
        return matrix
