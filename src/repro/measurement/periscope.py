"""Periscope-style looking-glass querying facade.

The paper automates its looking-glass measurements through the Periscope
platform, which batches queries and enforces per-LG rate limits so that the
public LGs are not overwhelmed.  This facade reproduces that behaviour on top
of the ping campaign: callers submit (looking glass, target) queries, and the
client executes them in rate-limited batches, reporting how many batches a
campaign needed.

It exists for API fidelity (examples and tests exercise it); experiments use
:class:`~repro.measurement.ping.PingCampaign` directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config import CampaignConfig
from repro.exceptions import MeasurementError, VantagePointError
from repro.geo.coordinates import geodesic_distance_km
from repro.geo.delay_model import DelayModel
from repro.measurement.vantage import VantagePoint
from repro.topology.world import World


@dataclass
class LookingGlassQuery:
    """One ping query submitted through the looking-glass facade."""

    vp: VantagePoint
    target_ip: str


@dataclass
class LookingGlassReply:
    """The reply to one looking-glass query."""

    query: LookingGlassQuery
    rtt_ms: float | None
    batch_index: int


@dataclass
class PeriscopeClient:
    """Rate-limited looking-glass query executor."""

    world: World
    config: CampaignConfig = field(default_factory=CampaignConfig)
    queries_per_batch: int = 50
    delay_model: DelayModel = field(default_factory=DelayModel)

    def __post_init__(self) -> None:
        if self.queries_per_batch < 1:
            raise MeasurementError("queries_per_batch must be at least 1")
        self._rng = random.Random(self.world.seed * 911 + self.config.seed_offset + 3)
        self._pending: list[LookingGlassQuery] = []

    def submit(self, vp: VantagePoint, target_ip: str) -> None:
        """Queue one query (only looking glasses are accepted)."""
        if not vp.is_looking_glass:
            raise VantagePointError("Periscope only drives looking glasses")
        self._pending.append(LookingGlassQuery(vp=vp, target_ip=target_ip))

    @property
    def pending_count(self) -> int:
        """Number of queued, not yet executed queries."""
        return len(self._pending)

    def execute(self) -> list[LookingGlassReply]:
        """Run every queued query in rate-limited batches."""
        replies: list[LookingGlassReply] = []
        for index, query in enumerate(self._pending):
            batch_index = index // self.queries_per_batch
            rtt = self._measure(query)
            replies.append(LookingGlassReply(query=query, rtt_ms=rtt, batch_index=batch_index))
        self._pending = []
        return replies

    # ------------------------------------------------------------------ #
    def _measure(self, query: LookingGlassQuery) -> float | None:
        if self._rng.random() > self.config.lg_response_rate:
            return None
        target = self.world.interfaces.get(query.target_ip)
        if target is None:
            return None
        router = self.world.router(target.router_id)
        distance = geodesic_distance_km(
            query.vp.location, self.world.facility_location(router.facility_id))
        return self.delay_model.sample_rtt_ms(distance, self._rng,
                                              jitter_ms=self.config.jitter_ms)
