"""Active measurement substrate: vantage points, pings, traceroutes, Y.1731.

The paper's methodology consumes four kinds of active measurements, all of
which are simulated here against the ground-truth world:

* **Vantage points** (:mod:`repro.measurement.vantage`) — looking glasses
  attached to IXP peering LANs and RIPE-Atlas-style probes colocated in IXP
  facilities, including the pathological ones the paper has to filter out
  (dead probes, probes in management LANs with inflated RTTs).
* **Ping campaigns** (:mod:`repro.measurement.ping`) — repeated rounds of
  pings from every vantage point of an IXP towards every member peering
  interface, producing raw RTT/TTL samples.
* **Traceroute campaigns** (:mod:`repro.measurement.traceroute`) — corpora of
  simulated traceroutes whose hops exhibit the IXP crossing and private
  interconnection signatures Steps 4-5 rely on.
* **Y.1731 inter-facility delay** (:mod:`repro.measurement.y1731`) — the
  facility-to-facility performance-monitoring measurements wide-area IXPs run
  on their own backbones (Fig. 2a / Fig. 6).
"""

from repro.measurement.results import (
    PingCampaignResult,
    PingSample,
    PingSeries,
    TracerouteCorpus,
)
from repro.measurement.vantage import VantagePoint, VantagePointKind, VantagePointPlanner
from repro.measurement.ping import PingCampaign
from repro.measurement.traceroute import TracerouteCampaign
from repro.measurement.y1731 import InterFacilityDelayMatrix, Y1731Monitor
from repro.measurement.periscope import PeriscopeClient

__all__ = [
    "PingCampaignResult",
    "PingSample",
    "PingSeries",
    "TracerouteCorpus",
    "VantagePoint",
    "VantagePointKind",
    "VantagePointPlanner",
    "PingCampaign",
    "TracerouteCampaign",
    "InterFacilityDelayMatrix",
    "Y1731Monitor",
    "PeriscopeClient",
]
