"""Unit tests for the gazetteer and region helpers."""

import pytest

from repro.geo.cities import WORLD_CITIES, City, cities_in_region, city_by_name
from repro.geo.coordinates import geodesic_distance_km
from repro.geo.regions import RIRRegion, region_for_country, same_metro_area


class TestGazetteer:
    def test_city_names_are_unique(self):
        names = [c.name.lower() for c in WORLD_CITIES]
        assert len(names) == len(set(names))

    def test_city_lookup_is_case_insensitive(self):
        assert city_by_name("amsterdam") is city_by_name("Amsterdam")

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_population_ranks_are_unique_and_positive(self):
        ranks = [c.population_rank for c in WORLD_CITIES]
        assert len(ranks) == len(set(ranks))
        assert all(rank > 0 for rank in ranks)

    def test_gazetteer_has_at_least_100_cities(self):
        assert len(WORLD_CITIES) >= 100

    def test_every_city_has_valid_country_code(self):
        assert all(len(c.country) == 2 and c.country.isupper() for c in WORLD_CITIES)

    def test_major_peering_cities_present(self):
        for name in ("Amsterdam", "Frankfurt", "London", "New York", "Singapore"):
            assert isinstance(city_by_name(name), City)

    def test_cities_are_distinct_locations(self):
        ams = city_by_name("Amsterdam").location
        fra = city_by_name("Frankfurt").location
        assert geodesic_distance_km(ams, fra) > 300.0


class TestRegions:
    @pytest.mark.parametrize(
        "country, region",
        [
            ("NL", RIRRegion.RIPE),
            ("DE", RIRRegion.RIPE),
            ("US", RIRRegion.ARIN),
            ("SG", RIRRegion.APNIC),
            ("BR", RIRRegion.LACNIC),
            ("ZA", RIRRegion.AFRINIC),
        ],
    )
    def test_known_mappings(self, country, region):
        assert region_for_country(country) is region

    def test_lower_case_country_code(self):
        assert region_for_country("us") is RIRRegion.ARIN

    def test_unknown_country_defaults_to_ripe(self):
        assert region_for_country("XX") is RIRRegion.RIPE

    def test_cities_in_region_returns_only_matching(self):
        cities = cities_in_region(RIRRegion.LACNIC)
        assert cities
        assert all(region_for_country(c.country) is RIRRegion.LACNIC for c in cities)

    def test_every_region_has_cities(self):
        for region in RIRRegion:
            assert cities_in_region(region), f"no cities for {region}"


class TestMetroArea:
    def test_same_city_is_same_metro(self):
        rotterdam = city_by_name("Rotterdam").location
        hague = city_by_name("The Hague").location
        assert same_metro_area(rotterdam, hague)

    def test_different_cities_are_not_same_metro(self):
        ams = city_by_name("Amsterdam").location
        fra = city_by_name("Frankfurt").location
        assert not same_metro_area(ams, fra)

    def test_threshold_is_configurable(self):
        ams = city_by_name("Amsterdam").location
        fra = city_by_name("Frankfurt").location
        assert same_metro_area(ams, fra, threshold_km=1_000.0)
