"""Unit tests for IPv4 address allocation."""

import ipaddress

import pytest

from repro.exceptions import AddressingError
from repro.topology.addressing import AddressPlan, LanAllocator, PrefixPool


class TestPrefixPool:
    def test_allocations_do_not_overlap(self):
        pool = PrefixPool("10.0.0.0/16")
        networks = [pool.allocate(24) for _ in range(10)]
        for i, a in enumerate(networks):
            for b in networks[i + 1:]:
                assert not a.overlaps(b)

    def test_allocations_stay_inside_supernet(self):
        pool = PrefixPool("10.0.0.0/16")
        supernet = ipaddress.ip_network("10.0.0.0/16")
        for _ in range(20):
            assert pool.allocate(26).subnet_of(supernet)

    def test_mixed_sizes_align_correctly(self):
        pool = PrefixPool("10.0.0.0/16")
        first = pool.allocate(26)
        second = pool.allocate(24)
        assert not first.overlaps(second)
        assert int(second.network_address) % second.num_addresses == 0

    def test_exhaustion_raises(self):
        pool = PrefixPool("10.0.0.0/30")
        pool.allocate(30)
        with pytest.raises(AddressingError):
            pool.allocate(30)

    def test_too_large_prefix_rejected(self):
        pool = PrefixPool("10.0.0.0/24")
        with pytest.raises(AddressingError):
            pool.allocate(16)

    def test_remaining_addresses_decrease(self):
        pool = PrefixPool("10.0.0.0/20")
        before = pool.remaining_addresses
        pool.allocate(24)
        assert pool.remaining_addresses == before - 256


class TestLanAllocator:
    def test_allocates_host_addresses_in_order(self):
        allocator = LanAllocator(ipaddress.ip_network("192.0.2.0/29"))
        hosts = [allocator.allocate_host() for _ in range(3)]
        assert hosts == ["192.0.2.1", "192.0.2.2", "192.0.2.3"]

    def test_capacity(self):
        allocator = LanAllocator(ipaddress.ip_network("192.0.2.0/29"))
        assert allocator.capacity == 6

    def test_exhaustion_raises(self):
        allocator = LanAllocator(ipaddress.ip_network("192.0.2.0/30"))
        allocator.allocate_host()
        allocator.allocate_host()
        with pytest.raises(AddressingError):
            allocator.allocate_host()


class TestAddressPlan:
    def test_peering_lan_sized_for_members(self):
        plan = AddressPlan()
        lan = plan.allocate_peering_lan("ixp-a", expected_members=300)
        assert lan.num_addresses - 2 >= 300 * 2

    def test_duplicate_peering_lan_rejected(self):
        plan = AddressPlan()
        plan.allocate_peering_lan("ixp-a", expected_members=10)
        with pytest.raises(AddressingError):
            plan.allocate_peering_lan("ixp-a", expected_members=10)

    def test_member_interface_inside_lan(self):
        plan = AddressPlan()
        lan = plan.allocate_peering_lan("ixp-a", expected_members=10)
        ip = plan.allocate_member_interface("ixp-a")
        assert ipaddress.ip_address(ip) in lan

    def test_member_interface_requires_lan(self):
        plan = AddressPlan()
        with pytest.raises(AddressingError):
            plan.allocate_member_interface("ixp-missing")

    def test_infrastructure_blocks_are_per_as(self):
        plan = AddressPlan()
        ip_a = plan.allocate_infrastructure_ip(65001)
        ip_b = plan.allocate_infrastructure_ip(65002)
        blocks = plan.infrastructure_blocks()
        assert ipaddress.ip_address(ip_a) in blocks[65001]
        assert ipaddress.ip_address(ip_b) in blocks[65002]
        assert not blocks[65001].overlaps(blocks[65002])

    def test_duplicate_infrastructure_block_rejected(self):
        plan = AddressPlan()
        plan.allocate_infrastructure_block(65001)
        with pytest.raises(AddressingError):
            plan.allocate_infrastructure_block(65001)

    def test_routed_prefixes_are_distinct_and_disjoint_from_others(self):
        plan = AddressPlan()
        lan = plan.allocate_peering_lan("ixp-a", expected_members=10)
        infra = plan.allocate_infrastructure_block(65001)
        routed = [plan.allocate_routed_prefix(65001) for _ in range(5)]
        for prefix in routed:
            assert not prefix.overlaps(lan)
            assert not prefix.overlaps(infra)
        for i, a in enumerate(routed):
            for b in routed[i + 1:]:
                assert not a.overlaps(b)

    def test_pools_are_disjoint_supernets(self):
        ixp = ipaddress.ip_network(AddressPlan.IXP_SUPERNET)
        infra = ipaddress.ip_network(AddressPlan.INFRASTRUCTURE_SUPERNET)
        routed = ipaddress.ip_network(AddressPlan.ROUTED_SUPERNET)
        assert not ixp.overlaps(infra)
        assert not ixp.overlaps(routed)
        assert not infra.overlaps(routed)
