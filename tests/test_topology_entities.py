"""Unit tests for the topology entity dataclasses."""

import pytest

from repro.exceptions import TopologyError
from repro.geo.coordinates import GeoPoint
from repro.topology.entities import (
    AutonomousSystem,
    ConnectionKind,
    Facility,
    Interface,
    InterfaceKind,
    IXP,
    IXPMembership,
    PrivateLink,
    Router,
    TrafficLevel,
)


class TestConnectionKind:
    def test_local_is_not_remote(self):
        assert not ConnectionKind.LOCAL.is_remote

    @pytest.mark.parametrize(
        "kind",
        [ConnectionKind.REMOTE_RESELLER, ConnectionKind.REMOTE_LONG_CABLE,
         ConnectionKind.REMOTE_FEDERATION],
    )
    def test_remote_kinds(self, kind):
        assert kind.is_remote


class TestTrafficLevel:
    def test_ordinals_are_monotonic(self):
        ordinals = [level.ordinal for level in TrafficLevel]
        assert ordinals == sorted(ordinals)
        assert len(set(ordinals)) == len(ordinals)

    def test_smallest_bucket_is_first(self):
        assert TrafficLevel.MBPS_100.ordinal == 0


class TestAutonomousSystem:
    def test_valid(self):
        system = AutonomousSystem(asn=65000, name="Test", country="NL",
                                  headquarters_city="Amsterdam")
        assert system.tier == 3

    def test_rejects_bad_asn(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=0, name="x", country="NL", headquarters_city="Amsterdam")

    def test_rejects_bad_tier(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=65000, name="x", country="NL",
                             headquarters_city="Amsterdam", tier=4)

    def test_rejects_zero_prefixes(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=65000, name="x", country="NL",
                             headquarters_city="Amsterdam", prefix_count=0)


class TestRouterAndInterface:
    def test_add_interface_is_idempotent(self):
        router = Router(router_id="r1", asn=65000, facility_id="fac-1")
        router.add_interface("10.0.0.1")
        router.add_interface("10.0.0.1")
        assert router.interface_ips == ["10.0.0.1"]

    def test_ixp_interface_requires_ixp(self):
        with pytest.raises(TopologyError):
            Interface(ip="185.1.0.1", asn=65000, router_id="r1", kind=InterfaceKind.IXP_LAN)

    def test_backbone_interface_does_not_require_ixp(self):
        interface = Interface(ip="5.0.0.1", asn=65000, router_id="r1",
                              kind=InterfaceKind.BACKBONE)
        assert interface.ixp_id is None


class TestIXP:
    def test_rejects_non_physical_min_capacity(self):
        with pytest.raises(TopologyError):
            IXP(ixp_id="x", name="X", city="Amsterdam", country="NL",
                peering_lan="185.1.0.0/24", min_physical_capacity_mbps=100)

    def test_valid_ixp(self):
        ixp = IXP(ixp_id="x", name="X", city="Amsterdam", country="NL",
                  peering_lan="185.1.0.0/24")
        assert ixp.allows_resellers
        assert ixp.federation_id is None


class TestIXPMembership:
    def _membership(self, **overrides):
        defaults = dict(
            ixp_id="ixp-1", asn=65000, interface_ip="185.1.0.1", router_id="r1",
            member_facility_id="fac-1", connection=ConnectionKind.LOCAL,
            port_capacity_mbps=1_000,
        )
        defaults.update(overrides)
        return IXPMembership(**defaults)

    def test_local_membership_is_not_remote(self):
        assert not self._membership().is_remote

    def test_reseller_membership_requires_reseller_id(self):
        with pytest.raises(TopologyError):
            self._membership(connection=ConnectionKind.REMOTE_RESELLER)

    def test_reseller_membership_with_reseller(self):
        membership = self._membership(connection=ConnectionKind.REMOTE_RESELLER,
                                      reseller_id="rsl-1", port_capacity_mbps=100)
        assert membership.is_remote

    def test_unknown_capacity_rejected(self):
        with pytest.raises(TopologyError):
            self._membership(port_capacity_mbps=1234)

    def test_active_in_month(self):
        membership = self._membership(joined_month=3, departed_month=8)
        assert not membership.active_in_month(2)
        assert membership.active_in_month(3)
        assert membership.active_in_month(7)
        assert not membership.active_in_month(8)

    def test_active_without_departure(self):
        membership = self._membership(joined_month=0)
        assert membership.active_in_month(100)


class TestPrivateLink:
    def _link(self):
        return PrivateLink(facility_id="fac-1", asn_a=65001, asn_b=65002,
                           interface_a="5.0.0.1", interface_b="5.0.4.1",
                           router_a="r1", router_b="r2")

    def test_involves(self):
        link = self._link()
        assert link.involves(65001)
        assert link.involves(65002)
        assert not link.involves(65003)

    def test_other_end(self):
        link = self._link()
        assert link.other_end(65001) == 65002
        assert link.other_end(65002) == 65001

    def test_other_end_rejects_non_member(self):
        with pytest.raises(TopologyError):
            self._link().other_end(65003)


class TestFacility:
    def test_facility_holds_location(self):
        facility = Facility(facility_id="fac-1", name="DC", city="Amsterdam",
                            country="NL", location=GeoPoint(52.3, 4.9))
        assert facility.location.latitude == pytest.approx(52.3)
