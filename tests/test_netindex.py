"""Unit tests for the shared longest-prefix-match index subsystem."""

import pytest

from repro.netindex import LPMIndex


class TestLPMIndexBasics:
    def test_empty_index_misses(self):
        index = LPMIndex()
        assert index.lookup("10.0.0.1") is None
        assert len(index) == 0
        assert not index

    def test_single_prefix(self):
        index = LPMIndex([("100.0.0.0/24", "a")])
        assert index.lookup("100.0.0.17") == "a"
        assert index.lookup("100.0.1.17") is None
        assert len(index) == 1
        assert index

    def test_accepts_mapping(self):
        index = LPMIndex({"100.0.0.0/24": "a", "100.0.1.0/24": "b"})
        assert index.lookup("100.0.0.1") == "a"
        assert index.lookup("100.0.1.1") == "b"

    def test_boundary_addresses(self):
        index = LPMIndex([("100.0.0.0/24", "a")])
        assert index.lookup("100.0.0.0") == "a"
        assert index.lookup("100.0.0.255") == "a"
        assert index.lookup("99.255.255.255") is None
        assert index.lookup("100.0.1.0") is None

    def test_none_value_rejected(self):
        with pytest.raises(ValueError):
            LPMIndex([("100.0.0.0/24", None)])

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            LPMIndex([("100.0.0.1/24", "a")])  # host bits set


class TestLongestPrefixSemantics:
    def test_nested_prefix_wins_regardless_of_insertion_order(self):
        # Broad prefix registered FIRST — the seed first-match scan would
        # have answered "outer" for addresses inside the nested /24.
        index = LPMIndex([("185.0.0.0/8", "outer"), ("185.1.0.0/24", "inner")])
        assert index.lookup("185.1.0.7") == "inner"
        assert index.lookup("185.2.0.7") == "outer"

        reversed_order = LPMIndex([("185.1.0.0/24", "inner"), ("185.0.0.0/8", "outer")])
        assert reversed_order.lookup("185.1.0.7") == "inner"
        assert reversed_order.lookup("185.2.0.7") == "outer"

    def test_three_levels_of_nesting(self):
        index = LPMIndex([
            ("10.0.0.0/8", "l8"),
            ("10.1.0.0/16", "l16"),
            ("10.1.2.0/24", "l24"),
        ])
        assert index.lookup("10.1.2.3") == "l24"
        assert index.lookup("10.1.3.3") == "l16"
        assert index.lookup("10.2.0.1") == "l8"
        assert index.lookup("11.0.0.1") is None

    def test_sibling_prefixes_inside_outer(self):
        index = LPMIndex([
            ("10.0.0.0/8", "outer"),
            ("10.1.0.0/24", "a"),
            ("10.3.0.0/24", "b"),
        ])
        assert index.lookup("10.1.0.9") == "a"
        assert index.lookup("10.3.0.9") == "b"
        assert index.lookup("10.2.0.9") == "outer"  # gap between siblings
        assert index.lookup("10.255.0.9") == "outer"  # after the last sibling

    def test_host_route_is_most_specific(self):
        index = LPMIndex([
            ("100.0.0.0/16", "net"),
            ("100.0.0.5/32", "host"),
        ])
        assert index.lookup("100.0.0.5") == "host"
        assert index.lookup("100.0.0.6") == "net"

    def test_host_route_alone(self):
        index = LPMIndex([("100.0.0.5/32", "host")])
        assert index.lookup("100.0.0.5") == "host"
        assert index.lookup("100.0.0.6") is None

    def test_duplicate_prefix_last_registration_wins(self):
        index = LPMIndex([("100.0.0.0/24", "old"), ("100.0.0.0/24", "new")])
        assert index.lookup("100.0.0.1") == "new"
        assert len(index) == 1

    def test_prefix_ending_at_address_space_boundary(self):
        index = LPMIndex([("255.255.255.0/24", "top")])
        assert index.lookup("255.255.255.255") == "top"
        assert index.lookup("255.255.254.1") is None

    def test_nested_prefix_sharing_outer_end(self):
        index = LPMIndex([("10.0.0.0/16", "outer"), ("10.0.255.0/24", "inner")])
        assert index.lookup("10.0.255.200") == "inner"
        assert index.lookup("10.0.254.200") == "outer"

    def test_nested_prefix_sharing_outer_start(self):
        index = LPMIndex([("10.0.0.0/16", "outer"), ("10.0.0.0/24", "inner")])
        assert index.lookup("10.0.0.200") == "inner"
        assert index.lookup("10.0.1.200") == "outer"


class TestMemoisation:
    def test_repeated_lookup_hits_and_misses_are_memoised(self):
        index = LPMIndex([("100.0.0.0/24", "a")])
        assert index.lookup("100.0.0.1") == "a"
        assert index.lookup("203.0.113.1") is None
        # Second round served from the memo (same answers).
        assert index.lookup("100.0.0.1") == "a"
        assert index.lookup("203.0.113.1") is None
        # The memo stores (value, prefixlen) matches, misses as None.
        assert index._memo == {"100.0.0.1": ("a", 24), "203.0.113.1": None}

    def test_clear_cache_keeps_answers_correct(self):
        index = LPMIndex([("100.0.0.0/24", "a")])
        assert index.lookup("100.0.0.1") == "a"
        index.clear_cache()
        assert index._memo == {}
        assert index.lookup("100.0.0.1") == "a"


class TestIPv6:
    def test_v4_and_v6_tables_are_independent(self):
        index = LPMIndex([
            ("100.0.0.0/24", "v4"),
            ("2001:db8::/32", "v6"),
            ("2001:db8:1::/48", "v6-inner"),
        ])
        assert index.lookup("100.0.0.1") == "v4"
        assert index.lookup("2001:db8::1") == "v6"
        assert index.lookup("2001:db8:1::1") == "v6-inner"
        assert index.lookup("2001:db9::1") is None


class TestGenerationGuardedIndex:
    """The shared version-token lazy-cache helper (ex-SizeGuardedIndex)."""

    def test_builds_lazily_and_once_per_token(self):
        from repro.versioning import GenerationGuardedIndex
        backing = {"a": 1}
        builds = []

        def build():
            builds.append(len(backing))
            return dict(backing)

        guard = GenerationGuardedIndex()
        assert not guard.is_built
        assert guard.get((0, len(backing)), build) == {"a": 1}
        assert guard.get((0, len(backing)), build) == {"a": 1}
        assert builds == [1], "same token must not rebuild"

    def test_size_change_triggers_rebuild(self):
        from repro.versioning import GenerationGuardedIndex
        backing = {"a": 1}
        guard = GenerationGuardedIndex()
        assert guard.get((0, len(backing)), lambda: dict(backing)) == {"a": 1}
        backing["b"] = 2
        assert guard.get((0, len(backing)), lambda: dict(backing)) == {"a": 1, "b": 2}
        del backing["a"]
        del backing["b"]
        assert guard.get((0, len(backing)), lambda: dict(backing)) == {}

    def test_generation_bump_triggers_rebuild_at_same_size(self):
        from repro.versioning import GenerationGuardedIndex
        backing = {"a": 1}
        guard = GenerationGuardedIndex()
        assert guard.get((0, len(backing)), lambda: dict(backing)) == {"a": 1}
        # Replace the key set at unchanged size: the size half cannot see
        # it, but the owner's generation bump re-keys the payload.
        del backing["a"]
        backing["b"] = 2
        assert guard.get((1, len(backing)), lambda: dict(backing)) == {"b": 2}

    def test_invalidate_drops_payload(self):
        from repro.versioning import GenerationGuardedIndex
        guard = GenerationGuardedIndex()
        assert guard.get((0, 1), lambda: "payload") == "payload"
        guard.invalidate()
        assert not guard.is_built
        assert guard.get((0, 1), lambda: "rebuilt") == "rebuilt"
