"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config import (
    CampaignConfig,
    DataSourceNoiseConfig,
    ExperimentConfig,
    GeneratorConfig,
    InferenceConfig,
)
from repro.exceptions import ConfigurationError


class TestGeneratorConfig:
    def test_defaults_are_valid(self):
        config = GeneratorConfig()
        assert config.n_ixps >= 2
        assert 0.0 <= config.base_remote_fraction <= 1.0

    def test_tiny_is_smaller_than_default(self):
        tiny, default = GeneratorConfig.tiny(), GeneratorConfig()
        assert tiny.n_ixps < default.n_ixps
        assert tiny.n_ases < default.n_ases

    def test_small_is_between_tiny_and_default(self):
        tiny, small, default = GeneratorConfig.tiny(), GeneratorConfig.small(), GeneratorConfig()
        assert tiny.n_ases < small.n_ases < default.n_ases

    def test_rejects_too_few_ixps(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(n_ixps=1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(base_remote_fraction=1.5)

    def test_rejects_inverted_size_bounds(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(largest_ixp_members=10, smallest_ixp_members=20)

    def test_rejects_remote_bands_summing_above_one(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(remote_same_metro_fraction=0.7, remote_regional_fraction=0.6)

    def test_rejects_tier_fractions_summing_to_one(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(tier1_fraction=0.5, tier2_fraction=0.5)

    def test_is_frozen(self):
        config = GeneratorConfig()
        with pytest.raises(Exception):
            config.n_ixps = 99  # type: ignore[misc]


class TestNoiseConfig:
    def test_defaults_are_valid(self):
        config = DataSourceNoiseConfig()
        assert 0.0 <= config.pdb_interface_coverage <= 1.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            DataSourceNoiseConfig(he_interface_coverage=2.0)

    def test_rejects_negative_coordinate_error(self):
        with pytest.raises(ConfigurationError):
            DataSourceNoiseConfig(facility_coordinate_error_km=-5.0)


class TestCampaignConfig:
    def test_defaults_are_valid(self):
        config = CampaignConfig()
        assert config.ping_rounds >= 1

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(ping_rounds=0)

    def test_rejects_bad_stretch(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(remote_path_stretch=(0.9, 1.2))
        with pytest.raises(ConfigurationError):
            CampaignConfig(local_path_stretch=(1.5, 1.1))

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(lg_response_rate=-0.1)


class TestInferenceConfig:
    def test_defaults_are_valid(self):
        config = InferenceConfig()
        assert config.rtt_baseline_threshold_ms == pytest.approx(10.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(rtt_baseline_threshold_ms=0.0)

    def test_rejects_zero_neighbours(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(min_private_neighbours=0)

    def test_steps_can_be_disabled(self):
        config = InferenceConfig(enable_step4_multi_ixp=False, enable_step5_private_links=False)
        assert not config.enable_step4_multi_ixp
        assert not config.enable_step5_private_links


class TestExperimentConfig:
    def test_default_bundle(self):
        config = ExperimentConfig()
        assert config.studied_ixp_count == 30

    def test_tiny_and_small_bundles(self):
        assert ExperimentConfig.tiny().studied_ixp_count < ExperimentConfig().studied_ixp_count
        assert ExperimentConfig.small().generator.n_ixps == GeneratorConfig.small().n_ixps

    def test_rejects_zero_studied_ixps(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(studied_ixp_count=0)

    def test_seed_propagates_to_generator(self):
        config = ExperimentConfig.small(seed=99)
        assert config.generator.seed == 99
