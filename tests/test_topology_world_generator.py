"""Tests of the World container and the synthetic world generator.

These assert the structural invariants the rest of the library depends on and
the calibration targets of DESIGN.md §5 (remote share, port capacity mix,
wide-area prevalence).
"""

import ipaddress

import pytest

from repro.config import GeneratorConfig
from repro.constants import CAPACITY_GE
from repro.exceptions import TopologyError, UnknownEntityError
from repro.topology.entities import ConnectionKind
from repro.topology.generator import WorldGenerator
from repro.topology.world import World


class TestWorldLookups:
    def test_summary_counts_match_containers(self, tiny_world):
        summary = tiny_world.summary()
        assert summary["ases"] == len(tiny_world.ases)
        assert summary["memberships"] == len(tiny_world.memberships)

    def test_unknown_entities_raise(self, tiny_world):
        with pytest.raises(UnknownEntityError):
            tiny_world.facility("fac-nope")
        with pytest.raises(UnknownEntityError):
            tiny_world.autonomous_system(1)
        with pytest.raises(UnknownEntityError):
            tiny_world.ixp("ixp-nope")
        with pytest.raises(UnknownEntityError):
            tiny_world.interface("203.0.113.1")

    def test_membership_lookup_by_interface(self, tiny_world):
        membership = tiny_world.memberships[0]
        assert tiny_world.membership_for_interface(membership.interface_ip) is membership

    def test_members_of_unknown_ixp_raises(self, tiny_world):
        with pytest.raises(UnknownEntityError):
            tiny_world.members_of("ixp-999")

    def test_largest_ixps_ordering(self, tiny_world):
        largest = tiny_world.largest_ixps(3)
        sizes = [len(tiny_world.members_of(ixp.ixp_id)) for ixp in largest]
        assert sizes == sorted(sizes, reverse=True)

    def test_active_membership_filtering(self, tiny_world):
        all_members = tiny_world.memberships
        active = tiny_world.active_memberships()
        departed = [m for m in all_members if m.departed_month is not None]
        assert len(active) == len(all_members) - len(departed)

    def test_validate_passes_on_generated_world(self, tiny_world):
        tiny_world.validate()

    def test_validate_detects_corruption(self, tiny_world):
        # Corrupt a copy of one membership: point it at a facility that does
        # not match its router's location.
        world = WorldGenerator(GeneratorConfig.tiny(seed=77)).generate()
        membership = world.memberships[0]
        other_facility = next(
            f for f in world.facilities
            if f != world.router(membership.router_id).facility_id
        )
        membership.member_facility_id = other_facility
        with pytest.raises(TopologyError):
            world.validate()


class TestGeneratorDeterminism:
    def test_same_seed_same_world(self):
        config = GeneratorConfig.tiny(seed=123)
        world_a = WorldGenerator(config).generate()
        world_b = WorldGenerator(config).generate()
        assert world_a.summary() == world_b.summary()
        assert sorted(world_a.interfaces) == sorted(world_b.interfaces)
        assert [m.interface_ip for m in world_a.memberships] == [
            m.interface_ip for m in world_b.memberships
        ]

    def test_different_seed_different_world(self, tiny_world, tiny_world_alt):
        assert sorted(tiny_world.interfaces) != sorted(tiny_world_alt.interfaces)


class TestGeneratorStructure:
    def test_entity_counts_match_config(self, tiny_world):
        config = GeneratorConfig.tiny(seed=7)
        assert len(tiny_world.ixps) == config.n_ixps
        assert len(tiny_world.resellers) == config.n_resellers
        # ASes include the reseller carrier networks.
        assert len(tiny_world.ases) == config.n_ases + config.n_resellers

    def test_every_as_has_a_router(self, tiny_world):
        for asn in tiny_world.ases:
            assert tiny_world.routers_of_as(asn), f"AS{asn} has no router"

    def test_every_as_originates_prefixes(self, tiny_world):
        originated = set(tiny_world.routed_prefixes.values())
        assert originated == set(tiny_world.ases)

    def test_membership_interfaces_inside_peering_lan(self, tiny_world):
        for membership in tiny_world.memberships:
            lan = ipaddress.ip_network(tiny_world.ixp(membership.ixp_id).peering_lan)
            assert ipaddress.ip_address(membership.interface_ip) in lan

    def test_local_members_are_colocated(self, tiny_world):
        for membership in tiny_world.memberships:
            ixp = tiny_world.ixp(membership.ixp_id)
            if membership.connection is ConnectionKind.LOCAL:
                assert membership.member_facility_id in ixp.facility_ids

    def test_fractional_ports_only_via_resellers(self, tiny_world):
        for membership in tiny_world.memberships:
            ixp = tiny_world.ixp(membership.ixp_id)
            if membership.port_capacity_mbps < ixp.min_physical_capacity_mbps:
                assert membership.connection is ConnectionKind.REMOTE_RESELLER

    def test_reseller_connections_reference_existing_resellers(self, tiny_world):
        for membership in tiny_world.memberships:
            if membership.connection is ConnectionKind.REMOTE_RESELLER:
                assert membership.reseller_id in tiny_world.resellers

    def test_private_links_are_facility_consistent(self, tiny_world):
        for link in tiny_world.private_links:
            assert tiny_world.router(link.router_a).facility_id == link.facility_id
            assert tiny_world.router(link.router_b).facility_id == link.facility_id

    def test_transit_relationships_have_colocated_cross_connects(self, tiny_world):
        # Every customer/provider pair of a member AS should appear on at
        # least one private link (the facility cross-connect).
        linked_pairs = {
            frozenset((link.asn_a, link.asn_b)) for link in tiny_world.private_links
        }
        member_asns = {m.asn for m in tiny_world.memberships}
        missing = 0
        checked = 0
        for asn in member_asns:
            for provider in tiny_world.relationships.providers_of(asn):
                checked += 1
                if frozenset((asn, provider)) not in linked_pairs:
                    missing += 1
        assert checked > 0
        assert missing == 0


class TestGeneratorCalibration:
    def test_global_remote_share_is_paper_shaped(self, tiny_world):
        assert 0.15 <= tiny_world.remote_share() <= 0.45

    def test_largest_two_ixps_have_more_remote_members(self, tiny_world):
        top2 = tiny_world.largest_ixps(2)
        for ixp in top2:
            assert tiny_world.remote_share(ixp.ixp_id) >= 0.30

    def test_some_remote_peers_on_fractional_ports(self, tiny_world):
        remote = [m for m in tiny_world.active_memberships() if m.is_remote]
        fractional = [m for m in remote if m.port_capacity_mbps < CAPACITY_GE]
        assert 0.05 <= len(fractional) / len(remote) <= 0.55

    def test_wide_area_ixps_exist(self, tiny_world):
        wide = [
            ixp_id for ixp_id in tiny_world.ixps
            if tiny_world.max_ixp_facility_distance_km(ixp_id) > 50.0
        ]
        assert wide

    def test_join_months_spread_over_window(self, tiny_world):
        months = {m.joined_month for m in tiny_world.memberships}
        assert len(months) > 1

    def test_departed_memberships_exist(self, tiny_world):
        assert any(m.departed_month is not None for m in tiny_world.memberships)


class TestEmptyWorld:
    def test_empty_world_validates(self):
        World(seed=0).validate()

    def test_remote_share_of_empty_world_is_zero(self):
        assert World(seed=0).remote_share() == 0.0
