"""Unit tests for the five inference steps on hand-crafted scenarios."""

import pytest

from repro.config import InferenceConfig
from repro.core.baseline import RTTBaseline
from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTCampaignSummary, RTTMeasurementStep, RTTObservation
from repro.core.step3_colocation import ColocationRTTStep
from repro.core.step4_multi_ixp import MultiIXPRouterKind, MultiIXPRouterStep
from repro.core.step5_private_links import PrivateConnectivityStep
from repro.core.types import InferenceReport, InferenceStep, PeeringClassification
from repro.measurement.vantage import VantagePointKind
from repro.topology.entities import ConnectionKind
from repro.traixroute.detector import IXPCrossing, PrivateAdjacency

from tests.helpers import build_scenario, dual_city_scenario

IXP_ID = "ixp-ams-test"


class TestStep1PortCapacity:
    def test_fractional_port_inferred_remote(self):
        scenario = dual_city_scenario()
        report = InferenceReport()
        classified = PortCapacityStep(scenario.inputs()).run([IXP_ID], report)
        assert classified == 1
        assert report.classification_of(IXP_ID, "185.1.0.3") is PeeringClassification.REMOTE
        assert report.result_for(IXP_ID, "185.1.0.3").step is InferenceStep.PORT_CAPACITY

    def test_full_ports_left_unknown(self):
        scenario = dual_city_scenario()
        report = InferenceReport()
        PortCapacityStep(scenario.inputs()).run([IXP_ID], report)
        assert report.classification_of(IXP_ID, "185.1.0.1") is PeeringClassification.UNKNOWN
        assert report.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.UNKNOWN

    def test_all_interfaces_registered_even_without_data(self):
        scenario = dual_city_scenario()
        scenario.dataset.min_physical_capacity.clear()
        report = InferenceReport()
        classified = PortCapacityStep(scenario.inputs()).run([IXP_ID], report)
        assert classified == 0
        assert len(report) == 3

    def test_missing_port_capacity_skipped(self):
        scenario = dual_city_scenario()
        del scenario.dataset.port_capacities[(IXP_ID, 65003)]
        report = InferenceReport()
        assert PortCapacityStep(scenario.inputs()).run([IXP_ID], report) == 0


def _scenario_with_pings():
    """The dual-city scenario with a looking glass and ping series."""
    scenario = dual_city_scenario()
    ams_facility = scenario.world.facilities["fac-001"]
    ixp = scenario.world.ixps[IXP_ID]
    vp = scenario.add_vantage_point(ixp, ams_facility)
    scenario.add_route_server_series(vp, [0.3, 0.25, 0.4])
    scenario.add_ping_series(vp, "185.1.0.1", [0.4, 0.5, 0.3])          # local, same facility
    scenario.add_ping_series(vp, "185.1.0.2", [8.2, 8.6, 9.0])          # remote in Frankfurt
    scenario.add_ping_series(vp, "185.1.0.3", [1.3, 1.2, 1.6])          # remote in Rotterdam
    return scenario, vp


class TestStep2RTT:
    def test_min_rtt_extracted_per_interface(self):
        scenario, vp = _scenario_with_pings()
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        assert summary.observation_for(IXP_ID, "185.1.0.1").rtt_min_ms == pytest.approx(0.3)
        assert summary.observation_for(IXP_ID, "185.1.0.2").rtt_min_ms == pytest.approx(8.2)
        assert summary.usable_vps[vp.vp_id] is vp

    def test_ttl_filter_discards_inconsistent_replies(self):
        scenario, vp = _scenario_with_pings()
        scenario.add_ping_series(vp, "185.1.0.1", [0.1], reply_ttl=40)
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        # The 0.1 ms sample came with an implausible TTL and must be ignored.
        assert summary.observation_for(IXP_ID, "185.1.0.1").rtt_min_ms == pytest.approx(0.3)

    def test_management_lan_probe_discarded(self):
        scenario = dual_city_scenario()
        ams_facility = scenario.world.facilities["fac-001"]
        ixp = scenario.world.ixps[IXP_ID]
        probe = scenario.add_vantage_point(ixp, ams_facility,
                                           kind=VantagePointKind.ATLAS_PROBE)
        scenario.add_route_server_series(probe, [3.5, 4.0])
        scenario.add_ping_series(probe, "185.1.0.1", [4.1, 3.9])
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        assert probe.vp_id in summary.discarded_vps
        assert summary.observation_for(IXP_ID, "185.1.0.1") is None

    def test_lg_rounding_adjusts_lower_bound(self):
        scenario = dual_city_scenario()
        ams_facility = scenario.world.facilities["fac-001"]
        ixp = scenario.world.ixps[IXP_ID]
        vp = scenario.add_vantage_point(ixp, ams_facility, rounds_rtt_up=True)
        scenario.add_route_server_series(vp, [1.0])
        scenario.add_ping_series(vp, "185.1.0.2", [9.0, 10.0])
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        observation = summary.observation_for(IXP_ID, "185.1.0.2")
        assert observation.rtt_min_ms == pytest.approx(9.0)
        assert observation.rtt_lower_ms == pytest.approx(8.0)

    def test_smallest_rtt_across_vps_is_kept(self):
        scenario, _ = _scenario_with_pings()
        ixp = scenario.world.ixps[IXP_ID]
        second_vp = scenario.add_vantage_point(ixp, scenario.world.facilities["fac-001"],
                                               kind=VantagePointKind.ATLAS_PROBE)
        scenario.add_route_server_series(second_vp, [0.2])
        scenario.add_ping_series(second_vp, "185.1.0.2", [7.0])
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        assert summary.observation_for(IXP_ID, "185.1.0.2").rtt_min_ms == pytest.approx(7.0)

    def test_response_rate_accounting(self):
        scenario, vp = _scenario_with_pings()
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        assert summary.queried_per_vp[vp.vp_id] == 3
        assert summary.response_rate(vp.vp_id) == pytest.approx(1.0)

    def test_min_rtt_tie_breaking_is_series_order_independent(self):
        """On equal rtt_min_ms the smaller rtt_lower_ms (then vp_id) wins.

        The seed kept whichever tying series happened to come first in
        ``ping.series``, so permuting the list changed the pipeline output
        and a rounding LG's extra millisecond of ring slack could be lost.
        """
        import itertools

        scenario = dual_city_scenario()
        ixp = scenario.world.ixps[IXP_ID]
        ams = scenario.world.facilities["fac-001"]
        atlas = scenario.add_vantage_point(ixp, ams, kind=VantagePointKind.ATLAS_PROBE)
        # Distinct facility so the two VPs get distinct vp_ids; the LG's
        # lexicographically *larger* id proves rtt_lower_ms outranks vp_id.
        lg = scenario.add_vantage_point(ixp, scenario.world.facilities["fac-003"],
                                        rounds_rtt_up=True)
        scenario.add_route_server_series(atlas, [0.3])
        scenario.add_route_server_series(lg, [0.4])
        # Both VPs measure the same 9.0 ms minimum; the rounding LG carries
        # rtt_lower_ms = 8.0 and must win regardless of series order.
        scenario.add_ping_series(atlas, "185.1.0.2", [9.0, 9.4])
        scenario.add_ping_series(lg, "185.1.0.2", [9.0, 10.0])

        winners = set()
        for permutation in itertools.permutations(list(scenario.ping_result.series)):
            scenario.ping_result.series[:] = permutation
            scenario.ping_result.invalidate_caches()
            summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
            observation = summary.observation_for(IXP_ID, "185.1.0.2")
            winners.add((observation.vp_id, observation.rtt_min_ms, observation.rtt_lower_ms))
        assert winners == {(lg.vp_id, 9.0, 8.0)}

    def test_min_rtt_tie_on_lower_bound_prefers_lexicographic_vp(self):
        scenario = dual_city_scenario()
        ixp = scenario.world.ixps[IXP_ID]
        ams = scenario.world.facilities["fac-001"]
        vp_b = scenario.add_vantage_point(ixp, scenario.world.facilities["fac-002"])
        vp_a = scenario.add_vantage_point(ixp, ams)
        assert vp_a.vp_id < vp_b.vp_id
        scenario.add_route_server_series(vp_a, [0.3])
        scenario.add_route_server_series(vp_b, [0.3])
        for vp in (vp_b, vp_a):
            scenario.add_ping_series(vp, "185.1.0.2", [9.0])
        summary = RTTMeasurementStep(scenario.inputs()).run([IXP_ID])
        assert summary.observation_for(IXP_ID, "185.1.0.2").vp_id == vp_a.vp_id


class TestStep3Colocation:
    def _run(self, scenario):
        inputs = scenario.inputs()
        report = InferenceReport()
        PortCapacityStep(inputs).run([IXP_ID], report)
        summary = RTTMeasurementStep(inputs).run([IXP_ID])
        feasible = ColocationRTTStep(inputs).run([IXP_ID], report, summary)
        return report, feasible

    def test_local_member_inferred_local(self):
        scenario, _ = _scenario_with_pings()
        report, _ = self._run(scenario)
        assert report.classification_of(IXP_ID, "185.1.0.1") is PeeringClassification.LOCAL

    def test_far_remote_member_inferred_remote(self):
        scenario, _ = _scenario_with_pings()
        report, _ = self._run(scenario)
        assert report.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.REMOTE

    def test_nearby_remote_member_inferred_remote_via_colocation(self):
        # The Rotterdam reseller customer is within ~1.5 ms of the IXP, yet its
        # only feasible facility is not an IXP facility.
        scenario, _ = _scenario_with_pings()
        report, _ = self._run(scenario)
        assert report.classification_of(IXP_ID, "185.1.0.3") is PeeringClassification.REMOTE

    def test_member_without_facility_data_stays_unknown(self):
        scenario, _ = _scenario_with_pings()
        del scenario.dataset.as_facilities[65002]
        # At ~8 ms the ring still (barely) admits the Amsterdam facility, and
        # without colocation data for the member Step 3 must abstain — these
        # are exactly the cases handed over to Steps 4 and 5.
        report, feasible = self._run(scenario)
        assert report.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.UNKNOWN
        assert feasible[(IXP_ID, "185.1.0.2")].member_has_facility_data is False

    def test_member_without_facility_data_and_feasible_ixp_stays_unknown(self):
        scenario, _ = _scenario_with_pings()
        del scenario.dataset.as_facilities[65003]
        report, _ = self._run(scenario)
        # Rotterdam RTT (~1.3 ms) keeps the Amsterdam IXP facility feasible,
        # and with no member colocation data Step 3 must abstain.
        assert report.result_for(IXP_ID, "185.1.0.3").step is not InferenceStep.RTT_COLOCATION

    def test_wide_area_member_with_high_rtt_still_local(self):
        # A second IXP facility in Frankfurt makes the 8 ms member local there.
        scenario, _ = _scenario_with_pings()
        fra_facility = scenario.world.facilities["fac-002"]
        ixp = scenario.world.ixps[IXP_ID]
        ixp.facility_ids.add(fra_facility.facility_id)
        scenario.dataset.ixp_facilities[IXP_ID].add(fra_facility.facility_id)
        report, _ = self._run(scenario)
        assert report.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.LOCAL

    def test_feasible_analyses_returned_for_measured_interfaces(self):
        scenario, _ = _scenario_with_pings()
        _, feasible = self._run(scenario)
        assert set(feasible) == {(IXP_ID, "185.1.0.1"), (IXP_ID, "185.1.0.2"),
                                 (IXP_ID, "185.1.0.3")}

    def test_step1_classification_not_overwritten(self):
        scenario, _ = _scenario_with_pings()
        report, _ = self._run(scenario)
        # The Rotterdam member was already caught by Step 1 (fractional port).
        assert report.result_for(IXP_ID, "185.1.0.3").step is InferenceStep.PORT_CAPACITY


class TestBaseline:
    def test_baseline_misclassifies_nearby_remote(self):
        scenario, _ = _scenario_with_pings()
        inputs = scenario.inputs()
        summary = RTTMeasurementStep(inputs).run([IXP_ID])
        baseline = RTTBaseline(inputs).run([IXP_ID], summary)
        # 10 ms threshold: the Frankfurt member (8 ms) and the Rotterdam
        # member (1.3 ms) both end up "local" although they are remote.
        assert baseline.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.LOCAL
        assert baseline.classification_of(IXP_ID, "185.1.0.3") is PeeringClassification.LOCAL
        assert baseline.classification_of(IXP_ID, "185.1.0.1") is PeeringClassification.LOCAL

    def test_baseline_flags_far_members_with_low_threshold(self):
        scenario, _ = _scenario_with_pings()
        inputs = scenario.inputs()
        summary = RTTMeasurementStep(inputs).run([IXP_ID])
        baseline = RTTBaseline(inputs, InferenceConfig(rtt_baseline_threshold_ms=2.0)).run(
            [IXP_ID], summary)
        assert baseline.classification_of(IXP_ID, "185.1.0.2") is PeeringClassification.REMOTE


class TestStep4MultiIXP:
    def _two_ixp_scenario(self):
        """AS 65010 peers at two IXPs in different cities from one router."""
        scenario = build_scenario()
        ams = scenario.add_facility("Amsterdam")
        lon = scenario.add_facility("London")
        waw = scenario.add_facility("Warsaw")
        ixp_a = scenario.add_ixp("AMS", [ams], prefix="185.1.0.0/24")
        ixp_b = scenario.add_ixp("LON", [lon], prefix="185.2.0.0/24")

        scenario.add_as(65010, waw)
        router = scenario.add_router(65010, waw)
        scenario.add_membership(ixp_a, 65010, router, waw, interface_ip="185.1.0.10",
                                connection=ConnectionKind.REMOTE_LONG_CABLE)
        scenario.add_membership(ixp_b, 65010, router, waw, interface_ip="185.2.0.10",
                                connection=ConnectionKind.REMOTE_LONG_CABLE)
        scenario.add_backbone_interface(65010, router, "5.0.0.1")
        scenario.world.infrastructure_prefixes["5.0.0.0/22"] = 65010
        return scenario, ixp_a, ixp_b

    def _crossings(self, ixp_a, ixp_b):
        return [
            IXPCrossing(ixp_id=ixp_a.ixp_id, entry_ip="5.0.0.1", entry_asn=65010,
                        ixp_interface_ip="185.1.0.99", far_asn=65099, exit_ip="5.0.9.1"),
            IXPCrossing(ixp_id=ixp_b.ixp_id, entry_ip="5.0.0.1", entry_asn=65010,
                        ixp_interface_ip="185.2.0.99", far_asn=65099, exit_ip="5.0.9.1"),
        ]

    def test_multi_ixp_router_identified(self):
        scenario, ixp_a, ixp_b = self._two_ixp_scenario()
        step = MultiIXPRouterStep(scenario.inputs())
        routers = step.identify_routers(self._crossings(ixp_a, ixp_b))
        assert len(routers) == 1
        assert routers[0].asn == 65010
        assert routers[0].ixp_ids == {ixp_a.ixp_id, ixp_b.ixp_id}

    def test_remote_anchor_propagates_to_other_ixp(self):
        scenario, ixp_a, ixp_b = self._two_ixp_scenario()
        report = InferenceReport()
        report.ensure(ixp_a.ixp_id, "185.1.0.10", 65010)
        report.ensure(ixp_b.ixp_id, "185.2.0.10", 65010)
        # Anchor: already inferred remote at the Amsterdam IXP.
        report.classify(ixp_a.ixp_id, "185.1.0.10", 65010, PeeringClassification.REMOTE,
                        InferenceStep.RTT_COLOCATION)
        step = MultiIXPRouterStep(scenario.inputs())
        routers = step.run([ixp_a.ixp_id, ixp_b.ixp_id], report,
                           self._crossings(ixp_a, ixp_b))
        assert routers[0].kind is MultiIXPRouterKind.REMOTE
        assert report.classification_of(ixp_b.ixp_id, "185.2.0.10") is \
            PeeringClassification.REMOTE
        assert report.result_for(ixp_b.ixp_id, "185.2.0.10").step is \
            InferenceStep.MULTI_IXP_ROUTER

    def test_single_ixp_router_not_multi(self):
        scenario, ixp_a, ixp_b = self._two_ixp_scenario()
        step = MultiIXPRouterStep(scenario.inputs())
        crossings = self._crossings(ixp_a, ixp_b)[:1]
        assert step.identify_routers(crossings) == []

    def test_no_anchor_means_unclassified(self):
        scenario, ixp_a, ixp_b = self._two_ixp_scenario()
        report = InferenceReport()
        report.ensure(ixp_a.ixp_id, "185.1.0.10", 65010)
        report.ensure(ixp_b.ixp_id, "185.2.0.10", 65010)
        step = MultiIXPRouterStep(scenario.inputs())
        routers = step.run([ixp_a.ixp_id, ixp_b.ixp_id], report,
                           self._crossings(ixp_a, ixp_b))
        assert routers[0].kind is MultiIXPRouterKind.UNCLASSIFIED
        assert report.classification_of(ixp_b.ixp_id, "185.2.0.10") is \
            PeeringClassification.UNKNOWN


class TestStep5PrivateLinks:
    def _scenario(self):
        """AS 65020's private neighbours pin it inside the IXP facility."""
        scenario = build_scenario()
        ams = scenario.add_facility("Amsterdam")
        ixp = scenario.add_ixp("AMS", [ams], prefix="185.1.0.0/24")
        scenario.add_as(65020, ams)
        router = scenario.add_router(65020, ams)
        scenario.add_membership(ixp, 65020, router, ams, interface_ip="185.1.0.20")
        scenario.add_backbone_interface(65020, router, "5.0.0.1")
        # Two neighbours colocated in the Amsterdam facility.
        for offset, asn in enumerate((65021, 65022)):
            scenario.add_as(asn, ams)
        scenario.dataset.as_facilities[65021] = {ams.facility_id}
        scenario.dataset.as_facilities[65022] = {ams.facility_id}
        adjacencies = [
            PrivateAdjacency(near_ip="5.0.0.1", near_asn=65020, far_ip="5.0.4.1",
                             far_asn=65021),
            PrivateAdjacency(near_ip="5.0.0.1", near_asn=65020, far_ip="5.0.8.1",
                             far_asn=65022),
        ]
        return scenario, ixp, adjacencies

    def test_colocated_neighbours_vote_local(self):
        scenario, ixp, adjacencies = self._scenario()
        report = InferenceReport()
        report.ensure(ixp.ixp_id, "185.1.0.20", 65020)
        step = PrivateConnectivityStep(scenario.inputs())
        classified = step.run([ixp.ixp_id], report, adjacencies, [], {})
        assert classified == 1
        assert report.classification_of(ixp.ixp_id, "185.1.0.20") is \
            PeeringClassification.LOCAL

    def test_distant_neighbours_vote_remote(self):
        scenario, ixp, adjacencies = self._scenario()
        # Move both neighbours' observed presence to Warsaw.
        waw = scenario.add_facility("Warsaw")
        scenario.dataset.as_facilities[65021] = {waw.facility_id}
        scenario.dataset.as_facilities[65022] = {waw.facility_id}
        report = InferenceReport()
        report.ensure(ixp.ixp_id, "185.1.0.20", 65020)
        step = PrivateConnectivityStep(scenario.inputs())
        step.run([ixp.ixp_id], report, adjacencies, [], {})
        assert report.classification_of(ixp.ixp_id, "185.1.0.20") is \
            PeeringClassification.REMOTE

    def test_too_few_neighbours_abstains(self):
        scenario, ixp, adjacencies = self._scenario()
        report = InferenceReport()
        report.ensure(ixp.ixp_id, "185.1.0.20", 65020)
        step = PrivateConnectivityStep(scenario.inputs())
        classified = step.run([ixp.ixp_id], report, adjacencies[:1], [], {})
        assert classified == 0

    def test_already_inferred_interfaces_untouched(self):
        scenario, ixp, adjacencies = self._scenario()
        report = InferenceReport()
        report.classify(ixp.ixp_id, "185.1.0.20", 65020, PeeringClassification.REMOTE,
                        InferenceStep.PORT_CAPACITY)
        step = PrivateConnectivityStep(scenario.inputs())
        classified = step.run([ixp.ixp_id], report, adjacencies, [], {})
        assert classified == 0
        assert report.classification_of(ixp.ixp_id, "185.1.0.20") is \
            PeeringClassification.REMOTE

    def test_incoherent_vote_abstains(self):
        scenario, ixp, adjacencies = self._scenario()
        # Give both neighbours overlapping *and* huge facility footprints so
        # the vote includes an IXP facility but is too broad to be trusted.
        big = {scenario.add_facility("Paris").facility_id for _ in range(4)}
        big |= {scenario.add_facility("Berlin").facility_id for _ in range(4)}
        footprint = big | {"fac-001"}
        scenario.dataset.as_facilities[65021] = set(footprint)
        scenario.dataset.as_facilities[65022] = set(footprint)
        config = InferenceConfig(max_coherent_vote_facilities=3)
        report = InferenceReport()
        report.ensure(ixp.ixp_id, "185.1.0.20", 65020)
        step = PrivateConnectivityStep(scenario.inputs(), config)
        classified = step.run([ixp.ixp_id], report, adjacencies, [], {})
        assert classified == 0


class TestRTTSummaryIndex:
    def _obs(self, ixp_id, ip, rtt):
        return RTTObservation(ixp_id=ixp_id, interface_ip=ip, rtt_min_ms=rtt,
                              rtt_lower_ms=rtt, vp_id="vp-1")

    def test_observations_for_ixp_groups_by_ixp(self):
        summary = RTTCampaignSummary()
        summary.observations[("ixp-a", "185.1.0.1")] = self._obs("ixp-a", "185.1.0.1", 1.0)
        summary.observations[("ixp-b", "185.2.0.1")] = self._obs("ixp-b", "185.2.0.1", 2.0)
        assert [o.interface_ip for o in summary.observations_for_ixp("ixp-a")] == ["185.1.0.1"]
        assert summary.observations_for_ixp("ixp-z") == []

    def test_index_refreshes_on_new_keys_and_sees_replacements(self):
        summary = RTTCampaignSummary()
        key = ("ixp-a", "185.1.0.1")
        summary.observations[key] = self._obs("ixp-a", "185.1.0.1", 5.0)
        assert summary.observations_for_ixp("ixp-a")[0].rtt_min_ms == 5.0
        # In-place replacement under an existing key stays visible because
        # the index stores keys, not observation objects.
        summary.observations[key] = self._obs("ixp-a", "185.1.0.1", 1.0)
        assert summary.observations_for_ixp("ixp-a")[0].rtt_min_ms == 1.0
        # New keys trigger a rebuild via the size guard.
        summary.observations[("ixp-a", "185.1.0.2")] = self._obs("ixp-a", "185.1.0.2", 3.0)
        assert len(summary.observations_for_ixp("ixp-a")) == 2

    def test_delete_and_insert_at_same_size_never_crashes(self):
        summary = RTTCampaignSummary()
        summary.observations[("ixp-a", "185.1.0.1")] = self._obs("ixp-a", "185.1.0.1", 1.0)
        assert len(summary.observations_for_ixp("ixp-a")) == 1  # build the index
        del summary.observations[("ixp-a", "185.1.0.1")]
        summary.observations[("ixp-a", "185.1.0.2")] = self._obs("ixp-a", "185.1.0.2", 2.0)
        # Same size: the stale index must degrade gracefully, not KeyError.
        assert summary.observations_for_ixp("ixp-a") == []
        summary.invalidate_caches()
        assert [o.interface_ip for o in summary.observations_for_ixp("ixp-a")] == ["185.1.0.2"]
