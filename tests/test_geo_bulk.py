"""Bit-exactness of the bulk geometry kernel against the scalar solver.

``geodesic_distances_km`` is the vectorised prebuild path behind
``GeoDistanceIndex.prebuild``; its whole contract is **exact** equality with
the per-call ``geodesic_distance_km`` — the memo dicts it fills are the same
dicts the lazy path fills, and the engine's cache-hit proofs assume a
prebuilt index is observationally indistinguishable from a cold one.  So
every comparison here is ``==`` on floats, never ``approx``.

The grid deliberately covers the kernel's hard regions: identical points
(the coincident short-circuit), equatorial pairs (``cos_sq_alpha == 0``),
near-antipodal pairs (slow or failed convergence, haversine fallback),
signed-zero latitudes (the per-latitude setup table must not collapse
``-0.0`` into ``0.0``), swapped duplicates (canonical endpoint ordering)
and tiny separations (convergence on the first iteration).

Everything runs twice — once with numpy present and once with the import
forced away (``coordinates._np = None``), because CI runs the suite without
numpy and the pure-Python fallback must agree with the scalar solver too.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import coordinates
from repro.geo.coordinates import (
    GeoPoint,
    geodesic_distance_km,
    geodesic_distances_km,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, latitude=latitudes, longitude=longitudes)


def _edge_case_pairs() -> list[tuple[GeoPoint, GeoPoint]]:
    """A deterministic grid concentrated on the kernel's hard regions."""
    rng = random.Random(20260807)
    pairs: list[tuple[GeoPoint, GeoPoint]] = []
    # Broad seeded coverage.
    for _ in range(300):
        pairs.append((
            GeoPoint(rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)),
            GeoPoint(rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)),
        ))
    # Identical points: the coincident short-circuit.
    for _ in range(20):
        point = GeoPoint(rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0))
        pairs.append((point, point))
    # Equatorial pairs: cos_sq_alpha == 0 guards the 0/0 division.
    for _ in range(40):
        pairs.append((
            GeoPoint(0.0, rng.uniform(-180.0, 180.0)),
            GeoPoint(0.0, rng.uniform(-180.0, 180.0)),
        ))
    # Near-antipodal and exactly antipodal: slow/failed convergence.
    for _ in range(40):
        lat = rng.uniform(-89.0, 89.0)
        lon = rng.uniform(-179.0, 179.0)
        wobble_lat = rng.uniform(-0.01, 0.01)
        wobble_lon = rng.uniform(-0.01, 0.01)
        anti_lon = lon + 180.0 if lon < 0.0 else lon - 180.0
        pairs.append((
            GeoPoint(lat, lon),
            GeoPoint(
                max(-90.0, min(90.0, -lat + wobble_lat)),
                max(-180.0, min(180.0, anti_lon + wobble_lon)),
            ),
        ))
    pairs.append((GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0)))
    pairs.append((GeoPoint(0.0, 0.0), GeoPoint(0.0, 179.999999)))
    pairs.append((GeoPoint(90.0, 0.0), GeoPoint(-90.0, 0.0)))
    # Tiny separations: first-iteration convergence.
    for _ in range(30):
        lat = rng.uniform(-89.0, 89.0)
        lon = rng.uniform(-179.0, 179.0)
        pairs.append((
            GeoPoint(lat, lon),
            GeoPoint(lat + rng.uniform(-1e-7, 1e-7),
                     lon + rng.uniform(-1e-7, 1e-7)),
        ))
    # Signed zero: -0.0 and 0.0 are distinct setup-table rows.
    pairs.append((GeoPoint(-0.0, 10.0), GeoPoint(0.0, 20.0)))
    pairs.append((GeoPoint(0.0, -0.0), GeoPoint(-0.0, 0.0)))
    # Swapped duplicates: the canonical endpoint ordering must make the
    # bulk result independent of argument order, like the scalar path.
    for a, b in rng.sample(pairs, 100):
        pairs.append((b, a))
    return pairs


@pytest.fixture(params=["numpy", "fallback"])
def kernel_mode(request, monkeypatch):
    """Run each test with the vectorised kernel and with the scalar fallback."""
    if request.param == "numpy":
        if coordinates._np is None:
            pytest.skip("numpy not installed; vectorised path unavailable")
    else:
        monkeypatch.setattr(coordinates, "_np", None)
    return request.param


class TestBulkMatchesScalar:
    def test_edge_case_grid_is_bit_identical(self, kernel_mode):
        pairs = _edge_case_pairs()
        bulk = geodesic_distances_km(pairs)
        assert len(bulk) == len(pairs)
        for (a, b), distance in zip(pairs, bulk):
            assert distance == geodesic_distance_km(a, b), (a, b)

    def test_empty_input(self, kernel_mode):
        assert geodesic_distances_km([]) == []

    def test_swapped_arguments_agree_within_one_call(self, kernel_mode):
        a = GeoPoint(52.37, 4.89)
        b = GeoPoint(44.43, 26.10)
        forward, backward = geodesic_distances_km([(a, b), (b, a)])
        assert forward == backward
        assert forward == geodesic_distance_km(a, b)

    @given(pair_list=st.lists(st.tuples(points, points), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_random_batches_are_bit_identical(self, pair_list):
        bulk = geodesic_distances_km(pair_list)
        scalar = [geodesic_distance_km(a, b) for a, b in pair_list]
        assert bulk == scalar

    def test_fallback_matches_vectorised(self, monkeypatch):
        if coordinates._np is None:
            pytest.skip("numpy not installed; nothing to cross-check")
        pairs = _edge_case_pairs()
        vectorised = geodesic_distances_km(pairs)
        monkeypatch.setattr(coordinates, "_np", None)
        assert geodesic_distances_km(pairs) == vectorised
