"""Unit tests for the prefix2as mapping and MIDAR-like alias resolution."""

import pytest

from repro.alias.midar import AliasResolver
from repro.datasources.prefix2as import Prefix2ASMap, Prefix2ASSource


class TestPrefix2ASMap:
    def test_exact_lookup(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/24", 65001)
        assert mapping.lookup("100.0.0.17") == 65001

    def test_longest_prefix_wins(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/16", 65001)
        mapping.add("100.0.1.0/24", 65002)
        assert mapping.lookup("100.0.1.5") == 65002
        assert mapping.lookup("100.0.2.5") == 65001

    def test_miss_returns_none(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/24", 65001)
        assert mapping.lookup("203.0.113.1") is None

    def test_len_counts_prefixes(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/24", 65001)
        mapping.add("100.0.1.0/24", 65002)
        assert len(mapping) == 2

    def test_host_route_lookup(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.5/32", 65005)
        assert mapping.lookup("100.0.0.5") == 65005
        assert mapping.lookup("100.0.0.6") is None

    def test_nested_prefix_wins_regardless_of_insertion_order(self):
        broad_first = Prefix2ASMap()
        broad_first.add("100.0.0.0/8", 65001)
        broad_first.add("100.0.1.0/24", 65002)
        assert broad_first.lookup("100.0.1.5") == 65002
        assert broad_first.lookup("100.9.0.5") == 65001

        nested_first = Prefix2ASMap()
        nested_first.add("100.0.1.0/24", 65002)
        nested_first.add("100.0.0.0/8", 65001)
        assert nested_first.lookup("100.0.1.5") == 65002
        assert nested_first.lookup("100.9.0.5") == 65001

    def test_add_after_lookup_rebuilds_the_index(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/8", 65001)
        assert mapping.lookup("100.0.1.5") == 65001
        mapping.add("100.0.1.0/24", 65002)
        assert mapping.lookup("100.0.1.5") == 65002

    def test_re_adding_a_prefix_overwrites_the_asn(self):
        mapping = Prefix2ASMap()
        mapping.add("100.0.0.0/24", 65001)
        mapping.add("100.0.0.0/24", 65009)
        assert mapping.lookup("100.0.0.1") == 65009
        assert len(mapping) == 1


class TestPrefix2ASSource:
    def test_snapshot_maps_routed_and_infrastructure_space(self, tiny_world):
        mapping = Prefix2ASSource(tiny_world).snapshot()
        # Routed prefixes resolve to their originating AS.
        prefix, asn = next(iter(tiny_world.routed_prefixes.items()))
        probe_ip = prefix.split("/")[0].rsplit(".", 1)[0] + ".1"
        assert mapping.lookup(probe_ip) == asn
        # Backbone interfaces resolve to the router owner.
        router = next(iter(tiny_world.routers.values()))
        backbone = [ip for ip in router.interface_ips if ip in tiny_world.interfaces
                    and tiny_world.interfaces[ip].kind.value != "ixp-lan"]
        if backbone:
            assert mapping.lookup(backbone[0]) == router.asn

    def test_snapshot_size(self, tiny_world):
        mapping = Prefix2ASSource(tiny_world).snapshot()
        expected = len(tiny_world.routed_prefixes) + len(tiny_world.infrastructure_prefixes)
        assert len(mapping) == expected


class TestAliasResolver:
    def test_groups_interfaces_of_same_router(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=0.0)
        router = max(tiny_world.routers.values(), key=lambda r: len(r.interface_ips))
        result = resolver.resolve(set(router.interface_ips))
        assert result.group_of(router.interface_ips[0]) == frozenset(router.interface_ips)

    def test_does_not_merge_different_routers(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=0.0)
        routers = list(tiny_world.routers.values())[:2]
        ips = {routers[0].interface_ips[0], routers[1].interface_ips[0]}
        result = resolver.resolve(ips)
        assert not result.same_router(routers[0].interface_ips[0], routers[1].interface_ips[0])

    def test_unknown_ips_become_singletons(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=0.0)
        result = resolver.resolve({"203.0.113.1"})
        assert result.group_of("203.0.113.1") == frozenset({"203.0.113.1"})

    def test_full_miss_rate_yields_only_singletons(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=1.0)
        router = max(tiny_world.routers.values(), key=lambda r: len(r.interface_ips))
        result = resolver.resolve(set(router.interface_ips))
        assert all(len(group) == 1 for group in result.groups)

    def test_miss_rate_is_persistent_across_calls(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=0.3)
        router = max(tiny_world.routers.values(), key=lambda r: len(r.interface_ips))
        ips = set(router.interface_ips)
        first = resolver.resolve(ips)
        second = resolver.resolve(ips)
        assert sorted(map(sorted, first.groups)) == sorted(map(sorted, second.groups))

    def test_same_router_is_reflexive(self, tiny_world):
        resolver = AliasResolver(tiny_world, miss_rate=0.0)
        result = resolver.resolve(set())
        assert result.same_router("1.2.3.4", "1.2.3.4")

    def test_invalid_miss_rate_rejected(self, tiny_world):
        with pytest.raises(ValueError):
            AliasResolver(tiny_world, miss_rate=1.5)
