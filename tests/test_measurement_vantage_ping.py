"""Unit tests for vantage-point planning and ping campaigns."""

import pytest

from repro.config import CampaignConfig
from repro.exceptions import MeasurementError
from repro.measurement.ping import PingCampaign
from repro.measurement.results import PingCampaignResult, PingSeries
from repro.measurement.vantage import VantagePointKind, VantagePointPlanner


@pytest.fixture(scope="module")
def plan(tiny_world):
    planner = VantagePointPlanner(tiny_world, CampaignConfig())
    return planner.plan(sorted(tiny_world.ixps))


class TestVantagePlanning:
    def test_plan_covers_every_requested_ixp(self, plan, tiny_world):
        assert set(plan) == set(tiny_world.ixps)

    def test_plan_is_deterministic(self, tiny_world):
        config = CampaignConfig()
        first = VantagePointPlanner(tiny_world, config).plan(sorted(tiny_world.ixps))
        second = VantagePointPlanner(tiny_world, config).plan(sorted(tiny_world.ixps))
        assert {k: [vp.vp_id for vp in v] for k, v in first.items()} == {
            k: [vp.vp_id for vp in v] for k, v in second.items()}

    def test_vantage_points_sit_in_ixp_facilities(self, plan, tiny_world):
        for ixp_id, vps in plan.items():
            facilities = tiny_world.ixp(ixp_id).facility_ids
            for vp in vps:
                assert vp.facility_id in facilities
                assert vp.ixp_id == ixp_id

    def test_lg_presence_rate_zero_removes_all_lgs(self, tiny_world):
        config = CampaignConfig(lg_presence_rate=0.0)
        plan = VantagePointPlanner(tiny_world, config).plan(sorted(tiny_world.ixps))
        kinds = {vp.kind for vps in plan.values() for vp in vps}
        assert VantagePointKind.LOOKING_GLASS not in kinds

    def test_internal_plan_guarantees_one_vp_per_ixp(self, tiny_world):
        planner = VantagePointPlanner(tiny_world, CampaignConfig())
        internal = planner.plan_internal(sorted(tiny_world.ixps))
        assert set(internal) == set(tiny_world.ixps)
        for ixp_id, vp in internal.items():
            assert vp.is_looking_glass
            assert not vp.rounds_rtt_up
            assert vp.facility_id in tiny_world.ixp(ixp_id).facility_ids

    def test_management_lan_probes_carry_extra_rtt(self, tiny_world):
        config = CampaignConfig(atlas_management_lan_rate=1.0, max_atlas_probes_per_ixp=3,
                                atlas_dead_probe_rate=0.0)
        plan = VantagePointPlanner(tiny_world, config).plan(sorted(tiny_world.ixps))
        probes = [vp for vps in plan.values() for vp in vps
                  if vp.kind is VantagePointKind.ATLAS_PROBE]
        assert probes
        assert all(vp.in_management_lan and vp.management_extra_rtt_ms > 0 for vp in probes)


class TestPingCampaign:
    def test_requires_at_least_one_ixp(self, tiny_world):
        with pytest.raises(MeasurementError):
            PingCampaign(tiny_world).run([])

    def test_control_campaign_measures_every_member(self, tiny_world):
        ixp = tiny_world.largest_ixps(1)[0]
        result = PingCampaign(tiny_world).run_control([ixp.ixp_id])
        queried = result.queried_interfaces(ixp.ixp_id)
        members = {m.interface_ip for m in tiny_world.active_memberships(ixp.ixp_id)}
        assert queried == members

    def test_control_campaign_local_members_are_fast(self, tiny_world):
        ixp = tiny_world.largest_ixps(1)[0]
        result = PingCampaign(tiny_world).run_control([ixp.ixp_id])
        local_ips = {m.interface_ip for m in tiny_world.active_memberships(ixp.ixp_id)
                     if not m.is_remote}
        slow_locals = 0
        measured = 0
        for series in result.series_for_ixp(ixp.ixp_id):
            if series.target_ip in local_ips and series.responded:
                measured += 1
                if series.min_rtt() > 2.0:
                    slow_locals += 1
        assert measured > 0
        assert slow_locals / measured < 0.25

    def test_rounds_respected(self, tiny_world):
        config = CampaignConfig(ping_rounds=5)
        ixp = tiny_world.largest_ixps(1)[0]
        result = PingCampaign(tiny_world, config).run_control([ixp.ixp_id])
        for series in result.series:
            assert len(series.samples) <= 5

    def test_route_server_series_present_per_vp(self, tiny_world):
        ixp = tiny_world.largest_ixps(1)[0]
        result = PingCampaign(tiny_world).run_control([ixp.ixp_id])
        for vp_id in result.vantage_points:
            assert result.route_server_series_for_vp(vp_id) is not None

    def test_dead_probes_never_respond(self, tiny_world):
        config = CampaignConfig(atlas_dead_probe_rate=1.0, lg_presence_rate=0.0,
                                max_atlas_probes_per_ixp=2)
        campaign = PingCampaign(tiny_world, config)
        ixp = tiny_world.largest_ixps(1)[0]
        result = campaign.run([ixp.ixp_id])
        assert all(not series.responded for series in result.series)

    def test_lg_rounding_produces_integer_rtts(self, tiny_world):
        config = CampaignConfig(lg_integer_rounding_rate=1.0, lg_presence_rate=1.0,
                                max_atlas_probes_per_ixp=0)
        campaign = PingCampaign(tiny_world, config)
        ixp = tiny_world.largest_ixps(1)[0]
        result = campaign.run([ixp.ixp_id])
        for series in result.series:
            for sample in series.samples:
                assert sample.rtt_ms == int(sample.rtt_ms)
                assert sample.rtt_ms >= 1.0

    def test_remote_members_have_higher_rtts_than_local(self, tiny_world):
        ixp = tiny_world.largest_ixps(1)[0]
        result = PingCampaign(tiny_world).run_control([ixp.ixp_id])
        remote_ips = {m.interface_ip for m in tiny_world.active_memberships(ixp.ixp_id)
                      if m.is_remote}
        local, remote = [], []
        for series in result.series_for_ixp(ixp.ixp_id):
            if not series.responded:
                continue
            (remote if series.target_ip in remote_ips else local).append(series.min_rtt())
        assert local and remote
        assert sorted(remote)[len(remote) // 2] > sorted(local)[len(local) // 2]


class TestPingResultIndexes:
    def _result(self):
        result = PingCampaignResult()
        result.series.append(PingSeries(vp_id="vp-1", ixp_id="ixp-a", target_ip="185.1.0.1"))
        result.series.append(PingSeries(vp_id="vp-2", ixp_id="ixp-a", target_ip="185.1.0.2"))
        result.route_server_series.append(
            PingSeries(vp_id="vp-1", ixp_id="ixp-a", target_ip="185.1.0.250"))
        return result

    def test_indexed_accessors_match_linear_semantics(self):
        result = self._result()
        assert [s.target_ip for s in result.series_for_vp("vp-1")] == ["185.1.0.1"]
        assert len(result.series_for_ixp("ixp-a")) == 2
        assert result.series_for_ixp("ixp-z") == []
        assert result.route_server_series_for_vp("vp-1").target_ip == "185.1.0.250"
        assert result.route_server_series_for_vp("vp-9") is None

    def test_route_server_retries_merge_into_one_population(self):
        from repro.measurement.results import PingSample

        result = self._result()
        first = result.route_server_series[0]
        first.samples = [PingSample(rtt_ms=0.4, reply_ttl=63)]
        retry = PingSeries(vp_id="vp-1", ixp_id="ixp-a", target_ip="185.1.0.250")
        retry.samples = [PingSample(rtt_ms=0.2, reply_ttl=63), PingSample(rtt_ms=0.5, reply_ttl=63)]
        result.route_server_series.append(retry)
        merged = result.route_server_series_for_vp("vp-1")
        # A VP's control samples are one population: a retried series must
        # not be silently ignored.
        assert [s.rtt_ms for s in merged.samples] == [0.4, 0.2, 0.5]
        assert merged.min_rtt() == pytest.approx(0.2)
        # The merge is a copy; the recorded series stay untouched.
        assert [s.rtt_ms for s in first.samples] == [0.4]
        assert [s.rtt_ms for s in retry.samples] == [0.2, 0.5]

    def test_unresponsive_first_control_series_rescued_by_retry(self):
        from repro.measurement.results import PingSample

        result = PingCampaignResult()
        dead = PingSeries(vp_id="vp-1", ixp_id="ixp-a", target_ip="185.1.0.250")
        result.route_server_series.append(dead)
        assert not result.route_server_series_for_vp("vp-1").responded
        retry = PingSeries(vp_id="vp-1", ixp_id="ixp-a", target_ip="185.1.0.250")
        retry.samples = [PingSample(rtt_ms=0.3, reply_ttl=63)]
        result.route_server_series.append(retry)
        assert result.route_server_series_for_vp("vp-1").responded

    def test_indexes_refresh_after_appends(self):
        result = self._result()
        assert len(result.series_for_vp("vp-2")) == 1  # build the indexes
        result.series.append(PingSeries(vp_id="vp-2", ixp_id="ixp-b", target_ip="185.2.0.1"))
        result.route_server_series.append(
            PingSeries(vp_id="vp-2", ixp_id="ixp-b", target_ip="185.2.0.250"))
        assert len(result.series_for_vp("vp-2")) == 2
        assert [s.target_ip for s in result.series_for_ixp("ixp-b")] == ["185.2.0.1"]
        assert result.route_server_series_for_vp("vp-2").target_ip == "185.2.0.250"
