"""Tests for the step-graph execution engine (equivalence, fingerprints, reuse).

The engine's contract is that decomposing the pipeline into cached,
fingerprint-keyed step nodes changes *nothing* about the results: the
assembled report must be bit-identical to the seed monolithic path, cache
reuse must happen exactly when a scenario leaves a step's declared config
fields unchanged, and staleness must propagate transitively to dependent
steps.
"""

from __future__ import annotations

import pytest

from repro.config import InferenceConfig, config_fingerprint
from repro.core.baseline import RTTBaseline
from repro.core.engine import (
    STEP_GRAPH,
    PipelineEngine,
    StepResultCache,
    StepScope,
    SweepRunner,
)
from repro.core.pipeline import RemotePeeringPipeline
from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTMeasurementStep
from repro.core.step3_colocation import ColocationRTTStep
from repro.core.step4_multi_ixp import MultiIXPRouterStep
from repro.core.step5_private_links import PrivateConnectivityStep
from repro.core.types import InferenceReport
from repro.exceptions import ConfigurationError, InferenceError
from repro.traixroute.detector import CrossingDetector

from tests.helpers import dual_city_scenario

IXP_ID = "ixp-ams-test"


def _monolithic_run(inputs, config, ixp_ids, *, delay_model=None, geo_index=None):
    """The seed single-pass pipeline, kept as the equivalence reference."""
    from repro.geo.delay_model import DelayModel

    delay_model = delay_model or DelayModel()
    geo_index = geo_index if geo_index is not None else inputs.geo_index
    report = InferenceReport()
    if config.enable_step1_port_capacity:
        PortCapacityStep(inputs).run(ixp_ids, report)
    else:
        for ixp_id in ixp_ids:
            for interface_ip, asn in inputs.dataset.interfaces_of_ixp(ixp_id).items():
                report.ensure(ixp_id, interface_ip, asn)
    rtt_summary = RTTMeasurementStep(inputs, config).run(ixp_ids)
    feasible = {}
    if config.enable_step3_colocation_rtt:
        feasible = ColocationRTTStep(inputs, config, delay_model,
                                     geo_index=geo_index).run(ixp_ids, report, rtt_summary)
    detector = CrossingDetector(inputs.dataset, inputs.prefix2as)
    crossings = detector.detect_corpus(inputs.corpus)
    adjacencies = detector.private_adjacencies_corpus(inputs.corpus)
    routers = []
    if config.enable_step4_multi_ixp:
        routers = MultiIXPRouterStep(inputs, config, geo_index=geo_index).run(
            ixp_ids, report, crossings)
    if config.enable_step5_private_links:
        PrivateConnectivityStep(inputs, config, geo_index=geo_index).run(
            ixp_ids, report, adjacencies, routers, feasible)
    baseline = RTTBaseline(inputs, config).run(ixp_ids, rtt_summary)
    return report, baseline, rtt_summary, feasible, crossings, adjacencies, routers


def _assert_equivalent(outcome, reference) -> None:
    report, baseline, rtt_summary, feasible, crossings, adjacencies, routers = reference
    # Bit-identical reports, including insertion order.
    assert outcome.report == report
    assert list(outcome.report.results) == list(report.results)
    assert outcome.baseline_report == baseline
    assert outcome.rtt_summary.observations == rtt_summary.observations
    assert outcome.rtt_summary.usable_vps == rtt_summary.usable_vps
    assert outcome.rtt_summary.discarded_vps == rtt_summary.discarded_vps
    assert outcome.rtt_summary.queried_per_vp == rtt_summary.queried_per_vp
    assert outcome.rtt_summary.responsive_per_vp == rtt_summary.responsive_per_vp
    assert outcome.feasible.keys() == feasible.keys()
    for key, analysis in outcome.feasible.items():
        expected = feasible[key]
        assert analysis.ring == expected.ring
        assert analysis.feasible_ixp_facilities == expected.feasible_ixp_facilities
        assert analysis.feasible_member_facilities == expected.feasible_member_facilities
        assert analysis.classification is expected.classification
    assert outcome.crossings == crossings
    assert outcome.private_adjacencies == adjacencies
    assert [(r.asn, r.interface_ips, r.ixp_ids, r.kind) for r in outcome.multi_ixp_routers] \
        == [(r.asn, r.interface_ips, r.ixp_ids, r.kind) for r in routers]


def _scenario_with_vp():
    scenario = dual_city_scenario()
    ixp = scenario.world.ixps[IXP_ID]
    vp = scenario.add_vantage_point(ixp, scenario.world.facilities["fac-001"])
    scenario.add_route_server_series(vp, [0.3])
    scenario.add_ping_series(vp, "185.1.0.1", [0.4, 0.5])
    scenario.add_ping_series(vp, "185.1.0.2", [8.3, 8.8])
    scenario.add_ping_series(vp, "185.1.0.3", [1.4, 1.2])
    return scenario


class TestEngineEquivalence:
    def test_scenario_matches_monolithic_path(self):
        scenario = _scenario_with_vp()
        inputs = scenario.inputs()
        config = InferenceConfig()
        outcome = RemotePeeringPipeline(inputs, config).run([IXP_ID])
        reference = _monolithic_run(inputs, config, [IXP_ID])
        _assert_equivalent(outcome, reference)
        assert outcome.report.inferred(), "equivalence must cover real classifications"

    @pytest.mark.parametrize("overrides", [
        {},
        {"enable_step1_port_capacity": False},
        {"enable_step3_colocation_rtt": False},
        {"enable_step4_multi_ixp": False, "enable_step5_private_links": False},
    ])
    def test_scenario_matches_under_ablations(self, overrides):
        from dataclasses import replace
        scenario = _scenario_with_vp()
        inputs = scenario.inputs()
        config = replace(InferenceConfig(), **overrides)
        outcome = RemotePeeringPipeline(inputs, config).run([IXP_ID])
        reference = _monolithic_run(inputs, config, [IXP_ID])
        _assert_equivalent(outcome, reference)

    def test_generated_world_matches_monolithic_path(self, small_study, small_outcome):
        """The engine-backed study outcome equals the seed path on a real world."""
        reference = _monolithic_run(
            small_study.inputs, small_study.config.inference, small_study.studied_ixp_ids,
            delay_model=small_study.delay_model, geo_index=small_study.geo_index)
        _assert_equivalent(small_outcome, reference)
        assert small_outcome.report.inferred()

    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_parallel_schedule_is_equivalent(self, tiny_study, max_workers):
        serial = tiny_study.outcome
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=max_workers)
        parallel = engine.run(tiny_study.config.inference, tiny_study.studied_ixp_ids)
        assert parallel.report == serial.report
        assert parallel.baseline_report == serial.baseline_report
        assert parallel.rtt_summary.observations == serial.rtt_summary.observations

    def test_rerun_from_cache_is_identical(self, tiny_study):
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index)
        config = tiny_study.config.inference
        first = engine.run(config, tiny_study.studied_ixp_ids)
        second = engine.run(config, tiny_study.studied_ixp_ids)
        assert first.report == second.report
        assert first.report is not second.report
        assert first.baseline_report == second.baseline_report


class TestExecutorSeam:
    def test_unknown_executor_rejected(self, tiny_study):
        with pytest.raises(InferenceError):
            PipelineEngine(tiny_study.inputs, executor="gpu")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_every_executor_matches_serial(self, tiny_study, executor):
        serial = tiny_study.outcome
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=2, executor=executor)
        try:
            outcome = engine.run(
                tiny_study.config.inference, tiny_study.studied_ixp_ids)
        finally:
            engine.shutdown()
        assert outcome == serial

    def test_process_rerun_replays_from_parent_cache(self, tiny_study):
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=2, executor="process")
        config = tiny_study.config.inference
        try:
            first = engine.run(config, tiny_study.studied_ixp_ids)
            created_after_first = engine.executor_stats()["pools_created"]
            second = engine.run(config, tiny_study.studied_ixp_ids)
        finally:
            engine.shutdown()
        assert first == second
        # The rerun was served entirely by the parent's cache: the worker
        # pool was never consulted again (no reuse tick, no second pool).
        stats = engine.executor_stats()
        assert stats["pools_created"] == created_after_first == 1
        assert stats["pool_reuses"] == 0

    def test_thread_pool_persists_across_runs(self, tiny_study):
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=2, executor="thread")
        config = tiny_study.config.inference
        try:
            engine.run(config, tiny_study.studied_ixp_ids)
            engine.run(config, tiny_study.studied_ixp_ids)
            stats = engine.executor_stats()
            assert stats["pools_created"] == 1
            assert stats["pool_reuses"] >= 1
            assert stats["thread_pool_live"]
        finally:
            engine.shutdown()
        stats = engine.executor_stats()
        assert not stats["thread_pool_live"]
        assert not stats["process_pool_live"]
        engine.shutdown()  # idempotent

    def test_engine_context_manager_shuts_pools_down(self, tiny_study):
        with PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=2, executor="thread",
        ) as engine:
            engine.run(tiny_study.config.inference, tiny_study.studied_ixp_ids)
            assert engine.executor_stats()["thread_pool_live"]
        stats = engine.executor_stats()
        assert not stats["thread_pool_live"]
        assert not stats["process_pool_live"]

    def test_serial_executor_creates_no_pools(self, tiny_study):
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, max_workers=4, executor="serial")
        outcome = engine.run(
            tiny_study.config.inference, tiny_study.studied_ixp_ids)
        assert outcome == tiny_study.outcome
        stats = engine.executor_stats()
        assert stats["pools_created"] == 0
        assert not stats["thread_pool_live"]
        assert not stats["process_pool_live"]

    def test_worker_payloads_pickle_round_trip(self, tiny_study):
        # The process seam ships (inputs, delay_model) to the pool
        # initializer; under the default fork start method the pickle is
        # skipped, so exercise it explicitly.
        import pickle

        inputs2, delay_model2 = pickle.loads(
            pickle.dumps((tiny_study.inputs, tiny_study.delay_model)))
        # The index's dataset identity survives (the dunders ship the memo
        # dicts but re-link the shared dataset object).
        assert inputs2.geo_index.dataset is inputs2.dataset
        engine = PipelineEngine(inputs2, delay_model=delay_model2,
                                executor="serial")
        outcome = engine.run(
            tiny_study.config.inference, tiny_study.studied_ixp_ids)
        assert outcome == tiny_study.outcome

    def test_process_pool_rebuilt_after_journalled_revision(self):
        from repro.config import ExperimentConfig
        from repro.geo.coordinates import GeoPoint
        from repro.study import RemotePeeringStudy

        # A fresh study, not the shared session fixture: the test mutates
        # the dataset through a journalled mutator.
        study = RemotePeeringStudy(ExperimentConfig.tiny(seed=7))
        config = study.config.inference
        engine = PipelineEngine(
            study.inputs, delay_model=study.delay_model,
            geo_index=study.geo_index, max_workers=2, executor="process")
        try:
            engine.run(config, study.studied_ixp_ids)
            facility_id = sorted(study.inputs.dataset.facility_locations)[0]
            location = study.inputs.dataset.facility_locations[facility_id]
            study.inputs.dataset.set_facility_location(
                facility_id,
                GeoPoint(location.latitude + 0.25, location.longitude))
            study.geo_index.invalidate()
            revised = engine.run(config, study.studied_ixp_ids)
        finally:
            engine.shutdown()
        # The stale worker snapshots were replaced, not reused.
        assert engine.executor_stats()["pools_created"] == 2
        fresh = PipelineEngine(
            study.inputs, delay_model=study.delay_model,
            geo_index=study.geo_index, executor="serial")
        assert revised == fresh.run(config, study.studied_ixp_ids)


class TestStepGraphDeclarations:
    def test_declared_fields_are_real_config_fields(self):
        config = InferenceConfig()
        for spec in STEP_GRAPH:
            # config_fingerprint raises on any typo in the declaration.
            fingerprint = config_fingerprint(config, spec.config_fields)
            assert len(fingerprint) == len(spec.config_fields)

    def test_requires_reference_known_steps(self):
        names = {spec.name for spec in STEP_GRAPH}
        for spec in STEP_GRAPH:
            assert set(spec.requires) <= names
            assert spec.provides

    def test_scopes(self):
        scopes = {spec.name: spec.scope for spec in STEP_GRAPH}
        assert scopes["step1"] is StepScope.PER_IXP
        assert scopes["step2"] is StepScope.PER_IXP
        assert scopes["step3"] is StepScope.PER_IXP
        assert scopes["baseline"] is StepScope.PER_IXP
        assert scopes["traceroute"] is StepScope.GLOBAL
        assert scopes["step4"] is StepScope.GLOBAL
        assert scopes["step5"] is StepScope.GLOBAL


class TestConfigFingerprint:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            config_fingerprint(InferenceConfig(), ("no_such_field",))

    def test_order_independent(self):
        config = InferenceConfig()
        fields = ("strong_remote_rtt_ms", "rtt_baseline_threshold_ms")
        assert config_fingerprint(config, fields) == config_fingerprint(
            config, tuple(reversed(fields)))

    def test_subset_ignores_other_fields(self):
        from dataclasses import replace
        base = InferenceConfig()
        changed_elsewhere = replace(base, min_private_neighbours=5)
        fields = ("rtt_baseline_threshold_ms", "feasible_facility_tolerance_km")
        assert config_fingerprint(base, fields) == config_fingerprint(
            changed_elsewhere, fields)

    def test_declared_change_alters_fingerprint(self):
        from dataclasses import replace
        base = InferenceConfig()
        changed = replace(base, feasible_facility_tolerance_km=99.0)
        fields = ("feasible_facility_tolerance_km",)
        assert config_fingerprint(base, fields) != config_fingerprint(changed, fields)


class TestCacheStaleness:
    """The step-result cache recomputes exactly the fingerprint-stale steps."""

    @pytest.fixture()
    def engine(self, tiny_study):
        return PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index)

    @staticmethod
    def _misses(engine):
        return {label: stats.misses for label, stats in engine.cache.stats.items()}

    def test_downstream_only_change_reuses_upstream(self, engine, tiny_study):
        from dataclasses import replace
        config = tiny_study.config.inference
        ixp_ids = tiny_study.studied_ixp_ids
        engine.run(config, ixp_ids)
        before = self._misses(engine)

        changed = replace(config, max_coherent_vote_facilities=1)
        engine.run(changed, ixp_ids)
        after = self._misses(engine)

        for label in ("step1", "step2", "step3", "baseline", "traceroute", "step4"):
            assert after[label] == before[label], f"{label} must be reused"
        assert after["step5"] == before["step5"] + 1

    def test_undeclared_field_change_reuses_everything(self, engine, tiny_study):
        from dataclasses import replace
        config = tiny_study.config.inference
        ixp_ids = tiny_study.studied_ixp_ids
        reference = engine.run(config, ixp_ids)
        before = self._misses(engine)

        # strong_remote_rtt_ms is an analysis-only knob no step declares (or
        # reads): the whole run must come from the cache.
        changed = replace(config, strong_remote_rtt_ms=7.5)
        outcome = engine.run(changed, ixp_ids)
        assert self._misses(engine) == before
        assert outcome.report == reference.report

    def test_upstream_change_invalidates_dependents(self, engine, tiny_study):
        from dataclasses import replace
        config = tiny_study.config.inference
        ixp_ids = tiny_study.studied_ixp_ids
        engine.run(config, ixp_ids)
        before = self._misses(engine)

        changed = replace(config, lg_rounding_adjustment_ms=0.5)
        engine.run(changed, ixp_ids)
        after = self._misses(engine)

        # Step 1 and the traceroute observables do not depend on Step 2.
        assert after["step1"] == before["step1"]
        assert after["traceroute"] == before["traceroute"]
        # Step 2 and every transitively dependent node recompute.
        n = len(ixp_ids)
        assert after["step2"] == before["step2"] + n
        assert after["step3"] == before["step3"] + n
        assert after["baseline"] == before["baseline"] + n
        assert after["step4"] == before["step4"] + 1
        assert after["step5"] == before["step5"] + 1

    def test_traceroute_shared_across_ixp_subsets(self, engine, tiny_study):
        """The corpus-wide observables ignore the studied set and are reused."""
        config = tiny_study.config.inference
        ixp_ids = tiny_study.studied_ixp_ids
        engine.run(config, ixp_ids)
        before = self._misses(engine)
        engine.run(config, ixp_ids[:1])
        after = self._misses(engine)
        assert after["traceroute"] == before["traceroute"]
        # The per-IXP nodes of the subset are reused too; only the global
        # steps 4/5 re-key (their scope is the studied tuple).
        assert after["step1"] == before["step1"]
        assert after["step3"] == before["step3"]
        assert after["step4"] == before["step4"] + 1
        assert after["step5"] == before["step5"] + 1

    def test_sweep_runner_shares_cache(self, engine, tiny_study):
        from dataclasses import replace
        config = tiny_study.config.inference
        ixp_ids = tiny_study.studied_ixp_ids
        configs = [config,
                   replace(config, enable_step4_multi_ixp=False),
                   replace(config, enable_step5_private_links=False)]
        outcomes = SweepRunner(engine).run(configs, ixp_ids)
        assert len(outcomes) == 3
        misses = self._misses(engine)
        n = len(ixp_ids)
        # Steps 1-3 and the baseline computed once per IXP across the sweep.
        assert misses["step1"] == n
        assert misses["step2"] == n
        assert misses["step3"] == n
        assert misses["baseline"] == n
        assert misses["traceroute"] == 1
        # Scenario 3 shares scenario 1's step4 result (same fingerprint).
        assert misses["step4"] == 2
        # All three step5 fingerprints differ (step4's key feeds step5's).
        assert misses["step5"] == 3


class TestEngineValidation:
    def test_empty_ixp_list_rejected(self, tiny_study):
        with pytest.raises(InferenceError):
            tiny_study.engine.run(tiny_study.config.inference, [])

    def test_foreign_engine_rejected_by_facade(self, tiny_study):
        scenario = _scenario_with_vp()
        foreign = PipelineEngine(scenario.inputs())
        with pytest.raises(InferenceError):
            RemotePeeringPipeline(tiny_study.inputs, engine=foreign)

    def test_foreign_geo_index_rejected(self, tiny_study):
        scenario = _scenario_with_vp()
        foreign_inputs = scenario.inputs()
        with pytest.raises(InferenceError):
            PipelineEngine(tiny_study.inputs, geo_index=foreign_inputs.geo_index)

    def test_cache_clear_recomputes(self, tiny_study):
        engine = PipelineEngine(
            tiny_study.inputs, delay_model=tiny_study.delay_model,
            geo_index=tiny_study.geo_index, cache=StepResultCache())
        config = tiny_study.config.inference
        first = engine.run(config, tiny_study.studied_ixp_ids)
        assert len(engine.cache) > 0
        engine.cache.clear()
        assert len(engine.cache) == 0
        second = engine.run(config, tiny_study.studied_ixp_ids)
        assert first.report == second.report

    def test_peek_returns_presence_without_stats(self):
        cache = StepResultCache()
        assert cache.peek("absent") == (False, None)
        cache.get_or_compute("step1", "k1", lambda: "value")

        def snapshot():
            return {label: (s.hits, s.misses, s.evictions)
                    for label, s in cache.stats.items()}

        before = snapshot()
        assert cache.peek("k1") == (True, "value")
        assert cache.peek("absent") == (False, None)
        # Probes record neither hits nor misses: the process scheduler
        # peeks every node and must not distort the per-step accounting.
        assert snapshot() == before


class TestStudySweep:
    def test_sweep_outcomes_align_with_configs(self, tiny_study):
        from dataclasses import replace
        base = tiny_study.config.inference
        configs = [base, replace(base, enable_step5_private_links=False)]
        outcomes = tiny_study.sweep(configs)
        assert len(outcomes) == 2
        assert outcomes[0].report == tiny_study.outcome.report
        from repro.core.types import InferenceStep
        contributions = outcomes[1].report.step_contributions()
        assert InferenceStep.PRIVATE_CONNECTIVITY not in contributions
