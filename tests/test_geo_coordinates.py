"""Unit tests for geographic coordinates and geodesic distances."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.geo.cities import city_by_name
from repro.geo.coordinates import (
    GeoPoint,
    geodesic_distance_km,
    haversine_distance_km,
    midpoint,
    offset_point,
)


class TestGeoPoint:
    def test_valid_point(self):
        point = GeoPoint(52.37, 4.89)
        assert point.latitude == pytest.approx(52.37)
        assert point.longitude == pytest.approx(4.89)

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)

    @pytest.mark.parametrize("lat", [-91.0, 91.0, 1000.0])
    def test_invalid_latitude(self, lat):
        with pytest.raises(ConfigurationError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-181.0, 181.0, 720.0])
    def test_invalid_longitude(self, lon):
        with pytest.raises(ConfigurationError):
            GeoPoint(0.0, lon)

    def test_distance_method_matches_function(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)
        assert a.distance_km(b) == pytest.approx(geodesic_distance_km(a, b))


class TestDistances:
    def test_zero_distance(self):
        point = GeoPoint(10.0, 10.0)
        assert geodesic_distance_km(point, point) == 0.0
        assert haversine_distance_km(point, point) == 0.0

    def test_equator_degree_is_about_111km(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)
        assert geodesic_distance_km(a, b) == pytest.approx(111.32, rel=0.01)

    def test_amsterdam_rotterdam_is_about_57km(self):
        # The paper's own example of a nearby-but-remote peer.
        ams = city_by_name("Amsterdam").location
        rot = city_by_name("Rotterdam").location
        assert geodesic_distance_km(ams, rot) == pytest.approx(57.0, abs=8.0)

    def test_london_bucharest_is_over_1300km(self):
        # The paper's NL-IX example of facilities more than 1,300 km apart.
        lon = city_by_name("London").location
        buc = city_by_name("Bucharest").location
        assert geodesic_distance_km(lon, buc) > 1_300.0

    def test_symmetry(self):
        a = city_by_name("Tokyo").location
        b = city_by_name("Sydney").location
        assert geodesic_distance_km(a, b) == pytest.approx(geodesic_distance_km(b, a), rel=1e-9)

    def test_geodesic_close_to_haversine(self):
        a = city_by_name("Paris").location
        b = city_by_name("New York").location
        geo = geodesic_distance_km(a, b)
        hav = haversine_distance_km(a, b)
        assert abs(geo - hav) / geo < 0.01

    def test_antipodal_fallback_is_finite(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 179.999999)
        distance = geodesic_distance_km(a, b)
        assert math.isfinite(distance)
        assert distance > 19_000.0

    def test_triangle_inequality_on_cities(self):
        a = city_by_name("Madrid").location
        b = city_by_name("Vienna").location
        c = city_by_name("Warsaw").location
        assert geodesic_distance_km(a, c) <= (
            geodesic_distance_km(a, b) + geodesic_distance_km(b, c) + 1e-6
        )


class TestOffsetAndMidpoint:
    def test_offset_distance_roundtrip(self):
        origin = city_by_name("Berlin").location
        moved = offset_point(origin, 25.0, 90.0)
        assert geodesic_distance_km(origin, moved) == pytest.approx(25.0, rel=0.02)

    def test_offset_zero_distance(self):
        origin = GeoPoint(10.0, 20.0)
        moved = offset_point(origin, 0.0, 123.0)
        assert geodesic_distance_km(origin, moved) < 0.001

    def test_offset_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            offset_point(GeoPoint(0.0, 0.0), -1.0, 0.0)

    def test_offset_longitude_wraps(self):
        origin = GeoPoint(0.0, 179.9)
        moved = offset_point(origin, 100.0, 90.0)
        assert -180.0 <= moved.longitude <= 180.0

    def test_midpoint_between_equator_points(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0)
        mid = midpoint(a, b)
        assert mid.latitude == pytest.approx(0.0, abs=1e-6)
        assert mid.longitude == pytest.approx(5.0, abs=1e-6)

    def test_midpoint_is_roughly_equidistant(self):
        a = city_by_name("Lisbon").location
        b = city_by_name("Athens").location
        mid = midpoint(a, b)
        d1 = geodesic_distance_km(a, mid)
        d2 = geodesic_distance_km(mid, b)
        assert d1 == pytest.approx(d2, rel=0.02)
