"""Invariants of the shared geodesic-distance index (Steps 3/4 geometry).

Three families of guarantees:

* **Function-level** — geodesic distance is *exactly* symmetric (the index
  memoises pairs under order-independent keys, and Step 4 compares distances
  with strict inequalities, so approximate symmetry is not enough).
* **Index-level** — every cached entry equals the direct per-call
  computation, profiles implement inclusive ring semantics, and span
  aggregates match brute-force pairwise min/max.
* **Pipeline-level** — Steps 3 and 4 produce bit-identical classifications
  with and without the index (the corpus-scale version of this equivalence
  lives in ``benchmarks/test_bench_geo_distindex.py``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.step1_port_capacity import PortCapacityStep
from repro.core.step2_rtt import RTTMeasurementStep
from repro.core.step3_colocation import ColocationRTTStep
from repro.core.types import InferenceReport, PeeringClassification
from repro.geo.coordinates import GeoPoint, geodesic_distance_km
from repro.geo.delay_model import DelayModel
from repro.geo.distindex import DistanceProfile, GeoDistanceIndex

from tests.helpers import SeedColocationRTTStep, dual_city_scenario

IXP_ID = "ixp-ams-test"

latitudes = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, latitude=latitudes, longitude=longitudes)


def _measured_scenario():
    """The dual-city scenario with a looking glass and ping series."""
    scenario = dual_city_scenario()
    ixp = scenario.world.ixps[IXP_ID]
    vp = scenario.add_vantage_point(ixp, scenario.world.facilities["fac-001"])
    scenario.add_route_server_series(vp, [0.3, 0.25])
    scenario.add_ping_series(vp, "185.1.0.1", [0.4, 0.3])
    scenario.add_ping_series(vp, "185.1.0.2", [8.2, 8.6])
    scenario.add_ping_series(vp, "185.1.0.3", [1.3, 1.2])
    return scenario, vp


class TestExactSymmetry:
    @given(a=points, b=points)
    @settings(max_examples=200, deadline=None)
    def test_geodesic_distance_is_exactly_symmetric(self, a, b):
        assert geodesic_distance_km(a, b) == geodesic_distance_km(b, a)

    def test_pair_distance_is_order_independent(self):
        scenario, _ = _measured_scenario()
        index = GeoDistanceIndex(scenario.dataset)
        assert index.pair_distance_km("fac-001", "fac-002") == index.pair_distance_km(
            "fac-002", "fac-001")


class TestIndexMatchesDirectComputation:
    def test_every_cached_entry_equals_direct_vincenty(self):
        scenario, vp = _measured_scenario()
        dataset = scenario.dataset
        index = GeoDistanceIndex(dataset)
        # Exercise every lookup family so the memos fill up.
        for facility_id in dataset.facility_locations:
            index.facility_distance_km(vp.location, facility_id)
        for asn in dataset.as_facilities:
            index.as_profile(vp.location, asn)
            index.as_ixp_span_km(asn, IXP_ID)
            index.common_facility_span_km(asn, IXP_ID)
        index.ixp_profile(vp.location, IXP_ID)
        index.ixp_pair_span_km(IXP_ID, IXP_ID)

        assert index._point_km, "the point memo should have been populated"
        for (point, facility_id), cached in index._point_km.items():
            location = dataset.facility_location(facility_id)
            expected = None if location is None else geodesic_distance_km(point, location)
            assert cached == expected
        assert index._pair_km, "the pair memo should have been populated"
        for (fa, fb), cached in index._pair_km.items():
            loc_a, loc_b = dataset.facility_location(fa), dataset.facility_location(fb)
            expected = (None if loc_a is None or loc_b is None
                        else geodesic_distance_km(loc_a, loc_b))
            assert cached == expected

    def test_unlocated_facility_is_a_memoised_miss(self):
        scenario, vp = _measured_scenario()
        scenario.dataset.as_facilities[65001].add("fac-ghost")
        index = GeoDistanceIndex(scenario.dataset)
        assert index.facility_distance_km(vp.location, "fac-ghost") is None
        # Unlocated facilities never enter a profile (they are never feasible).
        profile = index.as_profile(vp.location, 65001)
        assert "fac-ghost" not in profile.facility_ids

    def test_spans_match_bruteforce_pairwise(self):
        scenario, _ = _measured_scenario()
        dataset = scenario.dataset
        index = GeoDistanceIndex(dataset)
        for asn in dataset.as_facilities:
            expected = [
                geodesic_distance_km(dataset.facility_location(fa),
                                     dataset.facility_location(fb))
                for fa in dataset.facilities_of_as(asn)
                for fb in dataset.facilities_of_ixp(IXP_ID)
            ]
            span = index.as_ixp_span_km(asn, IXP_ID)
            assert span == (min(expected), max(expected))

    def test_empty_footprints_yield_none_spans(self):
        scenario, _ = _measured_scenario()
        index = GeoDistanceIndex(scenario.dataset)
        assert index.as_ixp_span_km(99999, IXP_ID) is None
        assert index.ixp_pair_span_km("ixp-none", IXP_ID) is None
        assert index.common_facility_span_km(65002, IXP_ID) is None  # no shared facility


class TestPrebuild:
    def test_prebuild_matches_lazy_fills_bit_exactly(self):
        scenario, vp = _measured_scenario()
        dataset = scenario.dataset
        lazy = GeoDistanceIndex(dataset)
        # Exercise every lookup family so the lazy memos fill completely.
        for facility_id in dataset.facility_locations:
            lazy.facility_distance_km(vp.location, facility_id)
        for asn in dataset.as_facilities:
            lazy.as_profile(vp.location, asn)
            lazy.as_ixp_span_km(asn, IXP_ID)
        lazy.ixp_profile(vp.location, IXP_ID)

        prebuilt = GeoDistanceIndex(dataset)
        added = prebuilt.prebuild([vp.location])
        assert added > 0
        # Every lazily filled distance is present and bit-identical.
        for key, value in lazy._point_km.items():
            assert prebuilt._point_km[key] == value
        for key, value in lazy._pair_km.items():
            assert prebuilt._pair_km[key] == value

    def test_second_prebuild_adds_nothing(self):
        scenario, vp = _measured_scenario()
        index = GeoDistanceIndex(scenario.dataset)
        assert index.prebuild([vp.location]) > 0
        assert index.prebuild([vp.location]) == 0

    def test_unlocated_facilities_prefill_point_misses(self):
        scenario, vp = _measured_scenario()
        scenario.dataset.as_facilities[65001].add("fac-ghost")
        index = GeoDistanceIndex(scenario.dataset)
        index.prebuild([vp.location])
        assert index._point_km[(vp.location, "fac-ghost")] is None
        assert index.facility_distance_km(vp.location, "fac-ghost") is None

    def test_prebuilt_index_is_observationally_equivalent(self):
        scenario, vp = _measured_scenario()
        dataset = scenario.dataset
        cold = GeoDistanceIndex(dataset)
        warm = GeoDistanceIndex(dataset)
        warm.prebuild([vp.location])
        for asn in dataset.as_facilities:
            assert warm.as_profile(vp.location, asn) == cold.as_profile(
                vp.location, asn)
            assert warm.as_ixp_span_km(asn, IXP_ID) == cold.as_ixp_span_km(
                asn, IXP_ID)
        assert warm.ixp_profile(vp.location, IXP_ID) == cold.ixp_profile(
            vp.location, IXP_ID)

    def test_world_index_prebuild_matches_lazy_pairs(self):
        from repro.geo.worldindex import WorldDistanceIndex

        scenario, _ = _measured_scenario()
        world = scenario.world
        lazy = WorldDistanceIndex(world)
        facility_ids = sorted(world.facilities)
        expected = {}
        for i, fa in enumerate(facility_ids):
            for fb in facility_ids[i + 1:]:
                expected[(fa, fb)] = lazy.facility_pair_km(fa, fb)
        prebuilt = WorldDistanceIndex(world)
        added = prebuilt.prebuild()
        assert added == len(expected)
        assert prebuilt._pair_km == expected
        assert prebuilt.prebuild() == 0


class TestDistanceProfile:
    def test_within_is_inclusive_on_both_bounds(self):
        profile = DistanceProfile(distances=(1.0, 2.0, 3.0, 4.0),
                                  facility_ids=("a", "b", "c", "d"))
        assert profile.within(2.0, 3.0) == {"b", "c"}
        assert profile.within(0.0, 10.0) == {"a", "b", "c", "d"}
        assert profile.within(2.5, 2.6) == set()
        assert profile.within(-5.0, 1.0) == {"a"}  # tolerance can push lo below 0
        assert len(profile) == 4

    def test_profile_is_sorted_by_distance(self):
        scenario, vp = _measured_scenario()
        index = GeoDistanceIndex(scenario.dataset)
        profile = index.ixp_profile(vp.location, IXP_ID)
        assert list(profile.distances) == sorted(profile.distances)


class TestStalenessContract:
    def test_dataset_mutation_requires_invalidate(self):
        scenario, vp = _measured_scenario()
        dataset = scenario.dataset
        index = GeoDistanceIndex(dataset)
        before = index.facility_distance_km(vp.location, "fac-002")
        moved = dataset.facility_locations["fac-001"]  # Amsterdam coordinates
        dataset.facility_locations["fac-002"] = moved
        # Documented contract: memoised entries never recompute on their own.
        assert index.facility_distance_km(vp.location, "fac-002") == before
        index.invalidate()
        after = index.facility_distance_km(vp.location, "fac-002")
        assert after == geodesic_distance_km(vp.location, moved)
        assert after != before

    def test_foreign_index_rejected_at_every_injection_point(self):
        from repro.core.pipeline import RemotePeeringPipeline
        from repro.core.step4_multi_ixp import MultiIXPRouterStep
        from repro.exceptions import InferenceError

        scenario, _ = _measured_scenario()
        other, _ = _measured_scenario()
        inputs = scenario.inputs()
        foreign = GeoDistanceIndex(other.dataset)
        with pytest.raises(InferenceError):
            type(inputs)(
                dataset=scenario.dataset,
                ping_result=scenario.ping_result,
                corpus=scenario.corpus,
                prefix2as=inputs.prefix2as,
                alias_resolver=inputs.alias_resolver,
                geo_index=foreign,
            )
        with pytest.raises(InferenceError):
            RemotePeeringPipeline(inputs, geo_index=foreign)
        with pytest.raises(InferenceError):
            ColocationRTTStep(inputs, geo_index=foreign)
        with pytest.raises(InferenceError):
            MultiIXPRouterStep(inputs, geo_index=foreign)


class TestStep3Equivalence:
    def _run(self, scenario, step_cls):
        inputs = scenario.inputs()
        report = InferenceReport()
        PortCapacityStep(inputs).run([IXP_ID], report)
        summary = RTTMeasurementStep(inputs).run([IXP_ID])
        step = step_cls(inputs, delay_model=DelayModel())
        feasible = step.run([IXP_ID], report, summary)
        return report, feasible

    def test_indexed_step3_is_bit_identical_to_seed_path(self):
        scenario, _ = _measured_scenario()
        indexed_report, indexed_feasible = self._run(scenario, ColocationRTTStep)
        seed_report, seed_feasible = self._run(scenario, SeedColocationRTTStep)

        assert indexed_feasible.keys() == seed_feasible.keys()
        for key, indexed in indexed_feasible.items():
            seed = seed_feasible[key]
            assert indexed.ring == seed.ring
            assert indexed.feasible_ixp_facilities == seed.feasible_ixp_facilities
            assert indexed.feasible_member_facilities == seed.feasible_member_facilities
            assert indexed.member_has_facility_data == seed.member_has_facility_data
            assert indexed.classification is seed.classification
        assert {k: r.classification for k, r in indexed_report.results.items()} == {
            k: r.classification for k, r in seed_report.results.items()}
        # Sanity: the scenario exercises all three outcomes.
        classes = {r.classification for r in indexed_report.results.values()}
        assert PeeringClassification.LOCAL in classes
        assert PeeringClassification.REMOTE in classes
