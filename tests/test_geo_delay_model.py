"""Unit tests for the RTT <-> distance delay model."""

import random

import pytest

from repro.constants import MAX_PROBE_SPEED_KM_S
from repro.exceptions import ConfigurationError
from repro.geo.delay_model import DelayModel, FeasibleRing


class TestFeasibleRing:
    def test_contains_inclusive_bounds(self):
        ring = FeasibleRing(min_distance_km=10.0, max_distance_km=100.0)
        assert ring.contains(10.0)
        assert ring.contains(100.0)
        assert ring.contains(50.0)
        assert not ring.contains(9.99)
        assert not ring.contains(100.01)

    def test_width(self):
        ring = FeasibleRing(min_distance_km=10.0, max_distance_km=25.0)
        assert ring.width_km == pytest.approx(15.0)

    def test_negative_distances_rejected(self):
        with pytest.raises(ConfigurationError):
            FeasibleRing(min_distance_km=-1.0, max_distance_km=5.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            FeasibleRing(min_distance_km=10.0, max_distance_km=5.0)


class TestBounds:
    def test_default_vmax_is_four_ninths_of_c(self):
        model = DelayModel()
        assert model.v_max_km_s == pytest.approx(MAX_PROBE_SPEED_KM_S)

    def test_min_rtt_grows_with_distance(self):
        model = DelayModel()
        assert model.min_rtt_ms(100.0) < model.min_rtt_ms(1_000.0) < model.min_rtt_ms(5_000.0)

    def test_max_rtt_grows_with_distance(self):
        model = DelayModel()
        assert model.max_rtt_ms(100.0) < model.max_rtt_ms(1_000.0) < model.max_rtt_ms(5_000.0)

    def test_min_rtt_below_max_rtt(self):
        model = DelayModel()
        for distance in (10.0, 100.0, 500.0, 2_000.0, 8_000.0):
            assert model.min_rtt_ms(distance) < model.max_rtt_ms(distance)

    def test_100km_min_rtt_is_about_1_5ms(self):
        # 100 km at 4/9 c round-trip is roughly 1.5 ms, matching the paper's
        # "1 ms ~ one metro area" intuition.
        model = DelayModel()
        assert model.min_rtt_ms(100.0) == pytest.approx(1.5, abs=0.2)

    def test_v_min_has_floor_for_short_distances(self):
        model = DelayModel()
        assert model.v_min_km_s(1.0) == model.v_min_floor_km_s
        assert model.v_min_km_s(10_000.0) > model.v_min_floor_km_s

    def test_negative_distance_rejected(self):
        model = DelayModel()
        with pytest.raises(ConfigurationError):
            model.min_rtt_ms(-1.0)
        with pytest.raises(ConfigurationError):
            model.max_rtt_ms(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            DelayModel(v_max_km_s=0.0)
        with pytest.raises(ConfigurationError):
            DelayModel(v_min_floor_km_s=-1.0)
        with pytest.raises(ConfigurationError):
            DelayModel(base_overhead_ms=-0.1)


class TestSampling:
    def test_sampled_rtt_within_physical_bounds(self):
        model = DelayModel()
        rng = random.Random(5)
        for distance in (50.0, 300.0, 1_500.0, 6_000.0):
            for _ in range(50):
                rtt = model.sample_rtt_ms(distance, rng, jitter_ms=0.0)
                assert rtt >= model.min_rtt_ms(distance)

    def test_zero_distance_is_submillisecond_without_jitter(self):
        model = DelayModel()
        rng = random.Random(1)
        for _ in range(100):
            assert model.sample_rtt_ms(0.0, rng, jitter_ms=0.0) < 1.0

    def test_path_stretch_increases_rtt(self):
        model = DelayModel()
        base = [model.sample_rtt_ms(500.0, random.Random(3), jitter_ms=0.0) for _ in range(30)]
        stretched = [model.sample_rtt_ms(500.0, random.Random(3), jitter_ms=0.0, path_stretch=1.5)
                     for _ in range(30)]
        assert sum(stretched) > sum(base)

    def test_invalid_sampling_arguments(self):
        model = DelayModel()
        rng = random.Random(0)
        with pytest.raises(ConfigurationError):
            model.sample_rtt_ms(-5.0, rng)
        with pytest.raises(ConfigurationError):
            model.sample_rtt_ms(5.0, rng, path_stretch=0.5)
        with pytest.raises(ConfigurationError):
            model.sample_rtt_ms(5.0, rng, jitter_ms=-1.0)


class TestInversion:
    def test_max_distance_scales_linearly(self):
        model = DelayModel()
        assert model.max_distance_km(2.0) == pytest.approx(2 * model.max_distance_km(1.0))

    def test_max_distance_is_capped_at_half_earth(self):
        model = DelayModel()
        assert model.max_distance_km(10_000.0) == model.MAX_EARTH_DISTANCE_KM

    def test_small_rtt_min_distance_is_zero(self):
        model = DelayModel()
        assert model.min_distance_km(0.5) == 0.0

    def test_min_distance_below_max_distance(self):
        model = DelayModel()
        for rtt in (1.0, 3.0, 10.0, 40.0, 150.0):
            assert model.min_distance_km(rtt) <= model.max_distance_km(rtt)

    def test_ring_contains_true_distance_for_minimum_rtts(self):
        # Step 2 always works on the *minimum* RTT over many rounds, which is
        # what keeps the feasible ring sound in the presence of jitter.
        model = DelayModel()
        rng = random.Random(11)
        for distance in (0.0, 30.0, 120.0, 400.0, 1_200.0, 5_000.0):
            for _ in range(10):
                rtt_min = min(model.sample_rtt_ms(distance, rng) for _ in range(24))
                ring = model.feasible_ring(rtt_min)
                assert ring.contains(distance), (distance, rtt_min, ring)

    def test_negative_rtt_rejected(self):
        model = DelayModel()
        with pytest.raises(ConfigurationError):
            model.max_distance_km(-1.0)
        with pytest.raises(ConfigurationError):
            model.min_distance_km(-0.1)
