"""Tests for the resilience layer: retries, timeouts, demotion, fault injection.

The headline property, pinned end to end by ``TestChaosEquivalence``: a run
with injected worker crashes, task exceptions and hangs *completes*, every
recovery decision is journalled in ``executor_stats()``, and the resulting
``PipelineOutcome`` is bit-identical to the fault-free serial schedule.

The unit layers underneath pin what makes that property deterministic:
:class:`RetryPolicy` backoffs are a pure function of the task digest (no
``random``, no clock), :class:`FaultPlan` injection is a pure function of
``(digest, attempt)``, and the engine's cascade ``process -> thread ->
serial`` demotes one rung per timeout, journalled and warned, never silent.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import PipelineEngine
from repro.exceptions import (
    ExecutorDegradedWarning,
    InferenceError,
    InjectedFaultError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceEventKind,
    RetryPolicy,
    perform_fault,
    task_digest,
)

#: Generous per-task timeout for chaos runs: a warm per-IXP chain on the
#: tiny study takes milliseconds, a freshly rebuilt pool initialises in
#: well under a second, and the injected hangs sleep far longer.
CHAOS_TIMEOUT_S = 6.0


# ------------------------------------------------------------------ #
# RetryPolicy / task_digest
# ------------------------------------------------------------------ #

class TestTaskDigest:
    def test_stable_and_distinct(self, tiny_study):
        from dataclasses import replace
        config = tiny_study.config.inference
        a, b = tiny_study.studied_ixp_ids[:2]
        assert task_digest(config, a) == task_digest(config, a)
        assert task_digest(config, a) != task_digest(config, b)
        nudged = replace(
            config,
            rtt_baseline_threshold_ms=config.rtt_baseline_threshold_ms + 0.5)
        assert task_digest(nudged, a) != task_digest(config, a)


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01, max_delay_s=0.05,
            jitter_fraction=0.5)
        digest = "ab" * 32
        schedule = policy.schedule(digest)
        assert len(schedule) == policy.max_attempts - 1
        assert schedule == policy.schedule(digest)
        for attempt, delay in enumerate(schedule, start=1):
            base = min(0.05, 0.01 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * 1.5
        # The jitter depends on the digest, so two tasks never sleep in
        # lockstep (thundering-herd protection without random state).
        assert schedule != policy.schedule("cd" * 32)

    def test_should_retry_bounds_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        single = RetryPolicy(max_attempts=1)
        assert not single.should_retry(1)
        assert single.schedule("ab" * 32) == ()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"max_attempts": 2.5},
        {"max_attempts": True},
        {"base_delay_s": -0.01},
        {"max_delay_s": 0.001},   # below the default base_delay_s
        {"jitter_fraction": -0.1},
        {"jitter_fraction": 1.5},
    ])
    def test_invalid_parameters_are_rejected(self, kwargs):
        with pytest.raises(InferenceError):
            RetryPolicy(**kwargs)

    def test_delay_rejects_attempt_zero(self):
        with pytest.raises(InferenceError):
            RetryPolicy().delay_s("ab" * 32, 0)


# ------------------------------------------------------------------ #
# FaultPlan / perform_fault
# ------------------------------------------------------------------ #

class TestFaultPlan:
    def test_fault_at_is_pure_and_attempt_scoped(self, tiny_study):
        config = tiny_study.config.inference
        ixp = tiny_study.studied_ixp_ids[0]
        spec = FaultSpec(FaultKind.EXCEPTION, attempts=(1, 3))
        plan = FaultPlan.for_tasks([(config, ixp, spec)])
        digest = task_digest(config, ixp)
        assert len(plan) == 1
        for _ in range(2):  # replayable: consulting never mutates the plan
            assert plan.fault_at(digest, 1) is spec
            assert plan.fault_at(digest, 2) is None
            assert plan.fault_at(digest, 3) is spec
            assert plan.fault_at("00" * 32, 1) is None

    def test_plan_survives_pickling(self, tiny_study):
        config = tiny_study.config.inference
        ixp = tiny_study.studied_ixp_ids[0]
        plan = FaultPlan.for_tasks(
            [(config, ixp, FaultSpec(FaultKind.CRASH))])
        clone = pickle.loads(pickle.dumps(plan))
        digest = task_digest(config, ixp)
        assert clone.fault_at(digest, 1).kind is FaultKind.CRASH

    @pytest.mark.parametrize("kwargs", [
        {"attempts": ()},
        {"attempts": (0,)},
        {"hang_s": 0.0},
    ])
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(InferenceError):
            FaultSpec(FaultKind.HANG, **kwargs)

    def test_perform_fault_in_process_semantics(self):
        digest = "ab" * 32
        plan = FaultPlan({digest: (FaultSpec(FaultKind.CRASH),)})
        with pytest.raises(WorkerCrashError):
            perform_fault(plan, digest, 1, in_worker=False)
        assert perform_fault(plan, digest, 2, in_worker=False) is None

        plan = FaultPlan({digest: (FaultSpec(FaultKind.EXCEPTION),)})
        with pytest.raises(InjectedFaultError):
            perform_fault(plan, digest, 1, in_worker=False)

        # A pickling fault is a no-op in-process (nothing crosses a pickle)
        # but poisons the worker-side return value.
        plan = FaultPlan({digest: (FaultSpec(FaultKind.PICKLE),)})
        assert perform_fault(plan, digest, 1, in_worker=False) is None
        payload = perform_fault(plan, digest, 1, in_worker=True)
        assert payload is not None
        with pytest.raises(InjectedFaultError):
            pickle.dumps(payload)

        plan = FaultPlan({digest: (FaultSpec(FaultKind.HANG, hang_s=4.5),)})
        slept: list[float] = []
        perform_fault(plan, digest, 1, in_worker=False, sleep=slept.append)
        assert slept == [4.5]


# ------------------------------------------------------------------ #
# Engine construction validation
# ------------------------------------------------------------------ #

def _engine(study, **kwargs):
    return PipelineEngine(
        study.inputs, delay_model=study.delay_model,
        geo_index=study.geo_index, **kwargs)


class TestEngineValidation:
    @pytest.mark.parametrize("max_workers", [0, -1, 2.5, True])
    def test_bad_max_workers_fails_at_construction(
        self, tiny_study, max_workers
    ):
        with pytest.raises(InferenceError):
            _engine(tiny_study, executor="thread", max_workers=max_workers)

    @pytest.mark.parametrize("max_workers", [None, 1, 2])
    def test_good_max_workers_accepted(self, tiny_study, max_workers):
        _engine(tiny_study, executor="thread", max_workers=max_workers)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_bad_task_timeout_fails_at_construction(self, tiny_study, timeout):
        with pytest.raises(InferenceError):
            _engine(tiny_study, task_timeout_s=timeout)


# ------------------------------------------------------------------ #
# Scheduler integration: retries, demotion, crash recovery
# ------------------------------------------------------------------ #

@pytest.fixture(scope="module")
def reference_outcome(tiny_study):
    """The fault-free serial schedule every chaos run must reproduce."""
    engine = _engine(tiny_study, executor="serial")
    return engine.run(
        tiny_study.config.inference, tiny_study.studied_ixp_ids)


def _events(engine):
    return [(event.kind.value, event.context, event.attempt)
            for event in engine.resilience_events()]


class TestRetryIntegration:
    def test_serial_retry_sleeps_the_deterministic_schedule(
        self, tiny_study, reference_outcome
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        victim = ixps[1]
        plan = FaultPlan.for_tasks(
            [(config, victim, FaultSpec(FaultKind.EXCEPTION, attempts=(1, 2)))])
        slept: list[float] = []
        engine = _engine(
            tiny_study, executor="serial", fault_plan=plan, sleep=slept.append)
        outcome = engine.run(config, ixps)
        assert outcome == reference_outcome
        policy, digest = engine.retry_policy, task_digest(config, victim)
        assert slept == [policy.delay_s(digest, 1), policy.delay_s(digest, 2)]
        assert _events(engine) == [("retry", victim, 1), ("retry", victim, 2)]

    def test_thread_retry_is_bit_identical(self, tiny_study, reference_outcome):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        plan = FaultPlan.for_tasks(
            [(config, ixps[2], FaultSpec(FaultKind.EXCEPTION, attempts=(1,)))])
        engine = _engine(
            tiny_study, executor="thread", max_workers=2, fault_plan=plan,
            sleep=lambda _s: None)
        try:
            outcome = engine.run(config, ixps)
        finally:
            engine.shutdown()
        assert outcome == reference_outcome
        assert _events(engine) == [("retry", ixps[2], 1)]

    def test_exhausted_policy_raises_and_shutdown_stays_idempotent(
        self, tiny_study
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        plan = FaultPlan.for_tasks(
            [(config, ixps[0],
              FaultSpec(FaultKind.EXCEPTION, attempts=(1, 2, 3)))])
        engine = _engine(
            tiny_study, executor="serial", fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3), sleep=lambda _s: None)
        with pytest.raises(InjectedFaultError):
            engine.run(config, ixps)
        # Two retries were journalled before attempt 3 re-raised.
        assert _events(engine) == [
            ("retry", ixps[0], 1), ("retry", ixps[0], 2)]
        # The failed run must not leak phase accounting or pools.
        assert engine.executor_stats()["runs_timed"] == 1
        engine.shutdown()
        engine.shutdown()


class TestTimeoutDemotion:
    def test_thread_timeout_demotes_to_serial(
        self, tiny_study, reference_outcome
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        # A hung thread cannot be killed, only abandoned: keep the hang
        # short so the pool joins promptly at shutdown.
        plan = FaultPlan.for_tasks(
            [(config, ixps[0],
              FaultSpec(FaultKind.HANG, attempts=(1,), hang_s=1.5))])
        engine = _engine(
            tiny_study, executor="thread", max_workers=2, fault_plan=plan,
            task_timeout_s=0.25, sleep=lambda _s: None)
        try:
            with pytest.warns(ExecutorDegradedWarning):
                outcome = engine.run(config, ixps)
        finally:
            engine.shutdown()
        assert outcome == reference_outcome
        assert _events(engine) == [
            ("task-timeout", ixps[0], 1), ("executor-demotion", "scheduler", None)]
        detail = engine.resilience_events()[1].detail
        assert detail.startswith("thread->serial")

    def test_timeout_exhaustion_raises_task_timeout_error(self, tiny_study):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        plan = FaultPlan.for_tasks(
            [(config, ixps[0],
              FaultSpec(FaultKind.HANG, attempts=(1,), hang_s=1.5))])
        engine = _engine(
            tiny_study, executor="thread", max_workers=2, fault_plan=plan,
            task_timeout_s=0.25, sleep=lambda _s: None,
            retry_policy=RetryPolicy(max_attempts=1))
        try:
            with pytest.raises(TaskTimeoutError):
                engine.run(config, ixps)
        finally:
            engine.shutdown()


class TestCrashRecovery:
    def test_pool_rebuild_resubmits_and_stays_bit_identical(
        self, tiny_study, reference_outcome
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        plan = FaultPlan.for_tasks(
            [(config, ixps[0], FaultSpec(FaultKind.CRASH, attempts=(1,)))])
        engine = _engine(
            tiny_study, executor="process", max_workers=2, fault_plan=plan,
            sleep=lambda _s: None)
        try:
            outcome = engine.run(config, ixps)
            stats = engine.executor_stats()
        finally:
            engine.shutdown()
        assert outcome == reference_outcome
        assert stats["pools_created"] == 2
        assert stats["pools_retired"] == 1
        kinds = [event.kind for event in engine.resilience_events()]
        assert kinds == [
            ResilienceEventKind.WORKER_CRASH, ResilienceEventKind.POOL_REBUILD]
        # The crash charged one attempt to every task that was in flight.
        crash = engine.resilience_events()[0]
        assert crash.context == "pool"
        assert set(crash.detail.split(",")) <= set(ixps)

    def test_crash_recovered_run_serves_reruns_from_cache(
        self, tiny_study, reference_outcome
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        plan = FaultPlan.for_tasks(
            [(config, ixps[0], FaultSpec(FaultKind.CRASH, attempts=(1,)))])
        engine = _engine(
            tiny_study, executor="process", max_workers=2, fault_plan=plan,
            sleep=lambda _s: None)
        try:
            engine.run(config, ixps)
            events_before = len(engine.resilience_events())
            pools_before = engine.executor_stats()["pools_created"]
            rerun = engine.run(config, ixps)
            stats = engine.executor_stats()
        finally:
            engine.shutdown()
        # The rerun is cache-served: no worker trips, no new faults fire
        # (the plan would re-crash attempt 1 if the task were resubmitted).
        assert rerun == reference_outcome
        assert len(engine.resilience_events()) == events_before
        assert stats["pools_created"] == pools_before

    def test_pickle_fault_retries_and_converges(
        self, tiny_study, reference_outcome
    ):
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        victim = ixps[1]
        plan = FaultPlan.for_tasks(
            [(config, victim, FaultSpec(FaultKind.PICKLE, attempts=(1,)))])
        engine = _engine(
            tiny_study, executor="process", max_workers=2, fault_plan=plan,
            sleep=lambda _s: None)
        try:
            outcome = engine.run(config, ixps)
        finally:
            engine.shutdown()
        assert outcome == reference_outcome
        events = engine.resilience_events()
        assert [(e.kind.value, e.context, e.attempt) for e in events] == [
            ("retry", victim, 1)]
        assert events[0].detail == "InjectedFaultError"


# ------------------------------------------------------------------ #
# Headline: chaos run == fault-free serial schedule
# ------------------------------------------------------------------ #

class TestChaosEquivalence:
    def test_crash_exception_and_hang_converge_bit_identically(
        self, tiny_study, reference_outcome
    ):
        from dataclasses import replace
        config = tiny_study.config.inference
        ixps = tiny_study.studied_ixp_ids
        crashed, exceptional, hung = ixps[0], ixps[1], ixps[2]
        # The crash bumps every in-flight task to one consumed attempt, so
        # round two runs everything at attempt 2 — placing the other
        # faults at attempt 2 keeps the event schedule deterministic even
        # with two workers racing.
        plan = FaultPlan.for_tasks([
            (config, crashed, FaultSpec(FaultKind.CRASH, attempts=(1,))),
            (config, exceptional,
             FaultSpec(FaultKind.EXCEPTION, attempts=(2,))),
            (config, hung,
             FaultSpec(FaultKind.HANG, attempts=(2,), hang_s=60.0)),
        ])
        engine = _engine(
            tiny_study, executor="process", max_workers=2, fault_plan=plan,
            task_timeout_s=CHAOS_TIMEOUT_S, sleep=lambda _s: None)
        try:
            # Warm run under a config whose task digests differ (so no
            # fault fires): builds the pool and prebuilds worker geometry,
            # keeping the chaos run's timeout margin about the tasks.
            warm = replace(
                config,
                rtt_baseline_threshold_ms=(
                    config.rtt_baseline_threshold_ms + 0.001))
            engine.run(warm, ixps)
            assert len(engine.resilience_events()) == 0
            with pytest.warns(ExecutorDegradedWarning):
                outcome = engine.run(config, ixps)
            stats = engine.executor_stats()
        finally:
            engine.shutdown()

        assert outcome == reference_outcome
        counts = stats["resilience"]["counts"]
        assert counts == {
            "worker-crash": 1,
            "pool-rebuild": 1,
            "retry": 1,
            "task-timeout": 1,
            "executor-demotion": 1,
        }
        events = engine.resilience_events()
        assert [event.kind.value for event in events] == [
            "worker-crash", "pool-rebuild", "retry", "task-timeout",
            "executor-demotion"]
        retry, timeout, demotion = events[2], events[3], events[4]
        assert (retry.context, retry.attempt) == (exceptional, 2)
        assert retry.detail == "InjectedFaultError"
        assert (timeout.context, timeout.attempt) == (hung, 2)
        assert demotion.detail.startswith("process->thread")
        # Two process pools (warm + post-crash rebuild) both retired, plus
        # the thread pool the cascade demoted to.
        assert stats["pools_created"] == 3
        assert stats["pools_retired"] == 2
        assert stats["task_timeout_s"] == CHAOS_TIMEOUT_S

    def test_stats_surface_resilience_journal(self, tiny_study):
        engine = _engine(tiny_study, executor="serial")
        stats = engine.executor_stats()
        assert stats["resilience"] == {"counts": {}, "events": ()}
        assert stats["pools_retired"] == 0
        assert stats["task_timeout_s"] is None
